//! # webml-backend-webgpu
//!
//! The WebGPU-class compute backend (paper Sec 4.3: compute APIs "allow us
//! to implement more optimized kernels" than WebGL's fragment shaders).
//! Kernels are compute pipelines dispatched over the [`webml_webgpu_sim`]
//! substrate: workgroup shared-memory tiled matmul/conv, storage buffers
//! instead of textures, ~3 µs dispatch encode instead of ~8 µs draw-call
//! setup, and native timestamp queries on every profile. It sits one rung
//! *above* webgl on the engine's degradation ladder: a lost device degrades
//! to webgl (then cpu), and canary re-admission climbs back.
//!
//! Numerically this backend is **bit-identical** to the CPU reference:
//! tiled kernels accumulate in the reference order and fused epilogues
//! apply the same scalar ops the unfused composition would, so parity
//! tests can `assert_eq!` on raw f32 values rather than compare within an
//! epsilon.

#![warn(missing_docs)]

pub mod pipelines;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use webml_core::backend::{
    fused_conv2d_fallback, fused_conv2d_quant_fallback, fused_depthwise_conv2d_fallback,
    fused_depthwise_conv2d_quant_fallback, fused_elementwise_fallback, fused_matmul_fallback,
    fused_matmul_quant_fallback, ArgReduceOp, Backend, BackendMemory, DataFuture, DataId,
    FenceToken, FusedStep, KTensor, KernelTiming, PoolOp, ReduceOp, UnaryOp,
};
use webml_core::backend::BinaryOp;
use webml_core::conv_util::Conv2dInfo;
use webml_core::dtype::{DType, TensorData};
use webml_core::error::{Error, Result};
use webml_core::shape::{broadcast_shapes, Shape};
use webml_webgpu_sim::{
    BufHandle, ComputePipeline, FaultPlan, GpuFenceHandle, WebGpuConfig, WebGpuContext, WebGpuError,
};
use webml_webgl_sim::devices::DeviceProfile;

/// Where a data container's values currently live.
enum Residency {
    /// On the (simulated) device, behind a storage-buffer handle.
    Device(BufHandle),
    /// On the host only: the device refused the upload (device lost,
    /// allocation OOM). Reads are served directly; the next kernel use, or
    /// [`WebGpuBackend::recover_device`], re-acquires a buffer.
    Host(Vec<f32>),
}

struct Entry {
    res: Residency,
    dtype: DType,
}

/// Map a substrate error to the engine's classified error surface, so the
/// engine can tell transient faults (retry / degrade) from logic errors.
fn map_gpu(name: &str, e: WebGpuError) -> Error {
    match e {
        WebGpuError::DeviceLost => Error::context_lost(name),
        WebGpuError::Oom { .. } | WebGpuError::TransientReadback { .. } => {
            Error::resource_exhausted(name, e.to_string())
        }
        WebGpuError::PipelineCompile { ref pipeline } => {
            Error::kernel_unsupported(name, pipeline.clone())
        }
        other => Error::backend(name, other.to_string()),
    }
}

/// The WebGPU-class compute backend over a simulated device.
pub struct WebGpuBackend {
    name: String,
    ctx: WebGpuContext,
    store: Mutex<HashMap<DataId, Entry>>,
    next_id: AtomicU64,
}

impl WebGpuBackend {
    /// Create a backend named `"webgpu"` on the given device profile.
    ///
    /// # Errors
    /// Fails when the profile exposes no WebGPU-class compute API (older
    /// iOS/Android) — callers should stay on the webgl rung, exactly as the
    /// degradation ladder does automatically.
    pub fn new(profile: DeviceProfile, config: WebGpuConfig) -> Result<WebGpuBackend> {
        Self::with_name("webgpu", profile, config)
    }

    /// Create a backend with a custom registry name (used to register
    /// multiple device profiles side by side for the benchmark tables).
    ///
    /// # Errors
    /// Same as [`WebGpuBackend::new`].
    pub fn with_name(
        name: impl Into<String>,
        profile: DeviceProfile,
        config: WebGpuConfig,
    ) -> Result<WebGpuBackend> {
        Self::with_faults_named(name, profile, config, FaultPlan::none())
    }

    /// Create a backend named `"webgpu"` whose device injects faults
    /// according to `plan` — the same seedable vocabulary as the WebGL
    /// substrate, so one soak seed exercises either ladder rung.
    ///
    /// # Errors
    /// Same as [`WebGpuBackend::new`].
    pub fn with_faults(
        profile: DeviceProfile,
        config: WebGpuConfig,
        plan: FaultPlan,
    ) -> Result<WebGpuBackend> {
        Self::with_faults_named("webgpu", profile, config, plan)
    }

    /// [`WebGpuBackend::with_faults`] with a custom registry name.
    ///
    /// # Errors
    /// Same as [`WebGpuBackend::new`].
    pub fn with_faults_named(
        name: impl Into<String>,
        profile: DeviceProfile,
        config: WebGpuConfig,
        plan: FaultPlan,
    ) -> Result<WebGpuBackend> {
        let name = name.into();
        let ctx = WebGpuContext::with_faults(profile, config, plan)
            .map_err(|e| Error::backend(&name, e.to_string()))?;
        Ok(WebGpuBackend { name, ctx, store: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1) })
    }

    /// The underlying device context (for diagnostics and benchmarks).
    pub fn context(&self) -> &WebGpuContext {
        &self.ctx
    }

    /// Device-queue counters (busy time, fence waits, pipeline drains,
    /// pending commands). Does not flush.
    pub fn queue_stats(&self) -> webml_webgpu_sim::WebGpuQueueStats {
        self.ctx.queue_stats()
    }

    /// After a device loss: attempt recovery and re-acquire storage buffers
    /// for host-resident entries. Returns whether the device is usable
    /// again. The pipeline cache was cleared at loss time, so pipelines
    /// re-create on next dispatch; shadowed buffers re-upload lazily.
    pub fn recover_device(&self) -> bool {
        if !self.ctx.restore_device() {
            return false;
        }
        let mut store = self.store.lock();
        for e in store.values_mut() {
            let data = match &e.res {
                Residency::Host(d) => d.clone(),
                Residency::Device(_) => continue,
            };
            let uploaded = if e.dtype == DType::U8 {
                let codes: Vec<u8> =
                    data.iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect();
                self.ctx.upload_quantized(&codes).ok()
            } else {
                self.ctx.try_upload(data).ok()
            };
            if let Some(h) = uploaded {
                e.res = Residency::Device(h);
            }
        }
        true
    }

    /// Fetch the buffer handle for `id`, re-acquiring a device buffer for
    /// host-resident entries (the lazy half of device-loss recovery).
    /// Storage buffers are linear, so free reshapes need no relayout — the
    /// kernel's logical shape travels in the pipeline closure instead.
    fn handle(&self, id: DataId) -> Result<BufHandle> {
        let mut store = self.store.lock();
        let e = store
            .get_mut(&id)
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
        match &e.res {
            Residency::Device(h) => Ok(h.clone()),
            Residency::Host(data) => {
                let h = if e.dtype == DType::U8 {
                    let codes: Vec<u8> =
                        data.iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect();
                    self.ctx.upload_quantized(&codes).map_err(|g| map_gpu(&self.name, g))?
                } else {
                    self.ctx
                        .try_upload(data.clone())
                        .map_err(|(g, _)| map_gpu(&self.name, g))?
                };
                e.res = Residency::Device(h.clone());
                Ok(h)
            }
        }
    }

    fn insert(&self, res: Residency, dtype: DType) -> DataId {
        let id = DataId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.store.lock().insert(id, Entry { res, dtype });
        id
    }

    fn dispatch_pl(
        &self,
        pipeline: ComputePipeline,
        inputs: &[&BufHandle],
        dtype: DType,
    ) -> Result<DataId> {
        let out = self.ctx.dispatch(pipeline, inputs).map_err(|e| map_gpu(&self.name, e))?;
        Ok(self.insert(Residency::Device(out), dtype))
    }
}

fn to_tensor_data(vals: Vec<f32>, dtype: DType) -> TensorData {
    TensorData::F32(vals).cast(dtype)
}

impl Backend for WebGpuBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, data: TensorData, dtype: DType) -> DataId {
        // U8 containers (quantized weight codes) land in one-byte-per-code
        // storage buffers — codes never widen to f32 on the device; the
        // pipeline reads them widened like any other buffer and the
        // consuming kernel keeps the affine map in its epilogue.
        if dtype == DType::U8 {
            let codes: Vec<u8> = match data {
                TensorData::U8(v) => v,
                other => other
                    .to_f32_vec()
                    .iter()
                    .map(|&x| x.round().clamp(0.0, 255.0) as u8)
                    .collect(),
            };
            let res = match self.ctx.upload_quantized(&codes) {
                Ok(buf) => Residency::Device(buf),
                Err(_) => Residency::Host(codes.iter().map(|&c| c as f32).collect()),
            };
            return self.insert(res, dtype);
        }
        let vals = data.to_f32_vec();
        let res = match self.ctx.try_upload(vals) {
            Ok(buf) => Residency::Device(buf),
            // The device refused the upload (lost, OOM): keep the values
            // host-side rather than fail an infallible registration.
            Err((_, vals)) => Residency::Host(vals),
        };
        self.insert(res, dtype)
    }

    fn read_sync(&self, id: DataId) -> Result<TensorData> {
        let (buf, dtype) = {
            let store = self.store.lock();
            let e = store
                .get(&id)
                .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
            match &e.res {
                Residency::Device(h) => (h.clone(), e.dtype),
                Residency::Host(data) => return Ok(to_tensor_data(data.clone(), e.dtype)),
            }
        };
        let vals = self.ctx.read_sync(&buf).map_err(|e| map_gpu(&self.name, e))?;
        Ok(to_tensor_data(vals, dtype))
    }

    fn read(&self, id: DataId) -> DataFuture {
        let (buf, dtype) = {
            let store = self.store.lock();
            match store.get(&id) {
                Some(e) => match &e.res {
                    Residency::Device(h) => (h.clone(), e.dtype),
                    Residency::Host(data) => {
                        return DataFuture::ready(Ok(to_tensor_data(data.clone(), e.dtype)))
                    }
                },
                None => {
                    return DataFuture::ready(Err(Error::backend(
                        &self.name,
                        format!("unknown data id {id:?}"),
                    )))
                }
            }
        };
        // Transient faults surface synchronously and classified; only
        // device-side failures travel through the future as strings.
        let inner = match self.ctx.read_async_checked(&buf) {
            Ok(f) => f,
            Err(e) => return DataFuture::ready(Err(map_gpu(&self.name, e))),
        };
        let (future, promise) = DataFuture::pending();
        let backend_name = self.name.clone();
        // Bridge the substrate future onto the engine future; the waiting
        // thread parks until the device resolves (promise semantics).
        std::thread::spawn(move || {
            let result = inner
                .wait()
                .map(|vals| to_tensor_data(vals, dtype))
                .map_err(|e| Error::backend(&backend_name, e));
            promise.complete(result);
        });
        future
    }

    fn dispose_data(&self, id: DataId) {
        if let Some(entry) = self.store.lock().remove(&id) {
            if let Residency::Device(buf) = entry.res {
                self.ctx.dispose(&buf);
            }
        }
    }

    fn memory(&self) -> BackendMemory {
        let m = self.ctx.memory();
        let faults = self.ctx.fault_stats();
        let store = self.store.lock();
        let host_resident =
            store.values().filter(|e| matches!(e.res, Residency::Host(_))).count();
        BackendMemory {
            num_buffers: store.len(),
            num_bytes: m.bytes_in_gpu,
            details: vec![
                ("bytes_in_gpu".to_string(), m.bytes_in_gpu as f64),
                ("dispatches_run".to_string(), m.dispatches_run as f64),
                // Harness compatibility: the webgl backend reports draw
                // calls under this key; a dispatch is the compute analogue.
                ("programs_run".to_string(), m.dispatches_run as f64),
                ("recycler_hits".to_string(), m.recycler_hits as f64),
                ("recycler_misses".to_string(), m.recycler_misses as f64),
                ("host_resident_buffers".to_string(), host_resident as f64),
                ("host_shadow_buffers".to_string(), m.host_shadow_buffers as f64),
                ("context_losses".to_string(), faults.context_losses as f64),
                ("oom_failures".to_string(), faults.oom_failures as f64),
                ("compile_failures".to_string(), faults.compile_failures as f64),
                ("transient_read_failures".to_string(), faults.transient_read_failures as f64),
            ],
        }
    }

    fn epsilon(&self) -> f32 {
        self.ctx.epsilon()
    }

    fn float_precision(&self) -> u8 {
        // WebGPU-capable profiles are full-precision by construction (the
        // f16-only cohort predates the compute API; the simulator rejects
        // such profiles at context creation).
        32
    }

    fn begin_timing(&self) {
        self.ctx.begin_timing();
    }

    fn end_timing(&self) -> KernelTiming {
        KernelTiming { kernel_ms: self.ctx.end_timing() }
    }

    fn submit_fence(&self) -> Option<FenceToken> {
        Some(FenceToken(self.ctx.fence().raw()))
    }

    fn fence_passed(&self, token: FenceToken) -> bool {
        self.ctx.fence_passed(GpuFenceHandle::from_raw(token.0))
    }

    fn wait_fence(&self, token: FenceToken) {
        self.ctx.wait_fence(GpuFenceHandle::from_raw(token.0));
    }

    fn device_timer_ns(&self) -> Option<u64> {
        // Unlike EXT_disjoint_timer_query on WebGL (an optional extension),
        // timestamp queries are a core WebGPU feature: every profile that
        // has the compute API can time. Sampling serializes the queue.
        self.ctx.flush();
        Some(self.ctx.device_nanos())
    }

    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        self.dispatch_pl(pipelines::unary(op, a.shape.size()), &[&ha], op.out_dtype(a.dtype))
    }

    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        let hb = self.handle(b.data)?;
        let pl = pipelines::binary(op, a.shape.0.clone(), b.shape.0.clone(), out_shape.0.clone());
        self.dispatch_pl(pl, &[&ha, &hb], out_dtype)
    }

    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        self.dispatch_pl(pipelines::cast(a.shape.size(), dtype), &[&ha], dtype)
    }

    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        let out_len: usize = a
            .shape
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| !axes.contains(i))
            .map(|(_, &d)| d)
            .product();
        let pl = pipelines::reduce(op, a.shape.0.clone(), axes.to_vec(), out_len);
        self.dispatch_pl(pl, &[&ha], op.out_dtype(a.dtype))
    }

    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        let out_len: usize = a
            .shape
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != axis)
            .map(|(_, &d)| d)
            .product();
        let pl = pipelines::arg_reduce(op, a.shape.0.clone(), axis, out_len);
        self.dispatch_pl(pl, &[&ha], DType::I32)
    }

    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        let hb = self.handle(b.data)?;
        let batch = a.shape.dim(0);
        let (m, kdim) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let pl = pipelines::matmul(batch, m, kdim, n, transpose_a, transpose_b);
        self.dispatch_pl(pl, &[&ha, &hb], DType::F32)
    }

    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        self.dispatch_pl(pipelines::conv2d(info.clone()), &[&hx, &hw], DType::F32)
    }

    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hdy = self.handle(dy.data)?;
        let hw = self.handle(filter.data)?;
        self.dispatch_pl(pipelines::conv2d_backprop_input(info.clone()), &[&hdy, &hw], DType::F32)
    }

    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hdy = self.handle(dy.data)?;
        self.dispatch_pl(pipelines::conv2d_backprop_filter(info.clone()), &[&hx, &hdy], DType::F32)
    }

    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        self.dispatch_pl(pipelines::depthwise_conv2d(info.clone()), &[&hx, &hw], DType::F32)
    }

    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hdy = self.handle(dy.data)?;
        let hw = self.handle(filter.data)?;
        self.dispatch_pl(
            pipelines::depthwise_conv2d_backprop_input(info.clone()),
            &[&hdy, &hw],
            DType::F32,
        )
    }

    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hdy = self.handle(dy.data)?;
        self.dispatch_pl(
            pipelines::depthwise_conv2d_backprop_filter(info.clone()),
            &[&hx, &hdy],
            DType::F32,
        )
    }

    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        self.dispatch_pl(pipelines::pool2d(op, info.clone()), &[&hx], x.dtype)
    }

    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hdy = self.handle(dy.data)?;
        let hx = self.handle(x.data)?;
        self.dispatch_pl(pipelines::pool2d_backprop(op, info.clone()), &[&hdy, &hx], DType::F32)
    }

    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let pl = pipelines::slice(x.shape.0.clone(), begin.to_vec(), size.to_vec());
        self.dispatch_pl(pl, &[&hx], x.dtype)
    }

    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId> {
        let handles: Vec<BufHandle> =
            xs.iter().map(|t| self.handle(t.data)).collect::<Result<_>>()?;
        let refs: Vec<&BufHandle> = handles.iter().collect();
        let out_len: usize = xs.iter().map(|t| t.shape.size()).sum();
        let dims: Vec<Vec<usize>> = xs.iter().map(|t| t.shape.0.clone()).collect();
        self.dispatch_pl(pipelines::concat(dims, axis, out_len), &refs, xs[0].dtype)
    }

    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        self.dispatch_pl(pipelines::transpose(x.shape.0.clone(), perm.to_vec()), &[&hx], x.dtype)
    }

    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let pl = pipelines::pad(x.shape.0.clone(), paddings.to_vec(), value);
        self.dispatch_pl(pl, &[&hx], x.dtype)
    }

    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hi = self.handle(indices.data)?;
        let n_indices = indices.shape.size();
        let out_len = x.shape.size() / x.shape.dim(axis).max(1) * n_indices;
        let pl = pipelines::gather(x.shape.0.clone(), axis, out_len);
        self.dispatch_pl(pl, &[&hx, &hi], x.dtype)
    }

    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        self.dispatch_pl(pipelines::tile(x.shape.0.clone(), reps.to_vec()), &[&hx], x.dtype)
    }

    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        self.dispatch_pl(pipelines::reverse(x.shape.0.clone(), axes.to_vec()), &[&hx], x.dtype)
    }

    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId> {
        let hc = self.handle(cond.data)?;
        let ha = self.handle(a.data)?;
        let hb = self.handle(b.data)?;
        let pl = pipelines::select(
            cond.shape.0.clone(),
            a.shape.0.clone(),
            b.shape.0.clone(),
            out_shape.0.clone(),
        );
        self.dispatch_pl(pl, &[&hc, &ha, &hb], a.dtype)
    }

    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId> {
        let hi = self.handle(indices.data)?;
        let out_len = indices.shape.size() * depth;
        self.dispatch_pl(pipelines::one_hot(depth, on, off, out_len), &[&hi], DType::F32)
    }

    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let pl = pipelines::resize_bilinear(x.shape.0.clone(), new_h, new_w, align_corners);
        self.dispatch_pl(pl, &[&hx], DType::F32)
    }

    // Fused kernels: one dispatch each, epilogue in-register. When the
    // fused pipeline is rejected at creation time (an injected fault or a
    // driver quirk), fall back to the unfused composition on this same
    // backend instead of surfacing the error — fusion must never make the
    // degradation ladder worse than the unfused path.

    fn fused_matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let ha = self.handle(a.data)?;
        let hb = self.handle(b.data)?;
        let batch = a.shape.dim(0);
        let (m, kdim) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let pl = pipelines::fused_matmul(
            batch,
            m,
            kdim,
            n,
            transpose_a,
            transpose_b,
            bias.is_some(),
            activation,
        );
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&ha, &hb];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedMatMul");
                fused_matmul_fallback(self, a, b, bias, activation, transpose_a, transpose_b)
            }
            r => r,
        }
    }

    fn fused_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        let pl = pipelines::fused_conv2d(info.clone(), bias.is_some(), activation);
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&hx, &hw];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedConv2D");
                fused_conv2d_fallback(self, x, filter, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        let pl = pipelines::fused_depthwise_conv2d(info.clone(), bias.is_some(), activation);
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&hx, &hw];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedDepthwiseConv2D");
                fused_depthwise_conv2d_fallback(self, x, filter, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_matmul_quant(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        b_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        // The factored epilogue needs the scale constant over the inner
        // product: per-channel params must index the output-column axis.
        let col_axis = if transpose_b { 1 } else { 2 };
        if !webml_core::kernels::quant_axis_ok(b_params, col_axis, n) {
            note_fused_fallback("FusedMatMulQuant");
            return fused_matmul_quant_fallback(
                self, a, b, b_params, bias, activation, transpose_a, transpose_b,
            );
        }
        let ha = self.handle(a.data)?;
        let hb = self.handle(b.data)?;
        let batch = a.shape.dim(0);
        let (m, kdim) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let pl = pipelines::fused_matmul_quant(
            batch,
            m,
            kdim,
            n,
            transpose_a,
            transpose_b,
            b_params.clone(),
            bias.is_some(),
            activation,
        );
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&ha, &hb];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedMatMulQuant");
                fused_matmul_quant_fallback(
                    self, a, b, b_params, bias, activation, transpose_a, transpose_b,
                )
            }
            r => r,
        }
    }

    fn fused_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        if !webml_core::kernels::quant_axis_ok(filter_params, 3, info.out_channels) {
            note_fused_fallback("FusedConv2DQuant");
            return fused_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        let pl = pipelines::fused_conv2d_quant(
            info.clone(),
            filter_params.clone(),
            bias.is_some(),
            activation,
        );
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&hx, &hw];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedConv2DQuant");
                fused_conv2d_quant_fallback(self, x, filter, filter_params, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_depthwise_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let axis_ok = webml_core::kernels::quant_axis_ok(filter_params, 2, info.in_channels)
            || webml_core::kernels::quant_axis_ok(filter_params, 3, info.channel_mul);
        if !axis_ok {
            note_fused_fallback("FusedDepthwiseConv2DQuant");
            return fused_depthwise_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let hx = self.handle(x.data)?;
        let hw = self.handle(filter.data)?;
        let pl = pipelines::fused_depthwise_conv2d_quant(
            info.clone(),
            filter_params.clone(),
            bias.is_some(),
            activation,
        );
        let hbias;
        let mut inputs: Vec<&BufHandle> = vec![&hx, &hw];
        if let Some(bias) = bias {
            hbias = self.handle(bias.data)?;
            inputs.push(&hbias);
        }
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedDepthwiseConv2DQuant");
                fused_depthwise_conv2d_quant_fallback(
                    self, x, filter, filter_params, bias, activation, info,
                )
            }
            r => r,
        }
    }

    fn fused_elementwise(
        &self,
        x: &KTensor<'_>,
        extras: &[KTensor<'_>],
        steps: &[FusedStep],
        out_shape: &Shape,
    ) -> Result<DataId> {
        if steps.is_empty() {
            return Err(Error::invalid("FusedElementwise", "steps must be non-empty"));
        }
        // Precompute the chain's shape after each step (host-side; the op
        // layer already validated the chain so broadcasts succeed).
        let mut chain = x.shape.clone();
        let mut step_shapes = Vec::with_capacity(steps.len());
        for step in steps {
            if let FusedStep::Binary(_, i) = *step {
                let e = extras.get(i).ok_or_else(|| {
                    Error::invalid(
                        "FusedElementwise",
                        format!("binary step references extra {i} of {}", extras.len()),
                    )
                })?;
                chain = broadcast_shapes("FusedElementwise", &chain, e.shape)?;
            }
            step_shapes.push(chain.clone());
        }
        let hx = self.handle(x.data)?;
        let hextras: Vec<BufHandle> =
            extras.iter().map(|e| self.handle(e.data)).collect::<Result<_>>()?;
        let mut inputs: Vec<&BufHandle> = vec![&hx];
        inputs.extend(hextras.iter());
        let pl = pipelines::fused_elementwise(
            x.shape.0.clone(),
            extras.iter().map(|e| e.shape.0.clone()).collect(),
            steps.to_vec(),
            step_shapes,
            out_shape.size(),
        );
        match self.dispatch_pl(pl, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedElementwise");
                fused_elementwise_fallback(self, x, extras, steps, out_shape)
            }
            r => r,
        }
    }
}

/// Record a fused-kernel pipeline rejection (telemetry instant + counter)
/// just before composing the unfused fallback. Rare by construction, so
/// the registry `OnceLock` resolution here is off any hot path.
fn note_fused_fallback(kernel: &'static str) {
    static FALLBACKS: std::sync::OnceLock<std::sync::Arc<webml_telemetry::Counter>> =
        std::sync::OnceLock::new();
    FALLBACKS.get_or_init(|| webml_telemetry::counter("webgpu.fused_fallbacks_total")).inc();
    webml_telemetry::instant(kernel, "fused-fallback");
}

/// Convenience: a webgpu backend on the integrated-GPU profile with default
/// config.
///
/// # Errors
/// Never in practice: the built-in profile has the compute API.
pub fn default_webgpu_backend() -> Result<WebGpuBackend> {
    WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::ops;
    use webml_core::Engine;

    fn engine() -> Engine {
        let e = Engine::new();
        let backend =
            WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default()).unwrap();
        e.register_backend("webgpu", Arc::new(backend), 3);
        e
    }

    fn cpu_engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
        e
    }

    #[test]
    fn matmul_on_webgpu() {
        let e = engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = ops::matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn unsupported_profile_is_rejected() {
        for p in [DeviceProfile::ios_safari(), DeviceProfile::android_legacy()] {
            assert!(WebGpuBackend::new(p, WebGpuConfig::default()).is_err());
        }
    }

    #[test]
    fn tiled_matmul_is_bitwise_identical_to_cpu() {
        // Not "close": the tiled kernel accumulates in the reference order,
        // so every transpose combination must match the CPU backend exactly
        // on awkward (non-multiple-of-TILE) dims.
        let (m, kdim, n) = (37, 53, 29);
        let avals: Vec<f32> = (0..m * kdim).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let bvals: Vec<f32> = (0..kdim * n).map(|i| ((i as f32) * 0.91).cos() * 2.0).collect();
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let run = |e: &Engine| -> Vec<f32> {
                let (ar, ac) = if ta { (kdim, m) } else { (m, kdim) };
                let (br, bc) = if tb { (n, kdim) } else { (kdim, n) };
                let a = e.tensor_2d(&avals[..ar * ac], ar, ac).unwrap();
                let b = e.tensor_2d(&bvals[..br * bc], br, bc).unwrap();
                ops::matmul(&a, &b, ta, tb).unwrap().to_f32_vec().unwrap()
            };
            assert_eq!(run(&engine()), run(&cpu_engine()), "ta={ta} tb={tb}");
        }
    }

    #[test]
    fn fused_matmul_is_bitwise_identical_to_cpu() {
        let (m, kdim, n) = (19, 41, 23);
        let avals: Vec<f32> = (0..m * kdim).map(|i| ((i as f32) * 0.13).sin()).collect();
        let bvals: Vec<f32> = (0..kdim * n).map(|i| ((i as f32) * 0.29).cos()).collect();
        let biasv: Vec<f32> = (0..n).map(|i| (i as f32) * 0.05 - 0.4).collect();
        let run = |e: &Engine| -> Vec<f32> {
            let a = e.tensor_2d(&avals, m, kdim).unwrap();
            let b = e.tensor_2d(&bvals, kdim, n).unwrap();
            let bias = e.tensor_1d(&biasv).unwrap();
            ops::fused_matmul(&a, &b, Some(&bias), Some(UnaryOp::Relu), false, false)
                .unwrap()
                .to_f32_vec()
                .unwrap()
        };
        assert_eq!(run(&engine()), run(&cpu_engine()));
    }

    #[test]
    fn conv_and_pool_are_bitwise_identical_to_cpu() {
        let vals: Vec<f32> = (0..8 * 8 * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let wvals: Vec<f32> = (0..3 * 3 * 3 * 4).map(|i| (i as f32 * 0.19).cos()).collect();
        let run = |e: &Engine| -> Vec<f32> {
            let x = e.tensor_4d(&vals, 1, 8, 8, 3).unwrap();
            let w = e.tensor_4d(&wvals, 3, 3, 3, 4).unwrap();
            let y =
                ops::conv2d(&x, &w, (2, 2), webml_core::conv_util::Padding::Same, (1, 1)).unwrap();
            let p =
                ops::max_pool(&y, (2, 2), (2, 2), webml_core::conv_util::Padding::Valid).unwrap();
            p.to_f32_vec().unwrap()
        };
        assert_eq!(run(&engine()), run(&cpu_engine()));
    }

    #[test]
    fn quantized_fused_ops_are_bitwise_identical_to_cpu() {
        let n_w = 3 * 3 * 3 * 4;
        let codes: Vec<u8> = (0..n_w).map(|i| ((i * 37) % 256) as u8).collect();
        let scales: Vec<f32> = (0..4).map(|c| 0.01 + c as f32 * 0.003).collect();
        let mins: Vec<f32> = (0..4).map(|c| -1.2 + c as f32 * 0.1).collect();
        let xvals: Vec<f32> = (0..8 * 8 * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let bvals = [0.05f32, -0.1, 0.2, 0.0];
        let run = |e: &Engine| -> Vec<f32> {
            let x = e.tensor_4d(&xvals, 1, 8, 8, 3).unwrap();
            let w = e
                .quantized_tensor(
                    codes.clone(),
                    vec![3, 3, 3, 4],
                    webml_core::quant::QuantParams::per_channel(3, scales.clone(), mins.clone()),
                )
                .unwrap();
            let bias = e.tensor_1d(&bvals).unwrap();
            let y = ops::fused_conv2d_quant(
                &x,
                &w,
                Some(&bias),
                Some(UnaryOp::Relu),
                (2, 2),
                webml_core::conv_util::Padding::Same,
                (1, 1),
            )
            .unwrap();
            y.to_f32_vec().unwrap()
        };
        // Same factored-accumulation kernel runs on both backends:
        // bit-identical, not merely within 1e-3.
        assert_eq!(run(&engine()), run(&cpu_engine()));
    }

    #[test]
    fn async_data_resolves() {
        let e = engine();
        let a = e.tensor_1d(&[2.0, 3.0]).unwrap();
        let y = ops::square(&a).unwrap();
        let fut = y.data().unwrap();
        assert_eq!(fut.wait().unwrap().to_f32_vec(), vec![4.0, 9.0]);
    }

    #[test]
    fn ops_return_before_device_finishes() {
        let e = engine();
        let a = e.rand_uniform([128, 128], -1.0, 1.0, 1).unwrap();
        let t0 = std::time::Instant::now();
        let mut y = ops::matmul(&a, &a, false, false).unwrap();
        for _ in 0..5 {
            y = ops::matmul(&y, &a, false, false).unwrap();
        }
        let enqueue_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(enqueue_ms < 100.0, "enqueue took {enqueue_ms} ms");
        let vals = y.to_f32_vec().unwrap();
        assert_eq!(vals.len(), 128 * 128);
    }

    #[test]
    fn gradients_run_on_webgpu() {
        let e = engine();
        let x = e.tensor_1d(&[3.0]).unwrap();
        let g = e.grad(&x, || ops::sum(&ops::square(&x)?, None, false)).unwrap();
        assert_eq!(g.to_f32_vec().unwrap(), vec![6.0]);
    }

    #[test]
    fn quantized_weights_hold_one_byte_per_code_on_device() {
        let byte_count = |dtype: DType, data: TensorData| -> usize {
            let b = WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
                .unwrap();
            let id = b.register(data, dtype);
            b.read_sync(id).unwrap();
            b.context().memory().bytes_in_gpu
        };
        let q = byte_count(DType::U8, TensorData::U8(vec![7u8; 1024]));
        let f = byte_count(DType::F32, TensorData::F32(vec![7.0f32; 1024]));
        assert!(q * 3 <= f, "quantized residency {q} B should be ~4x below f32 {f} B");
    }

    #[test]
    fn quantized_codes_survive_round_trip() {
        let b =
            WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default()).unwrap();
        let codes: Vec<u8> = (0..=255).collect();
        let id = b.register(TensorData::U8(codes.clone()), DType::U8);
        match b.read_sync(id).unwrap() {
            TensorData::U8(v) => assert_eq!(v, codes),
            other => panic!("expected U8 readback, got {other:?}"),
        }
    }

    #[test]
    fn quantized_weights_rebuild_after_seeded_device_loss() {
        use webml_core::quant::QuantParams;
        use webml_core::Shape;
        let b = WebGpuBackend::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan { seed: 42, ..FaultPlan::none() }.lose_context_at(2),
        )
        .unwrap();
        let a_shape = Shape::new(vec![1, 2, 2]);
        let w_shape = Shape::new(vec![1, 2, 2]);
        let a_id = b.register(TensorData::F32(vec![1.0, 2.0, 3.0, 4.0]), DType::F32);
        let w_id = b.register(TensorData::U8(vec![5, 6, 7, 8]), DType::U8);
        let a = KTensor { data: a_id, shape: &a_shape, dtype: DType::F32 };
        let w = KTensor { data: w_id, shape: &w_shape, dtype: DType::U8 };
        let params = QuantParams::per_tensor(1.0, 0.0);
        let first = b.fused_matmul_quant(&a, &w, &params, None, None, false, false).unwrap();
        let expect = b.read_sync(first).unwrap().to_f32_vec();
        assert_eq!(expect, vec![19.0, 22.0, 43.0, 50.0]);
        // The second dispatch hits the injected device loss.
        assert!(
            b.fused_matmul_quant(&a, &w, &params, None, None, false, false).is_err(),
            "dispatch 2 must observe the lost device"
        );
        assert!(b.recover_device(), "device restores");
        let again = b.fused_matmul_quant(&a, &w, &params, None, None, false, false).unwrap();
        assert_eq!(b.read_sync(again).unwrap().to_f32_vec(), expect);
        match b.read_sync(w_id).unwrap() {
            TensorData::U8(v) => assert_eq!(v, vec![5, 6, 7, 8]),
            other => panic!("expected U8 codes after recovery, got {other:?}"),
        }
    }

    #[test]
    fn device_timer_is_available_on_profiles_without_disjoint_query() {
        // Timestamp queries are core in the compute API — even the Android
        // profile that lacks EXT_disjoint_timer_query on WebGL can time.
        let p = DeviceProfile::android_modern();
        assert!(!p.has_disjoint_timer_query && p.has_webgpu);
        let b = WebGpuBackend::new(p, WebGpuConfig::default()).unwrap();
        assert!(b.device_timer_ns().is_some());
    }
}
