//! Compute-pipeline builders: each kernel family becomes a
//! [`ComputePipeline`] whose body runs on the simulated device thread and
//! whose `shared_reuse` declaration tells the device's occupancy model how
//! aggressively the kernel exploits workgroup shared memory.
//!
//! The matmul / conv families are written as *cooperative tiled* kernels: a
//! 16×16 workgroup stages input tiles into shared-memory arrays once and
//! every invocation reads the staged values `TILE` times — the classic
//! shared-memory matmul that fragment shaders cannot express (no
//! cross-invocation communication) and the core perf claim of the
//! WebGPU-class backend. Movement and elementwise kernels stay
//! uncooperative (`reuse 1`): they are bandwidth-bound either way.
//!
//! Bit-exactness contract: every body either delegates to the shared
//! [`webml_core::kernels`] reference implementations or (for the tiled
//! matmul) accumulates partial products in exactly the same ascending-`p`
//! order as [`webml_core::kernels::matmul`], with the fused epilogue applied
//! through the same [`BinaryOp::apply`] / [`UnaryOp::apply`] scalar paths
//! the CPU backend composes. Outputs are therefore bit-identical to the CPU
//! reference, not merely close.

use webml_core::backend::{
    ArgReduceOp, BinaryOp, FusedStep, PoolOp, ReduceOp, UnaryOp,
};
use webml_core::conv_util::Conv2dInfo;
use webml_core::dtype::{DType, TensorData};
use webml_core::kernels as k;
use webml_core::quant::QuantParams;
use webml_core::shape::Shape;
use webml_webgpu_sim::ComputePipeline;

/// Workgroup tile width of the cooperative matmul/conv kernels: each
/// workgroup is `TILE`×`TILE` invocations staging `TILE`-deep input tiles.
pub const TILE: usize = 16;

/// Workgroup invocations of the cooperative kernels (`TILE`²).
const WG: usize = TILE * TILE;

/// Narrow widened storage-buffer values back to the u8 codes they were
/// uploaded as. Codes are integers 0..=255, exact in f32, so the round trip
/// is lossless.
fn narrow_u8(vals: &[f32]) -> Vec<u8> {
    vals.iter().map(|&v| v as u8).collect()
}

/// Narrow widened index values back to i32 (exact for tensor-sized indices).
fn narrow_i32(vals: &[f32]) -> Vec<i32> {
    vals.iter().map(|&v| v as i32).collect()
}

/// The cooperative tiled matmul body shared by the plain, fused and
/// quantized-epilogue matmul pipelines. A `TILE`×`TILE` workgroup computes
/// one output tile: for each `TILE`-deep slab of the inner dimension the
/// workgroup stages `a_tile` and `b_tile` into shared memory (transpose
/// resolved at load time), then every invocation accumulates its dot
/// product from the staged values — each staged element is read `TILE`
/// times, which is exactly the `shared_reuse` the pipeline declares.
///
/// Accumulation visits `p` in ascending order with a single register
/// accumulator per output, so the result is bit-identical to the reference
/// [`webml_core::kernels::matmul`] loop.
#[allow(clippy::too_many_arguments)]
fn tiled_matmul(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    batch: usize,
    m: usize,
    kdim: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let a_off = bi * m * kdim;
        let b_off = bi * kdim * n;
        let o_off = bi * m * n;
        for i0 in (0..m).step_by(TILE) {
            let rows = TILE.min(m - i0);
            for j0 in (0..n).step_by(TILE) {
                let cols = TILE.min(n - j0);
                // Per-invocation register accumulators for this workgroup.
                let mut acc = [[0.0f32; TILE]; TILE];
                // Workgroup shared memory.
                let mut a_tile = [[0.0f32; TILE]; TILE];
                let mut b_tile = [[0.0f32; TILE]; TILE];
                for p0 in (0..kdim).step_by(TILE) {
                    let depth = TILE.min(kdim - p0);
                    // Stage: each invocation loads one a and one b element.
                    for (ti, row) in a_tile.iter_mut().enumerate().take(rows) {
                        for (tp, slot) in row.iter_mut().enumerate().take(depth) {
                            let (i, p) = (i0 + ti, p0 + tp);
                            *slot = if transpose_a {
                                a[a_off + p * m + i]
                            } else {
                                a[a_off + i * kdim + p]
                            };
                        }
                    }
                    for (tp, row) in b_tile.iter_mut().enumerate().take(depth) {
                        for (tj, slot) in row.iter_mut().enumerate().take(cols) {
                            let (p, j) = (p0 + tp, j0 + tj);
                            *slot = if transpose_b {
                                b[b_off + j * kdim + p]
                            } else {
                                b[b_off + p * n + j]
                            };
                        }
                    }
                    // workgroupBarrier(); accumulate from shared memory.
                    for (ti, arow) in a_tile.iter().enumerate().take(rows) {
                        for tj in 0..cols {
                            let mut s = acc[ti][tj];
                            for (tp, &av) in arow.iter().enumerate().take(depth) {
                                s += av * b_tile[tp][tj];
                            }
                            acc[ti][tj] = s;
                        }
                    }
                }
                // Fused epilogue, in-register: + bias, then activation —
                // the same scalar ops the unfused composition applies.
                for (ti, arow) in acc.iter().enumerate().take(rows) {
                    for (tj, &s) in arow.iter().enumerate().take(cols) {
                        let mut v = s;
                        if let Some(bias) = bias {
                            v = BinaryOp::Add.apply(v, bias[j0 + tj]);
                        }
                        if let Some(act) = activation {
                            v = act.apply(v);
                        }
                        out[o_off + (i0 + ti) * n + j0 + tj] = v;
                    }
                }
            }
        }
    }
    out
}

/// Plain batched matmul as a cooperative tiled pipeline.
pub fn matmul(
    batch: usize,
    m: usize,
    kdim: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
) -> ComputePipeline {
    ComputePipeline::cooperative(
        "MatMulTiled",
        batch * m * n,
        WG,
        TILE,
        2 * kdim.max(1),
        move |inp| tiled_matmul(inp[0], inp[1], None, None, batch, m, kdim, n, transpose_a, transpose_b),
    )
}

/// Fused matmul (+bias +activation) as one cooperative tiled pipeline; the
/// epilogue runs in-register before the single output write.
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul(
    batch: usize,
    m: usize,
    kdim: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    ComputePipeline::cooperative(
        "FusedMatMulTiled",
        batch * m * n,
        WG,
        TILE,
        2 * kdim.max(1),
        move |inp| {
            let bias = if has_bias { Some(inp[2]) } else { None };
            tiled_matmul(inp[0], inp[1], bias, activation, batch, m, kdim, n, transpose_a, transpose_b)
        },
    )
}

/// Dequant-free quantized fused matmul: u8 weight codes stay codes in the
/// storage buffer; the factored two-sum accumulation and the affine
/// epilogue come from the shared reference kernel.
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul_quant(
    batch: usize,
    m: usize,
    kdim: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    ComputePipeline::cooperative(
        "FusedMatMulQuantTiled",
        batch * m * n,
        WG,
        TILE,
        2 * kdim.max(1),
        move |inp| {
            let codes = narrow_u8(inp[1]);
            let bias = if has_bias { Some(inp[2]) } else { None };
            k::fused_matmul_quant(
                inp[0], &codes, &params, bias, activation, batch, m, kdim, n, transpose_a,
                transpose_b,
            )
        },
    )
}

/// Conv2d as a cooperative pipeline: the workgroup stages the filter tile
/// and an input patch in shared memory (reuse ≈ `TILE`).
pub fn conv2d(info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.batch * info.out_height * info.out_width * info.out_channels;
    let cost = 2 * info.filter_height * info.filter_width * info.in_channels;
    ComputePipeline::cooperative("Conv2DTiled", out_len, WG, TILE, cost.max(1), move |inp| {
        k::conv2d(inp[0], inp[1], &info)
    })
}

/// Fused conv2d: convolution plus in-register `+bias` / activation epilogue,
/// applied through the same scalar ops the unfused composition uses.
pub fn fused_conv2d(
    info: Conv2dInfo,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    let out_len = info.batch * info.out_height * info.out_width * info.out_channels;
    let cost = 2 * info.filter_height * info.filter_width * info.in_channels;
    ComputePipeline::cooperative("FusedConv2DTiled", out_len, WG, TILE, cost.max(1), move |inp| {
        let oc = info.out_channels;
        let mut y = k::conv2d(inp[0], inp[1], &info);
        for (idx, v) in y.iter_mut().enumerate() {
            if has_bias {
                *v = BinaryOp::Add.apply(*v, inp[2][idx % oc]);
            }
            if let Some(act) = activation {
                *v = act.apply(*v);
            }
        }
        y
    })
}

/// Dequant-free quantized fused conv2d (shared factored-accumulation
/// reference kernel; codes never widen to a f32 weight buffer).
pub fn fused_conv2d_quant(
    info: Conv2dInfo,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    let out_len = info.batch * info.out_height * info.out_width * info.out_channels;
    let cost = 2 * info.filter_height * info.filter_width * info.in_channels;
    ComputePipeline::cooperative(
        "FusedConv2DQuantTiled",
        out_len,
        WG,
        TILE,
        cost.max(1),
        move |inp| {
            let codes = narrow_u8(inp[1]);
            let bias = if has_bias { Some(inp[2]) } else { None };
            k::fused_conv2d_quant(inp[0], &codes, &params, bias, activation, &info)
        },
    )
}

/// Depthwise conv2d. Each output channel reads one input channel, so the
/// shared-memory win is the filter tile only (reuse 8, not `TILE`).
pub fn depthwise_conv2d(info: Conv2dInfo) -> ComputePipeline {
    let out_len =
        info.batch * info.out_height * info.out_width * info.in_channels * info.channel_mul;
    let cost = 2 * info.filter_height * info.filter_width;
    ComputePipeline::cooperative("DepthwiseConv2DTiled", out_len, WG, 8, cost.max(1), move |inp| {
        k::depthwise_conv2d(inp[0], inp[1], &info)
    })
}

/// Fused depthwise conv2d with the in-register epilogue.
pub fn fused_depthwise_conv2d(
    info: Conv2dInfo,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    let oc = info.in_channels * info.channel_mul;
    let out_len = info.batch * info.out_height * info.out_width * oc;
    let cost = 2 * info.filter_height * info.filter_width;
    ComputePipeline::cooperative(
        "FusedDepthwiseConv2DTiled",
        out_len,
        WG,
        8,
        cost.max(1),
        move |inp| {
            let mut y = k::depthwise_conv2d(inp[0], inp[1], &info);
            for (idx, v) in y.iter_mut().enumerate() {
                if has_bias {
                    *v = BinaryOp::Add.apply(*v, inp[2][idx % oc]);
                }
                if let Some(act) = activation {
                    *v = act.apply(*v);
                }
            }
            y
        },
    )
}

/// Dequant-free quantized fused depthwise conv2d.
pub fn fused_depthwise_conv2d_quant(
    info: Conv2dInfo,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> ComputePipeline {
    let out_len =
        info.batch * info.out_height * info.out_width * info.in_channels * info.channel_mul;
    let cost = 2 * info.filter_height * info.filter_width;
    ComputePipeline::cooperative(
        "FusedDepthwiseConv2DQuantTiled",
        out_len,
        WG,
        8,
        cost.max(1),
        move |inp| {
            let codes = narrow_u8(inp[1]);
            let bias = if has_bias { Some(inp[2]) } else { None };
            k::fused_depthwise_conv2d_quant(inp[0], &codes, &params, bias, activation, &info)
        },
    )
}

/// Conv2d input gradient (cooperative over the filter tile).
pub fn conv2d_backprop_input(info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.batch * info.in_height * info.in_width * info.in_channels;
    let cost = 2 * info.filter_height * info.filter_width * info.out_channels;
    ComputePipeline::cooperative("Conv2DBackpropInput", out_len, WG, 8, cost.max(1), move |inp| {
        k::conv2d_backprop_input(inp[0], inp[1], &info)
    })
}

/// Conv2d filter gradient.
pub fn conv2d_backprop_filter(info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.filter_height * info.filter_width * info.in_channels * info.out_channels;
    let cost = 2 * info.batch * info.out_height * info.out_width;
    ComputePipeline::cooperative("Conv2DBackpropFilter", out_len, WG, 8, cost.max(1), move |inp| {
        k::conv2d_backprop_filter(inp[0], inp[1], &info)
    })
}

/// Depthwise conv2d input gradient.
pub fn depthwise_conv2d_backprop_input(info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.batch * info.in_height * info.in_width * info.in_channels;
    let cost = 2 * info.filter_height * info.filter_width * info.channel_mul;
    ComputePipeline::cooperative("DepthwiseBackpropInput", out_len, WG, 8, cost.max(1), move |inp| {
        k::depthwise_conv2d_backprop_input(inp[0], inp[1], &info)
    })
}

/// Depthwise conv2d filter gradient.
pub fn depthwise_conv2d_backprop_filter(info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.filter_height * info.filter_width * info.in_channels * info.channel_mul;
    let cost = 2 * info.batch * info.out_height * info.out_width;
    ComputePipeline::cooperative(
        "DepthwiseBackpropFilter",
        out_len,
        WG,
        8,
        cost.max(1),
        move |inp| k::depthwise_conv2d_backprop_filter(inp[0], inp[1], &info),
    )
}

/// Max/avg pooling (uncooperative; window reads are not shared).
pub fn pool2d(op: PoolOp, info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.batch * info.out_height * info.out_width * info.in_channels;
    let cost = info.filter_height * info.filter_width;
    ComputePipeline::elementwise("Pool2D", out_len, cost.max(1), move |inp| {
        k::pool2d(op, inp[0], &info)
    })
}

/// Pooling gradient.
pub fn pool2d_backprop(op: PoolOp, info: Conv2dInfo) -> ComputePipeline {
    let out_len = info.batch * info.in_height * info.in_width * info.in_channels;
    let cost = info.filter_height * info.filter_width;
    ComputePipeline::elementwise("Pool2DBackprop", out_len, cost.max(1), move |inp| {
        k::pool2d_backprop(op, inp[0], inp[1], &info)
    })
}

/// Elementwise unary op.
pub fn unary(op: UnaryOp, out_len: usize) -> ComputePipeline {
    ComputePipeline::elementwise("Unary", out_len, 1, move |inp| k::unary(op, inp[0]))
}

/// Broadcasting binary op.
pub fn binary(
    op: BinaryOp,
    a_dims: Vec<usize>,
    b_dims: Vec<usize>,
    out_dims: Vec<usize>,
) -> ComputePipeline {
    let (a_s, b_s, o_s) = (Shape::new(a_dims), Shape::new(b_dims), Shape::new(out_dims));
    ComputePipeline::elementwise("Binary", o_s.size(), 1, move |inp| {
        k::binary(op, inp[0], &a_s, inp[1], &b_s, &o_s)
    })
}

/// Dtype cast (values re-quantized through the host dtype semantics).
pub fn cast(out_len: usize, dtype: DType) -> ComputePipeline {
    ComputePipeline::elementwise("Cast", out_len, 1, move |inp| {
        TensorData::F32(inp[0].to_vec()).cast(dtype).to_f32_vec()
    })
}

/// Axis reduction. Workgroup reductions stage partials in shared memory
/// (tree reduction), hence the modest cooperative credit.
pub fn reduce(op: ReduceOp, in_dims: Vec<usize>, axes: Vec<usize>, out_len: usize) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let reduced: usize =
        axes.iter().map(|&ax| shape.dim(ax)).product::<usize>().max(1);
    ComputePipeline::cooperative("Reduce", out_len.max(1), WG, 4, reduced, move |inp| {
        k::reduce(op, inp[0], &shape, &axes)
    })
}

/// Arg-reduction along one axis (indices widened to f32 on the device).
pub fn arg_reduce(op: ArgReduceOp, in_dims: Vec<usize>, axis: usize, out_len: usize) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let cost = shape.dim(axis).max(1);
    ComputePipeline::cooperative("ArgReduce", out_len.max(1), WG, 4, cost, move |inp| {
        k::arg_reduce(op, inp[0], &shape, axis).iter().map(|&v| v as f32).collect()
    })
}

/// Contiguous slice copy.
pub fn slice(in_dims: Vec<usize>, begin: Vec<usize>, size: Vec<usize>) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let out_len: usize = size.iter().product::<usize>().max(1);
    ComputePipeline::elementwise("Slice", out_len, 1, move |inp| {
        k::slice(inp[0], &shape, &begin, &size)
    })
}

/// Concatenation along one axis.
pub fn concat(in_dims: Vec<Vec<usize>>, axis: usize, out_len: usize) -> ComputePipeline {
    let shapes: Vec<Shape> = in_dims.into_iter().map(Shape::new).collect();
    ComputePipeline::elementwise("Concat", out_len, 1, move |inp| {
        let xs: Vec<(&[f32], &Shape)> =
            inp.iter().copied().zip(shapes.iter()).collect();
        k::concat(&xs, axis)
    })
}

/// Axis permutation.
pub fn transpose(in_dims: Vec<usize>, perm: Vec<usize>) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    ComputePipeline::elementwise("Transpose", shape.size(), 1, move |inp| {
        k::transpose(inp[0], &shape, &perm)
    })
}

/// Constant padding.
pub fn pad(in_dims: Vec<usize>, paddings: Vec<(usize, usize)>, value: f32) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let out_len: usize = shape
        .dims()
        .iter()
        .zip(&paddings)
        .map(|(&d, &(b, a))| d + b + a)
        .product::<usize>()
        .max(1);
    ComputePipeline::elementwise("Pad", out_len, 1, move |inp| {
        k::pad(inp[0], &shape, &paddings, value)
    })
}

/// Gather rows along one axis (index buffer narrowed back to i32).
pub fn gather(in_dims: Vec<usize>, axis: usize, out_len: usize) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    ComputePipeline::elementwise("Gather", out_len, 1, move |inp| {
        k::gather(inp[0], &shape, &narrow_i32(inp[1]), axis)
    })
}

/// Tiling (repetition) along every axis.
pub fn tile(in_dims: Vec<usize>, reps: Vec<usize>) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let out_len: usize =
        shape.dims().iter().zip(&reps).map(|(&d, &r)| d * r).product::<usize>().max(1);
    ComputePipeline::elementwise("Tile", out_len, 1, move |inp| k::tile(inp[0], &shape, &reps))
}

/// Axis reversal.
pub fn reverse(in_dims: Vec<usize>, axes: Vec<usize>) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    ComputePipeline::elementwise("Reverse", shape.size(), 1, move |inp| {
        k::reverse(inp[0], &shape, &axes)
    })
}

/// Broadcasting ternary select.
pub fn select(
    cond_dims: Vec<usize>,
    a_dims: Vec<usize>,
    b_dims: Vec<usize>,
    out_dims: Vec<usize>,
) -> ComputePipeline {
    let (c_s, a_s, b_s, o_s) =
        (Shape::new(cond_dims), Shape::new(a_dims), Shape::new(b_dims), Shape::new(out_dims));
    ComputePipeline::elementwise("Select", o_s.size(), 1, move |inp| {
        k::select(inp[0], &c_s, inp[1], &a_s, inp[2], &b_s, &o_s)
    })
}

/// One-hot encoding of an index buffer.
pub fn one_hot(depth: usize, on: f32, off: f32, out_len: usize) -> ComputePipeline {
    ComputePipeline::elementwise("OneHot", out_len, 1, move |inp| {
        k::one_hot(&narrow_i32(inp[0]), depth, on, off)
    })
}

/// Bilinear resize of an NHWC tensor.
pub fn resize_bilinear(
    in_dims: Vec<usize>,
    new_h: usize,
    new_w: usize,
    align_corners: bool,
) -> ComputePipeline {
    let shape = Shape::new(in_dims);
    let out_len = shape.dim(0) * new_h * new_w * shape.dim(3);
    ComputePipeline::elementwise("ResizeBilinear", out_len, 4, move |inp| {
        k::resize_bilinear(inp[0], &shape, new_h, new_w, align_corners)
    })
}

/// Fused elementwise chain: one dispatch applies the whole step list,
/// replaying the same broadcast/kernel sequence the unfused fallback
/// composes (one shared-kernel call per step → bit-identical).
/// `step_shapes[i]` is the chain's shape after step `i`, precomputed by the
/// backend from the validated op-layer shapes.
pub fn fused_elementwise(
    x_dims: Vec<usize>,
    extra_dims: Vec<Vec<usize>>,
    steps: Vec<FusedStep>,
    step_shapes: Vec<Shape>,
    out_len: usize,
) -> ComputePipeline {
    let x_shape = Shape::new(x_dims);
    let extra_shapes: Vec<Shape> = extra_dims.into_iter().map(Shape::new).collect();
    let cost = steps.len().max(1);
    ComputePipeline::elementwise("FusedElementwise", out_len, cost, move |inp| {
        let mut vals = inp[0].to_vec();
        let mut shape = x_shape.clone();
        for (step, after) in steps.iter().zip(&step_shapes) {
            match *step {
                FusedStep::Unary(op) => vals = k::unary(op, &vals),
                FusedStep::Binary(op, i) => {
                    vals = k::binary(op, &vals, &shape, inp[1 + i], &extra_shapes[i], after);
                }
            }
            shape = after.clone();
        }
        vals
    })
}
