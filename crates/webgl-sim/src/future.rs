//! A promise-like handle for asynchronous texture readback.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Debug)]
struct State {
    slot: Mutex<Option<Result<Vec<f32>, String>>>,
    cond: Condvar,
}

/// The resolving half, held by the device thread.
#[derive(Debug, Clone)]
pub struct ReadPromise {
    state: Arc<State>,
}

impl ReadPromise {
    /// Resolve the paired [`ReadFuture`].
    pub fn complete(&self, value: Result<Vec<f32>, String>) {
        let mut slot = self.state.slot.lock();
        *slot = Some(value);
        self.state.cond.notify_all();
    }
}

/// A pending asynchronous read of texture data.
#[derive(Debug)]
pub struct ReadFuture {
    state: Arc<State>,
}

impl ReadFuture {
    /// Create an unresolved future plus its promise.
    pub fn pending() -> (ReadFuture, ReadPromise) {
        let state = Arc::new(State { slot: Mutex::new(None), cond: Condvar::new() });
        (ReadFuture { state: state.clone() }, ReadPromise { state })
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<Result<Vec<f32>, String>> {
        self.state.slot.lock().clone()
    }

    /// Whether the read has completed.
    pub fn is_ready(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Block until the read completes.
    pub fn wait(&self) -> Result<Vec<f32>, String> {
        let mut slot = self.state.slot.lock();
        while slot.is_none() {
            self.state.cond.wait(&mut slot);
        }
        slot.clone().expect("resolved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_across_threads() {
        let (fut, promise) = ReadFuture::pending();
        assert!(!fut.is_ready());
        let t = std::thread::spawn(move || promise.complete(Ok(vec![1.0, 2.0])));
        assert_eq!(fut.wait().unwrap(), vec![1.0, 2.0]);
        t.join().unwrap();
    }

    #[test]
    fn carries_errors() {
        let (fut, promise) = ReadFuture::pending();
        promise.complete(Err("context lost".into()));
        assert_eq!(fut.wait().unwrap_err(), "context lost");
    }
}
