//! The GPGPUContext (paper Sec 4.1): the host-side abstraction over the
//! simulated WebGL device — texture upload/readback, program execution,
//! fences, disjoint timer queries, recycling and paging.

use crate::devices::DeviceProfile;
use crate::fault::{ContextLossEvent, FaultPlan, FaultState, FaultStats};
use crate::future::ReadFuture;
use crate::layout::{LayoutError, TextureLayout};
use crate::pager::{PagerStats, PagingPolicy};
use crate::queue::{device_loop, Command, DeviceShared, QueueStats, TexId};
use crate::recycler::RecyclerStats;
use crate::shader::Program;
use crate::texture::TextureFormat;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Context configuration (the tfjs environment flags).
#[derive(Debug, Clone, Copy)]
pub struct ContextConfig {
    /// Use RGBA texel packing for programs that provide a packed body
    /// (paper Sec 3.9, 1.3-1.4x on PoseNet).
    pub packing: bool,
    /// Use the squeezed logical→physical mapping (paper Sec 4.1, ~1.3x).
    pub squeeze_layout: bool,
    /// Automatic texture paging policy (paper Sec 4.1.2).
    pub paging: PagingPolicy,
    /// Texture recycling (paper Sec 4.1.2).
    pub recycling: bool,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            packing: true,
            squeeze_layout: true,
            paging: PagingPolicy::disabled(),
            recycling: true,
        }
    }
}

/// Memory/diagnostic gauges of the device.
#[derive(Debug, Clone, Default)]
pub struct GpuMemoryStats {
    /// Bytes resident in GPU textures.
    pub bytes_in_gpu: usize,
    /// Live texture handles (excluding the recycler's free pool).
    pub num_textures: usize,
    /// Programs executed so far.
    pub programs_run: u64,
    /// Recycler counters.
    pub recycler: RecyclerStats,
    /// Paging counters.
    pub pager: PagerStats,
}

/// Errors from context operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GlError {
    /// The device cannot run float-texture GPGPU at all (Sec 4.1.3).
    Unsupported {
        /// Device name.
        device: String,
    },
    /// A tensor exceeded the device texture limits.
    Layout(LayoutError),
    /// Readback failed.
    Read(String),
    /// The WebGL context was lost (`webglcontextlost`). All device textures
    /// are invalidated; uploads and draws fail until the context is
    /// restored, but host-side shadow copies remain readable.
    ContextLost,
    /// Texture allocation failed: the driver refused `requested` bytes
    /// against a `limit`-byte budget.
    Oom {
        /// Bytes the allocation asked for.
        requested: usize,
        /// The device's byte budget.
        limit: usize,
    },
    /// The driver rejected a shader at compile time.
    ShaderCompile {
        /// Name of the rejected program.
        program: String,
    },
    /// A readback failed transiently; retrying is expected to succeed.
    TransientReadback {
        /// 1-based count of injected readback failures so far.
        attempt: u32,
    },
}

impl GlError {
    /// Whether retrying the same operation on the same context can succeed
    /// without intervention (only transient readbacks qualify; context loss
    /// needs a restore, OOM needs frees, compile failures are permanent).
    pub fn is_transient(&self) -> bool {
        matches!(self, GlError::TransientReadback { .. })
    }
}

impl std::fmt::Display for GlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlError::Unsupported { device } => {
                write!(f, "device {device} lacks float texture support (OES_texture_float)")
            }
            GlError::Layout(e) => write!(f, "{e}"),
            GlError::Read(e) => write!(f, "readback failed: {e}"),
            GlError::ContextLost => write!(f, "webgl context lost"),
            GlError::Oom { requested, limit } => {
                write!(f, "texture allocation of {requested} bytes failed (limit {limit} bytes)")
            }
            GlError::ShaderCompile { program } => {
                write!(f, "shader compilation failed for program {program}")
            }
            GlError::TransientReadback { attempt } => {
                write!(f, "transient readback failure (injected failure #{attempt})")
            }
        }
    }
}

impl std::error::Error for GlError {}

impl From<LayoutError> for GlError {
    fn from(e: LayoutError) -> Self {
        GlError::Layout(e)
    }
}

/// A handle to a device texture holding one logical tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TexHandle {
    /// Device texture id.
    pub id: TexId,
    /// Compiled layout.
    pub layout: TextureLayout,
}

impl TexHandle {
    /// Logical element count.
    pub fn size(&self) -> usize {
        self.layout.size()
    }
}

/// A fence inserted into the command queue (`gl.fenceSync`, Sec 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceHandle(u64);

impl FenceHandle {
    /// The raw fence id, for embedding in backend-neutral tokens.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`FenceHandle::raw`]. Ids are monotone per
    /// context; a stale or foreign id simply compares against
    /// `last_fence` like any other.
    pub fn from_raw(id: u64) -> FenceHandle {
        FenceHandle(id)
    }
}

/// The host-side GPGPU context over a simulated WebGL device.
pub struct GpgpuContext {
    profile: DeviceProfile,
    config: ContextConfig,
    shared: Arc<DeviceShared>,
    sender: Sender<Command>,
    next_tex: AtomicU64,
    next_fence: AtomicU64,
    timing_mark: AtomicU64,
    faults: FaultState,
    /// Compiled-program cache, keyed by (name, packed). Compilation is
    /// attempted on first use of each program variant and the result cached
    /// — like a real GL program cache — so an injected compile failure
    /// repeats deterministically and a context loss forces recompilation.
    compiled: Mutex<HashSet<(&'static str, bool)>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl GpgpuContext {
    /// Create a context on `profile`.
    ///
    /// # Errors
    /// [`GlError::Unsupported`] when the device lacks float-texture support
    /// — callers should fall back to the CPU backend, as TensorFlow.js does.
    pub fn new(profile: DeviceProfile, config: ContextConfig) -> Result<GpgpuContext, GlError> {
        GpgpuContext::with_faults(profile, config, FaultPlan::none())
    }

    /// Create a context that injects faults according to `plan`.
    ///
    /// # Errors
    /// [`GlError::Unsupported`] when the device lacks float-texture support.
    pub fn with_faults(
        profile: DeviceProfile,
        config: ContextConfig,
        plan: FaultPlan,
    ) -> Result<GpgpuContext, GlError> {
        if !profile.supports_float_textures() {
            return Err(GlError::Unsupported { device: profile.name.clone() });
        }
        let shared = Arc::new(DeviceShared::new(config.recycling));
        let (tx, rx) = crossbeam::channel::unbounded();
        let worker_shared = shared.clone();
        let parallelism = profile.parallelism;
        let half = profile.half_precision_only;
        let paging = config.paging;
        let worker = std::thread::Builder::new()
            .name("webgl-device".into())
            .spawn(move || device_loop(rx, worker_shared, parallelism, half, paging))
            .expect("spawn device thread");
        Ok(GpgpuContext {
            profile,
            config,
            shared,
            sender: tx,
            next_tex: AtomicU64::new(1),
            next_fence: AtomicU64::new(1),
            timing_mark: AtomicU64::new(0),
            faults: FaultState::new(plan),
            compiled: Mutex::new(HashSet::new()),
            worker: Some(worker),
        })
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The context configuration.
    pub fn config(&self) -> &ContextConfig {
        &self.config
    }

    /// Per-device epsilon (paper Sec 4.1.3).
    pub fn epsilon(&self) -> f32 {
        self.profile.epsilon()
    }

    fn base_format(&self, packed: bool) -> TextureFormat {
        let fmt = if self.profile.half_precision_only { TextureFormat::R16F } else { TextureFormat::R32F };
        fmt.with_packing(packed)
    }

    fn compile_layout(&self, shape: &[usize], packed: bool) -> Result<TextureLayout, GlError> {
        Ok(TextureLayout::compile(
            shape,
            self.base_format(packed),
            self.profile.max_texture_size,
            self.config.squeeze_layout,
        )?)
    }

    /// Upload host values as a new texture-backed tensor.
    ///
    /// # Errors
    /// [`GlError::Layout`] when the tensor exceeds texture limits;
    /// [`GlError::ContextLost`] / [`GlError::Oom`] under injected faults.
    pub fn upload(&self, data: Vec<f32>, shape: &[usize]) -> Result<TexHandle, GlError> {
        self.try_upload(data, shape).map_err(|(e, _)| e)
    }

    /// Like [`upload`](Self::upload), but returns the data on failure so
    /// callers can keep a host-side copy instead of losing the values —
    /// the basis of graceful degradation in the WebGL backend.
    ///
    /// # Errors
    /// As [`upload`](Self::upload), with the rejected data attached.
    pub fn try_upload(
        &self,
        data: Vec<f32>,
        shape: &[usize],
    ) -> Result<TexHandle, (GlError, Vec<f32>)> {
        if self.faults.is_lost() {
            return Err((GlError::ContextLost, data));
        }
        let layout = match self.compile_layout(shape, false) {
            Ok(l) => l,
            Err(e) => return Err((e, data)),
        };
        if let Err(e) = self.check_alloc(&layout) {
            return Err((e, data));
        }
        let id = self.next_tex.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Upload {
                tex: id,
                data,
                rows: layout.tex_rows,
                cols: layout.tex_cols,
                format: layout.format,
            })
            .expect("device thread alive");
        Ok(TexHandle { id, layout })
    }

    /// Upload u8 quantization codes as an `R8` texture: one byte per code
    /// of device memory (4x less than `R32F`), which is what the
    /// allocator, the paging policy and the injected OOM fault all see.
    /// Sampling the texture yields the integer code widened to f32; the
    /// affine dequantization stays in the consuming program's epilogue.
    ///
    /// # Errors
    /// [`GlError::Layout`] when the tensor exceeds texture limits;
    /// [`GlError::ContextLost`] / [`GlError::Oom`] under injected faults.
    pub fn upload_quantized(&self, codes: &[u8], shape: &[usize]) -> Result<TexHandle, GlError> {
        if self.faults.is_lost() {
            return Err(GlError::ContextLost);
        }
        let layout = TextureLayout::compile(
            shape,
            TextureFormat::R8,
            self.profile.max_texture_size,
            self.config.squeeze_layout,
        )?;
        self.check_alloc(&layout)?;
        let id = self.next_tex.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Upload {
                tex: id,
                data: codes.iter().map(|&c| c as f32).collect(),
                rows: layout.tex_rows,
                cols: layout.tex_cols,
                format: layout.format,
            })
            .expect("device thread alive");
        Ok(TexHandle { id, layout })
    }

    /// Host-side allocation gate for the injected OOM fault: a real driver
    /// reports `gl.OUT_OF_MEMORY` synchronously at texture creation. Only
    /// runs (and only drains the queue, for an accurate residency figure)
    /// when the fault plan sets a byte limit.
    fn check_alloc(&self, layout: &TextureLayout) -> Result<(), GlError> {
        if self.faults.plan().texture_byte_limit.is_none() {
            return Ok(());
        }
        self.flush();
        let requested = layout.byte_size();
        let resident = self.shared.bytes_gpu.load(Ordering::Relaxed);
        match self.faults.alloc_blocked(requested, resident, self.config.paging.enabled) {
            Some(limit) => Err(GlError::Oom { requested, limit }),
            None => Ok(()),
        }
    }

    /// Enqueue a program over `inputs`, returning the output handle
    /// immediately (sub-millisecond) while the device computes.
    ///
    /// Packed program bodies run packed only when the context enables
    /// packing; otherwise the per-element path must be provided by the
    /// caller (programs carry a single body).
    ///
    /// # Errors
    /// [`GlError::Layout`] when the output exceeds texture limits;
    /// [`GlError::ContextLost`], [`GlError::ShaderCompile`] or
    /// [`GlError::Oom`] under injected faults.
    pub fn run(&self, program: Program, inputs: &[&TexHandle]) -> Result<TexHandle, GlError> {
        if self.faults.is_lost() {
            return Err(GlError::ContextLost);
        }
        let packed = program.is_packed() && self.config.packing;
        self.compile_program(&program)?;
        let out_layout = self.compile_layout(&program.out_shape.clone(), packed)?;
        self.check_alloc(&out_layout)?;
        if let Some(event) = self.faults.before_draw() {
            // The draw itself loses the context: invalidate every device
            // texture (the device converts them to host-side shadows) and
            // fire the `webglcontextlost` observers.
            self.sender.send(Command::LoseContext).expect("device thread alive");
            self.compiled.lock().clear();
            self.faults.notify_loss(&event);
            return Err(GlError::ContextLost);
        }
        let id = self.next_tex.fetch_add(1, Ordering::Relaxed);
        let in_layouts: Vec<TextureLayout> = inputs.iter().map(|h| h.layout.clone()).collect();
        // Straggler injection: decided host-side (seeded, synchronous, like
        // every other fault decision) but paid on the device thread, where a
        // real throttled GPU would pay it.
        let stall_ns = self.faults.draw_stall().unwrap_or(0);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Run {
                program,
                inputs: inputs.iter().map(|h| h.id).collect(),
                in_layouts,
                output: id,
                out_layout: out_layout.clone(),
                stall_ns,
                trace_id: webml_telemetry::current_trace_id(),
            })
            .expect("device thread alive");
        Ok(TexHandle { id, layout: out_layout })
    }

    /// Re-view a texture under a different logical shape (same element
    /// count): the free `reshape` of paper Sec 3.4 — no data moves, only
    /// the layout's accessor math changes.
    ///
    /// # Errors
    /// [`GlError::Layout`] when the shape cannot be laid out (cannot happen
    /// for shapes of equal size to an existing layout, kept for safety).
    pub fn relayout(&self, h: &TexHandle, shape: &[usize]) -> Result<TexHandle, GlError> {
        let mut layout = TextureLayout::compile(
            shape,
            h.layout.format,
            self.profile.max_texture_size,
            self.config.squeeze_layout,
        )?;
        // Keep the physical texture geometry of the existing allocation.
        layout.tex_rows = h.layout.tex_rows;
        layout.tex_cols = h.layout.tex_cols;
        Ok(TexHandle { id: h.id, layout })
    }

    /// Attempt to compile (or fetch from the program cache) a shader.
    fn compile_program(&self, program: &Program) -> Result<(), GlError> {
        let key = program.compile_key(self.config.packing);
        let mut cache = self.compiled.lock();
        if cache.contains(&key) {
            return Ok(());
        }
        if self.faults.compile_blocked(program.name, self.profile.half_precision_only) {
            return Err(GlError::ShaderCompile { program: program.name.to_string() });
        }
        cache.insert(key);
        Ok(())
    }

    /// Blocking readback (`gl.readPixels` after an implicit flush) — the
    /// `dataSync()` path of Figure 2. When the command queue still has
    /// unexecuted uploads or draws, the simulated driver charges the
    /// profile's pipeline-drain penalty as wall-clock latency; synchronize
    /// with [`GpgpuContext::wait_fence`] first (the Figure 3 discipline) to
    /// read for free.
    ///
    /// Readback keeps working after a context loss: the device preserves
    /// host-side shadows of invalidated textures, exactly the copies a
    /// recovery path re-uploads elsewhere.
    ///
    /// # Errors
    /// [`GlError::Read`] when the texture does not exist;
    /// [`GlError::TransientReadback`] under injected faults.
    pub fn read_sync(&self, h: &TexHandle) -> Result<Vec<f32>, GlError> {
        let drain_ns = if self.shared.pending.load(Ordering::SeqCst) > 0 {
            self.profile.readback_sync_penalty_ns
        } else {
            0
        };
        self.enqueue_read(h, drain_ns)?.wait().map_err(GlError::Read)
    }

    /// Asynchronous readback — the `data()` path of Figure 3. The future
    /// resolves once the device has executed all prior commands and copied
    /// the values out.
    pub fn read_async(&self, h: &TexHandle) -> ReadFuture {
        match self.read_async_checked(h) {
            Ok(f) => f,
            Err(e) => {
                let (future, promise) = ReadFuture::pending();
                promise.complete(Err(e.to_string()));
                future
            }
        }
    }

    /// Fallible asynchronous readback: transient faults are reported
    /// synchronously as structured errors instead of through the future, so
    /// callers can classify and retry. Asynchronous reads model the
    /// fence-synchronized `gl.fenceSync` path and never pay the pipeline
    /// drain — the host is not blocked while the queue executes.
    ///
    /// # Errors
    /// [`GlError::TransientReadback`] under injected faults.
    pub fn read_async_checked(&self, h: &TexHandle) -> Result<ReadFuture, GlError> {
        self.enqueue_read(h, 0)
    }

    fn enqueue_read(&self, h: &TexHandle, drain_ns: u64) -> Result<ReadFuture, GlError> {
        if let Some(attempt) = self.faults.readback_blocked() {
            return Err(GlError::TransientReadback { attempt });
        }
        let (future, promise) = ReadFuture::pending();
        self.sender
            .send(Command::ReadPixels { tex: h.id, len: h.size(), drain_ns, promise })
            .expect("device thread alive");
        Ok(future)
    }

    /// Whether the context is currently lost.
    pub fn is_context_lost(&self) -> bool {
        self.faults.is_lost()
    }

    /// Attempt to restore a lost context, like the browser's
    /// `webglcontextrestored` flow. Returns whether the context is usable:
    /// `true` when it was not lost, or when the fault plan allows
    /// restoration. The program cache stays cleared after a loss, so
    /// shaders recompile on next use; invalidated textures page back onto
    /// the device lazily from their host shadows.
    pub fn restore_context(&self) -> bool {
        if !self.faults.is_lost() {
            return true;
        }
        self.faults.try_restore()
    }

    /// Register an observer for context-loss events — the simulator's
    /// `webglcontextlost` listener.
    pub fn on_context_lost(&self, f: impl Fn(&ContextLossEvent) + Send + Sync + 'static) {
        self.faults.add_observer(Box::new(f));
    }

    /// The fault plan this context was created with.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Number of program variants in the compiled-shader cache.
    pub fn programs_compiled(&self) -> usize {
        self.compiled.lock().len()
    }

    /// Release a texture back to the recycler.
    pub fn dispose(&self, h: &TexHandle) {
        let _ = self.sender.send(Command::Dispose { tex: h.id });
    }

    /// Insert a fence into the command queue (`gl.fenceSync`).
    pub fn fence(&self) -> FenceHandle {
        let id = self.next_fence.fetch_add(1, Ordering::Relaxed);
        self.sender.send(Command::Fence { id }).expect("device thread alive");
        FenceHandle(id)
    }

    /// Poll whether a fence has passed (all commands before it completed).
    pub fn fence_passed(&self, f: FenceHandle) -> bool {
        self.shared.last_fence.load(Ordering::SeqCst) >= f.0
    }

    /// Block until a fence passes — `gl.clientWaitSync`. A condvar sleep,
    /// not a spin: the device thread notifies as each fence command
    /// executes. Fast-path returns without locking when the fence already
    /// passed; only genuine sleeps count in
    /// [`QueueStats::fence_waits`]/[`QueueStats::fence_wait_ns`].
    pub fn wait_fence(&self, f: FenceHandle) {
        if self.fence_passed(f) {
            return;
        }
        let t0 = webml_telemetry::now_ns();
        let mut guard = self.shared.fence_lock.lock();
        while self.shared.last_fence.load(Ordering::SeqCst) < f.0 {
            self.shared.fence_cond.wait(&mut guard);
        }
        drop(guard);
        self.shared.fence_waits.fetch_add(1, Ordering::Relaxed);
        self.shared
            .fence_wait_ns
            .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
    }

    /// Block until every queued command has executed: insert a fence and
    /// wait for it.
    pub fn flush(&self) {
        self.wait_fence(self.fence());
    }

    /// Snapshot of device-queue counters (busy time, fence waits, pipeline
    /// drains, pending commands). Does not flush.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.queue_stats()
    }

    /// Begin a disjoint-timer-query window measuring pure device time.
    pub fn begin_timing(&self) {
        self.flush();
        self.timing_mark.store(self.shared.gpu_nanos.load(Ordering::Relaxed), Ordering::SeqCst);
    }

    /// End the timing window, returning device milliseconds spent in
    /// programs (excluding upload/download, as the paper's WebGL timing
    /// does).
    pub fn end_timing(&self) -> f64 {
        self.flush();
        let now = self.shared.gpu_nanos.load(Ordering::Relaxed);
        (now - self.timing_mark.load(Ordering::SeqCst)) as f64 / 1e6
    }

    /// The cumulative disjoint-timer-query counter: modeled device
    /// nanoseconds spent executing programs since context creation. Does
    /// *not* flush — pair with [`GpgpuContext::flush`] when the sample
    /// must cover already-enqueued work.
    pub fn device_nanos(&self) -> u64 {
        self.shared.gpu_nanos.load(Ordering::Relaxed)
    }

    /// Memory and diagnostics snapshot (flushes first for stable numbers).
    pub fn memory(&self) -> GpuMemoryStats {
        self.flush();
        GpuMemoryStats {
            bytes_in_gpu: self.shared.bytes_gpu.load(Ordering::Relaxed),
            num_textures: self.shared.textures.lock().len(),
            programs_run: self.shared.program_count.load(Ordering::Relaxed),
            recycler: self.shared.recycler_stats(),
            pager: *self.shared.pager.lock(),
        }
    }
}

impl Drop for GpgpuContext {
    fn drop(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shader::Program;

    fn ctx() -> GpgpuContext {
        GpgpuContext::new(DeviceProfile::intel_iris_pro(), ContextConfig::default()).unwrap()
    }

    #[test]
    fn upload_read_round_trip() {
        let c = ctx();
        let h = c.upload(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(c.read_sync(&h).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn quantized_upload_is_one_byte_per_code() {
        let c = ctx();
        let codes: Vec<u8> = (0..=255).collect();
        let h = c.upload_quantized(&codes, &[256]).unwrap();
        assert_eq!(h.layout.format, TextureFormat::R8);
        // Sampling returns the raw codes widened to f32.
        let vals = c.read_sync(&h).unwrap();
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[255], 255.0);
        // Device residency is 1 byte per texel, vs 4 for an f32 upload.
        assert_eq!(h.layout.byte_size(), 256);
        let f = c.upload(vec![0.0; 256], &[256]).unwrap();
        assert_eq!(f.layout.byte_size(), 1024);
        // A program can consume the codes like any other texture.
        let prog = Program::per_element("Dequant", vec![256], |s, i, _| {
            s.get_flat(0, i) * 0.5 - 4.0
        });
        let out = c.run(prog, &[&h]).unwrap();
        let deq = c.read_sync(&out).unwrap();
        assert_eq!(deq[8], 8.0 * 0.5 - 4.0);
    }

    #[test]
    fn quantized_survives_context_loss_shadow() {
        use crate::fault::FaultPlan;
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().lose_context_at(1),
        )
        .unwrap();
        let h = c.upload_quantized(&[7, 19, 255], &[3]).unwrap();
        let id = Program::per_element("Id", vec![3], |s, i, _| s.get_flat(0, i));
        assert_eq!(c.run(id, &[&h]), Err(GlError::ContextLost));
        // The shadow keeps the codes readable across the loss.
        assert_eq!(c.read_sync(&h).unwrap(), vec![7.0, 19.0, 255.0]);
        assert!(c.restore_context());
        let id2 = Program::per_element("Id", vec![3], |s, i, _| s.get_flat(0, i));
        let out = c.run(id2, &[&h]).unwrap();
        assert_eq!(c.read_sync(&out).unwrap(), vec![7.0, 19.0, 255.0]);
    }

    #[test]
    fn unsupported_device_is_rejected() {
        let e = GpgpuContext::new(DeviceProfile::android_legacy(), ContextConfig::default());
        assert!(matches!(e, Err(GlError::Unsupported { .. })));
    }

    #[test]
    fn run_add_program() {
        let c = ctx();
        let a = c.upload(vec![1.0, 2.0], &[2]).unwrap();
        let b = c.upload(vec![10.0, 20.0], &[2]).unwrap();
        let prog = Program::per_element("Add", vec![2], |s, i, _| {
            s.get_flat(0, i) + s.get_flat(1, i)
        });
        let out = c.run(prog, &[&a, &b]).unwrap();
        assert_eq!(c.read_sync(&out).unwrap(), vec![11.0, 22.0]);
    }

    #[test]
    fn enqueue_returns_before_completion() {
        // A chain of slow programs: run() must return quickly while the
        // fence only passes later.
        let c = ctx();
        let a = c.upload(vec![1.0; 256], &[256]).unwrap();
        let slow = Program::per_element("Slow", vec![256], |s, i, _| {
            // Artificial heavy per-element math.
            let mut v = s.get_flat(0, i);
            for _ in 0..20_000 {
                v = (v * 1.000_001).sin() + 1.0;
            }
            v
        });
        let t0 = std::time::Instant::now();
        let out = c.run(slow, &[&a]).unwrap();
        let fence = c.fence();
        let enqueue_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(enqueue_ms < 50.0, "enqueue took {enqueue_ms} ms");
        assert!(!c.fence_passed(fence) || t0.elapsed().as_millis() > 0);
        // Blocking read waits for the result.
        let vals = c.read_sync(&out).unwrap();
        assert_eq!(vals.len(), 256);
        assert!(c.fence_passed(fence));
    }

    #[test]
    fn async_read_resolves() {
        let c = ctx();
        let a = c.upload(vec![3.0], &[1]).unwrap();
        let prog = Program::per_element("Square", vec![1], |s, i, _| {
            let v = s.get_flat(0, i);
            v * v
        });
        let out = c.run(prog, &[&a]).unwrap();
        let fut = c.read_async(&out);
        assert_eq!(fut.wait().unwrap(), vec![9.0]);
    }

    #[test]
    fn dispose_recycles_textures() {
        let c = ctx();
        let h = c.upload(vec![0.0; 64], &[64]).unwrap();
        c.dispose(&h);
        let h2 = c.upload(vec![1.0; 64], &[64]).unwrap();
        let m = c.memory();
        assert_eq!(m.recycler.hits, 1, "second same-shape upload must recycle");
        assert_eq!(c.read_sync(&h2).unwrap()[0], 1.0);
    }

    #[test]
    fn timer_query_measures_device_time() {
        let c = ctx();
        let a = c.upload(vec![1.0; 4096], &[4096]).unwrap();
        c.begin_timing();
        let prog = Program::per_element("Work", vec![4096], |s, i, _| {
            let mut v = s.get_flat(0, i);
            for _ in 0..100 {
                v = v * 1.0001 + 0.1;
            }
            v
        });
        let out = c.run(prog, &[&a]).unwrap();
        let ms = c.end_timing();
        assert!(ms > 0.0);
        let _ = c.read_sync(&out);
    }

    #[test]
    fn f16_device_rounds_uploads() {
        let c = GpgpuContext::new(DeviceProfile::ios_safari(), ContextConfig::default()).unwrap();
        let h = c.upload(vec![1e-8, 1.0], &[2]).unwrap();
        assert_eq!(c.read_sync(&h).unwrap(), vec![0.0, 1.0]);
        assert_eq!(c.epsilon(), 1e-4);
    }

    #[test]
    fn paging_prevents_unbounded_gpu_growth() {
        let config = ContextConfig {
            paging: PagingPolicy { enabled: true, threshold_bytes: 64 * 1024 },
            ..Default::default()
        };
        let c = GpgpuContext::new(DeviceProfile::intel_iris_pro(), config).unwrap();
        // Allocate ~1 MB without disposing anything (a leaky app).
        let mut handles = Vec::new();
        for i in 0..64 {
            handles.push(c.upload(vec![i as f32; 4096], &[4096]).unwrap());
        }
        let m = c.memory();
        assert!(m.bytes_in_gpu <= 96 * 1024, "GPU stays near threshold, got {}", m.bytes_in_gpu);
        assert!(m.pager.page_outs > 0);
        // Paged textures are still readable and correct.
        assert_eq!(c.read_sync(&handles[0]).unwrap()[0], 0.0);
        assert_eq!(c.read_sync(&handles[5]).unwrap()[0], 5.0);
    }

    #[test]
    fn context_loss_invalidates_textures_but_preserves_shadows() {
        use crate::fault::FaultPlan;
        use std::sync::atomic::{AtomicU64, Ordering};
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().lose_context_at(2),
        )
        .unwrap();
        let events = Arc::new(AtomicU64::new(0));
        let ev = events.clone();
        c.on_context_lost(move |e| {
            assert_eq!(e.draws_completed, 1);
            assert!(e.restorable);
            ev.fetch_add(1, Ordering::SeqCst);
        });
        let a = c.upload(vec![1.0, 2.0], &[2]).unwrap();
        let double = || Program::per_element("Double", vec![2], |s, i, _| s.get_flat(0, i) * 2.0);
        let out = c.run(double(), &[&a]).unwrap();
        // Second draw loses the context.
        assert_eq!(c.run(double(), &[&out]), Err(GlError::ContextLost));
        assert!(c.is_context_lost());
        assert_eq!(events.load(Ordering::SeqCst), 1);
        // Uploads and draws fail while lost; reads serve host shadows.
        assert!(matches!(c.upload(vec![0.0], &[1]), Err(GlError::ContextLost)));
        assert_eq!(c.read_sync(&a).unwrap(), vec![1.0, 2.0]);
        assert_eq!(c.read_sync(&out).unwrap(), vec![2.0, 4.0]);
        assert_eq!(c.memory().bytes_in_gpu, 0, "all textures invalidated");
        // Restore: programs recompile, old textures page back in lazily.
        assert_eq!(c.programs_compiled(), 0, "program cache cleared on loss");
        assert!(c.restore_context());
        let out2 = c.run(double(), &[&out]).unwrap();
        assert_eq!(c.read_sync(&out2).unwrap(), vec![4.0, 8.0]);
        assert_eq!(c.fault_stats().context_losses, 1);
    }

    #[test]
    fn unrestorable_loss_stays_lost() {
        use crate::fault::FaultPlan;
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().lose_context_at(1).unrestorable(),
        )
        .unwrap();
        let a = c.upload(vec![1.0], &[1]).unwrap();
        let prog = Program::per_element("Id", vec![1], |s, i, _| s.get_flat(0, i));
        assert_eq!(c.run(prog, &[&a]), Err(GlError::ContextLost));
        assert!(!c.restore_context());
        assert!(c.is_context_lost());
    }

    #[test]
    fn blocked_shader_fails_compile_deterministically() {
        use crate::fault::FaultPlan;
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().block_shader("Square"),
        )
        .unwrap();
        let a = c.upload(vec![3.0], &[1]).unwrap();
        let square = || Program::per_element("Square", vec![1], |s, i, _| s.get_flat(0, i).powi(2));
        let ok = Program::per_element("Cube", vec![1], |s, i, _| s.get_flat(0, i).powi(3));
        for _ in 0..3 {
            assert!(matches!(
                c.run(square(), &[&a]),
                Err(GlError::ShaderCompile { ref program }) if program == "Square"
            ));
        }
        assert_eq!(c.read_sync(&c.run(ok, &[&a]).unwrap()).unwrap(), vec![27.0]);
        assert_eq!(c.fault_stats().compile_failures, 3);
        assert_eq!(c.programs_compiled(), 1);
    }

    #[test]
    fn texture_byte_limit_injects_oom() {
        use crate::fault::FaultPlan;
        // No paging: cumulative pressure hits the limit.
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().with_texture_byte_limit(32 * 1024),
        )
        .unwrap();
        let _a = c.upload(vec![0.0; 4096], &[4096]).unwrap(); // 16 KB
        let _b = c.upload(vec![0.0; 4096], &[4096]).unwrap(); // 32 KB
        let err = c.upload(vec![0.0; 4096], &[4096]).unwrap_err();
        assert!(matches!(err, GlError::Oom { limit, .. } if limit == 32 * 1024));
        assert_eq!(c.fault_stats().oom_failures, 1);

        // With paging enabled, the same pressure is absorbed by page-outs.
        let config = ContextConfig {
            paging: PagingPolicy { enabled: true, threshold_bytes: 24 * 1024 },
            ..Default::default()
        };
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            config,
            FaultPlan::none().with_texture_byte_limit(32 * 1024),
        )
        .unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            handles.push(c.upload(vec![i as f32; 4096], &[4096]).unwrap());
        }
        assert!(c.memory().pager.page_outs > 0);
        assert_eq!(c.read_sync(&handles[0]).unwrap()[0], 0.0);
        // A single allocation beyond the limit still fails.
        assert!(matches!(c.upload(vec![0.0; 16384], &[16384]), Err(GlError::Oom { .. })));
    }

    #[test]
    fn draw_stalls_hit_the_device_clock_and_stay_correct() {
        use crate::fault::FaultPlan;
        let stall_ns = 2_000_000; // 2 ms
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan { seed: 7, ..FaultPlan::none() }.with_draw_stall(1.0, stall_ns),
        )
        .unwrap();
        let a = c.upload(vec![1.0, 2.0], &[2]).unwrap();
        let double = || Program::per_element("Double", vec![2], |s, i, _| s.get_flat(0, i) * 2.0);
        c.begin_timing();
        let t0 = std::time::Instant::now();
        let out = c.run(double(), &[&a]).unwrap();
        // Stalled draws still compute the right answer.
        assert_eq!(c.read_sync(&out).unwrap(), vec![2.0, 4.0]);
        let device_ms = c.end_timing();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stall_ms = stall_ns as f64 / 1e6;
        assert!(device_ms >= stall_ms, "stall on the device clock: {device_ms} ms");
        assert!(wall_ms >= stall_ms, "stall visible in wall latency: {wall_ms} ms");
        assert_eq!(c.fault_stats().draw_stalls, 1);
    }

    #[test]
    fn transient_readback_errors_then_succeeds() {
        use crate::fault::FaultPlan;
        let c = GpgpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            ContextConfig::default(),
            FaultPlan::none().with_readback_failures(1.0, 2),
        )
        .unwrap();
        let h = c.upload(vec![5.0], &[1]).unwrap();
        assert!(matches!(c.read_sync(&h), Err(GlError::TransientReadback { attempt: 1 })));
        assert!(c.read_sync(&h).unwrap_err().is_transient());
        assert_eq!(c.read_sync(&h).unwrap(), vec![5.0]);
        assert_eq!(c.fault_stats().transient_read_failures, 2);
    }

    #[test]
    fn paged_texture_pages_back_in_when_sampled() {
        let config = ContextConfig {
            paging: PagingPolicy { enabled: true, threshold_bytes: 32 * 1024 },
            ..Default::default()
        };
        let c = GpgpuContext::new(DeviceProfile::intel_iris_pro(), config).unwrap();
        let first = c.upload(vec![7.0; 4096], &[4096]).unwrap();
        for _ in 0..16 {
            let _ = c.upload(vec![0.0; 4096], &[4096]).unwrap();
        }
        // `first` should have been paged out by now; running a program on it
        // pages it back in.
        let prog = Program::per_element("AddOne", vec![4096], |s, i, _| s.get_flat(0, i) + 1.0);
        let out = c.run(prog, &[&first]).unwrap();
        assert_eq!(c.read_sync(&out).unwrap()[0], 8.0);
        assert!(c.memory().pager.page_ins > 0);
    }
}
