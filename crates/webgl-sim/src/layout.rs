//! The layout compiler: maps logical N-D tensor shapes onto physical 2-D
//! textures (paper Sec 4.1).
//!
//! User programs address tensors in high-dimensional *logical* space (the
//! generated `getA(batch, row, col, depth)` accessors of the paper); the
//! layout owns the mapping to texture texels. Keeping the two spaces
//! separate lets the framework pick texture shapes that respect
//! device-specific size limits, and enables the *squeeze optimization*: a
//! `1x3x1x2` tensor maps to a `3x2` texture and its accessor ignores the
//! unit dimensions — worth ~1.3x in the paper.

use crate::texture::TextureFormat;

/// A compiled logical→physical mapping for one tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TextureLayout {
    /// Logical shape.
    pub logical: Vec<usize>,
    /// Full-rank row-major strides of the logical shape.
    pub strides: Vec<usize>,
    /// Indices of non-unit dims (the squeeze optimization).
    pub squeezed_axes: Vec<usize>,
    /// Strides for the squeezed dims only.
    pub squeezed_strides: Vec<usize>,
    /// Physical texture rows (texels).
    pub tex_rows: usize,
    /// Physical texture columns (texels).
    pub tex_cols: usize,
    /// Texture format (packing and precision).
    pub format: TextureFormat,
    /// Whether accessors use the squeezed fast path.
    pub use_squeeze: bool,
}

/// Errors from layout compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The tensor does not fit the device's maximum texture size.
    TooLarge {
        /// Required texel count.
        texels: usize,
        /// Device limit per dimension.
        max_size: usize,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::TooLarge { texels, max_size } => {
                write!(f, "tensor needs {texels} texels, exceeding the {max_size}x{max_size} texture limit")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

fn strides_of(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

impl TextureLayout {
    /// Compile a layout for `logical` under the given format and device
    /// texture-size limit.
    ///
    /// # Errors
    /// [`LayoutError::TooLarge`] when no `rows x cols <= max x max` texture
    /// can hold the tensor.
    pub fn compile(
        logical: &[usize],
        format: TextureFormat,
        max_size: usize,
        use_squeeze: bool,
    ) -> Result<TextureLayout, LayoutError> {
        let size: usize = logical.iter().product::<usize>().max(1);
        let texels = size.div_ceil(format.channels());
        // Near-square texture, capped by the device limit.
        let mut cols = (texels as f64).sqrt().ceil() as usize;
        cols = cols.clamp(1, max_size);
        let rows = texels.div_ceil(cols);
        if rows > max_size {
            // Retry with the widest allowed texture.
            let cols = max_size;
            let rows = texels.div_ceil(cols);
            if rows > max_size {
                return Err(LayoutError::TooLarge { texels, max_size });
            }
            return Ok(Self::build(logical, rows, cols, format, use_squeeze));
        }
        Ok(Self::build(logical, rows, cols, format, use_squeeze))
    }

    fn build(
        logical: &[usize],
        tex_rows: usize,
        tex_cols: usize,
        format: TextureFormat,
        use_squeeze: bool,
    ) -> TextureLayout {
        let strides = strides_of(logical);
        let squeezed_axes: Vec<usize> =
            logical.iter().enumerate().filter(|(_, &d)| d != 1).map(|(i, _)| i).collect();
        let squeezed_dims: Vec<usize> = squeezed_axes.iter().map(|&i| logical[i]).collect();
        let sq = strides_of(&squeezed_dims);
        TextureLayout {
            logical: logical.to_vec(),
            strides,
            squeezed_axes,
            squeezed_strides: sq,
            tex_rows,
            tex_cols,
            format,
            use_squeeze,
        }
    }

    /// Logical element count.
    pub fn size(&self) -> usize {
        self.logical.iter().product::<usize>().max(1)
    }

    /// Texel count of the physical texture.
    pub fn texels(&self) -> usize {
        self.tex_rows * self.tex_cols
    }

    /// Bytes of device memory an allocation with this layout occupies —
    /// what the driver's allocator (and the injected OOM fault) sees.
    pub fn byte_size(&self) -> usize {
        self.texels() * self.format.channels() * self.format.bytes_per_channel()
    }

    /// Map logical N-D coordinates to the flat channel slot.
    ///
    /// With `use_squeeze` the accessor touches only non-unit dims (the
    /// generated `getA(a,b,c,d)` that "ignores a and c" in the paper). The
    /// unoptimized path reproduces the pre-optimization address arithmetic:
    /// full-rank stride math plus an explicit round-trip through 2-D texture
    /// coordinates (row/col div-mod), which is what a naive GLSL mapping
    /// performs per sample.
    #[inline]
    pub fn slot(&self, coords: &[usize]) -> usize {
        if self.use_squeeze {
            let mut idx = 0;
            for (k, &ax) in self.squeezed_axes.iter().enumerate() {
                idx += coords[ax] * self.squeezed_strides[k];
            }
            idx
        } else {
            let mut idx = 0;
            for (i, &c) in coords.iter().enumerate() {
                idx += c * self.strides[i];
            }
            // Emulate the per-sample arithmetic of the unoptimized GLSL
            // mapping: the generated accessor converts the flat index to
            // floating-point normalized UV coordinates and back before the
            // texture fetch. The squeezed fast path above compiles all of
            // this away for unit dimensions.
            let ch = self.format.channels();
            let texel = idx / ch;
            let within = idx % ch;
            if texel >= (1 << 22) {
                // f32 UV math would lose integer precision (a real WebGL
                // hazard); keep the integer path for very large textures.
                return idx;
            }
            let cols = self.tex_cols as f32;
            let rows = self.tex_rows as f32;
            let row = (texel as f32 / cols).floor();
            let col = texel as f32 - row * cols;
            let u = (col + 0.5) / cols;
            let v = (row + 0.5) / rows;
            let col_back = (u * cols - 0.5).round() as usize;
            let row_back = (v * rows - 0.5).round() as usize;
            (row_back * self.tex_cols + col_back) * ch + within
        }
    }

    /// Map a logical flat index to its channel slot (identity by
    /// construction, kept for clarity at call sites).
    #[inline]
    pub fn slot_of_flat(&self, flat: usize) -> usize {
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_layout() {
        let l = TextureLayout::compile(&[100], TextureFormat::R32F, 16_384, true).unwrap();
        assert_eq!(l.tex_cols, 10);
        assert_eq!(l.tex_rows, 10);
        assert_eq!(l.texels(), 100);
    }

    #[test]
    fn packed_needs_quarter_texels() {
        let l = TextureLayout::compile(&[100], TextureFormat::Rgba32F, 16_384, true).unwrap();
        assert_eq!(l.texels(), 25);
    }

    #[test]
    fn respects_max_size_by_going_wide() {
        // 2^20 elements with a tiny max size of 1024: 1024x1024 exactly.
        let l = TextureLayout::compile(&[1 << 20], TextureFormat::R32F, 1024, true).unwrap();
        assert_eq!((l.tex_rows, l.tex_cols), (1024, 1024));
    }

    #[test]
    fn too_large_errors() {
        let e = TextureLayout::compile(&[64, 64, 64], TextureFormat::R32F, 16, true);
        assert!(matches!(e, Err(LayoutError::TooLarge { .. })));
    }

    #[test]
    fn squeeze_path_matches_naive_path() {
        // The paper's 1x3x1x2 example: both paths must address identically.
        let sq = TextureLayout::compile(&[1, 3, 1, 2], TextureFormat::R32F, 1024, true).unwrap();
        let naive = TextureLayout::compile(&[1, 3, 1, 2], TextureFormat::R32F, 1024, false).unwrap();
        for b in 0..3 {
            for d in 0..2 {
                let coords = [0, b, 0, d];
                assert_eq!(sq.slot(&coords), naive.slot(&coords));
                assert_eq!(sq.slot(&coords), b * 2 + d);
            }
        }
    }

    #[test]
    fn squeezed_axes_of_unit_dims() {
        let l = TextureLayout::compile(&[1, 3, 1, 2], TextureFormat::R32F, 1024, true).unwrap();
        assert_eq!(l.squeezed_axes, vec![1, 3]);
        assert_eq!(l.squeezed_strides, vec![2, 1]);
    }

    #[test]
    fn scalar_layout() {
        let l = TextureLayout::compile(&[], TextureFormat::R32F, 1024, true).unwrap();
        assert_eq!(l.size(), 1);
        assert_eq!(l.slot(&[]), 0);
    }
}
