//! Deterministic fault injection for the simulated WebGL device.
//!
//! Real browsers take the GPU away: tabs are backgrounded and the context is
//! lost, drivers reject shaders on restrictive devices, texture allocation
//! fails under memory pressure, and readbacks occasionally fail transiently.
//! TensorFlow.js survives these by construction — this module reproduces
//! them on the simulator so the engine's degradation ladder can be tested
//! deterministically.
//!
//! A [`FaultPlan`] is a seedable schedule of injected faults. All fault
//! decisions are made host-side, synchronously, at enqueue time, so callers
//! observe failures exactly where a real WebGL binding reports them
//! (`gl.getError`, `webglcontextlost`, shader compile status) and can react
//! at kernel granularity. The same plan with the same call sequence always
//! injects the same faults.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// A deterministic schedule of faults to inject into a context.
///
/// The default plan injects nothing. Use the builder-style methods for
/// targeted scenarios, or [`FaultPlan::from_seed`] for a randomized-but-
/// reproducible mixture (the fault-soak configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG (probabilistic faults draw from a splitmix64
    /// stream seeded here; two contexts with equal plans fault identically).
    pub seed: u64,
    /// Lose the context at the N-th draw call (1-based), like a browser
    /// reclaiming the GPU mid-inference.
    pub context_loss_at_draw: Option<u64>,
    /// Additionally lose the context at any draw with this probability.
    pub context_loss_probability: f64,
    /// Whether [`restore_context`](crate::GpgpuContext::restore_context)
    /// succeeds after a loss (browsers may or may not restore).
    pub restorable: bool,
    /// Programs whose compilation fails, by name prefix: blocking
    /// `"MatMul"` rejects both `MatMul` and `MatMulPacked`, modeling a
    /// driver that cannot compile that shader family.
    pub shader_compile_blocklist: Vec<String>,
    /// Fail every shader compile on half-precision-only devices, modeling
    /// mobile drivers whose compilers reject highp-dependent sources.
    pub compile_fails_on_half_precision: bool,
    /// Texture allocation fails once GPU residency would exceed this many
    /// bytes (and any single allocation above it fails outright), modeling
    /// driver OOM. Paging, when enabled, absorbs pressure below the limit.
    pub texture_byte_limit: Option<usize>,
    /// Probability that a readback fails transiently.
    pub readback_failure_rate: f64,
    /// Upper bound on injected transient readback failures (total), so a
    /// bounded retry policy is guaranteed to eventually succeed.
    pub max_transient_readbacks: u32,
    /// Probability that a draw call stalls — a latency spike, not an error.
    /// Models a straggling device (thermal throttling, a contended GPU,
    /// a driver hiccup); the draw still completes correctly.
    pub draw_stall_rate: f64,
    /// Duration of an injected stall: added to the device clock
    /// (`device_nanos`) and slept on the device thread, so stragglers are
    /// visible both to the modeled-time accounting and to real wall-clock
    /// latency observers (e.g. a serving router's health tracker).
    pub draw_stall_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            context_loss_at_draw: None,
            context_loss_probability: 0.0,
            restorable: true,
            shader_compile_blocklist: Vec::new(),
            compile_fails_on_half_precision: false,
            texture_byte_limit: None,
            readback_failure_rate: 0.0,
            max_transient_readbacks: 0,
            draw_stall_rate: 0.0,
            draw_stall_ns: 0,
        }
    }

    /// A reproducible fault mixture derived from `seed` — the fault-soak
    /// configuration. Every seed yields some combination of context loss
    /// (within the first few draws), transient readback failures, and a
    /// restorability bit; numerics must survive all of them.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let r0 = splitmix64(&mut s);
        let r1 = splitmix64(&mut s);
        let r2 = splitmix64(&mut s);
        FaultPlan {
            seed,
            // Lose the context early (draws 1..=8) on three seeds out of
            // four; the remaining quarter exercises readback faults alone.
            context_loss_at_draw: if r0 % 4 != 3 { Some(1 + r1 % 8) } else { None },
            context_loss_probability: 0.0,
            restorable: r0 & 1 == 0,
            shader_compile_blocklist: Vec::new(),
            compile_fails_on_half_precision: false,
            texture_byte_limit: None,
            // A modest transient-readback rate, capped so any bounded
            // retry (>= 3 attempts) is guaranteed to make progress.
            readback_failure_rate: 0.1 + (r2 % 100) as f64 / 500.0,
            max_transient_readbacks: 2,
            draw_stall_rate: 0.0,
            draw_stall_ns: 0,
        }
    }

    /// Lose the context at the given 1-based draw call.
    pub fn lose_context_at(mut self, draw: u64) -> FaultPlan {
        self.context_loss_at_draw = Some(draw);
        self
    }

    /// Mark the context as unrestorable after a loss.
    pub fn unrestorable(mut self) -> FaultPlan {
        self.restorable = false;
        self
    }

    /// Fail compilation of programs whose name starts with `name`.
    pub fn block_shader(mut self, name: impl Into<String>) -> FaultPlan {
        self.shader_compile_blocklist.push(name.into());
        self
    }

    /// Inject allocation OOM above `bytes` of GPU residency.
    pub fn with_texture_byte_limit(mut self, bytes: usize) -> FaultPlan {
        self.texture_byte_limit = Some(bytes);
        self
    }

    /// Inject transient readback failures at `rate`, at most `max` total.
    pub fn with_readback_failures(mut self, rate: f64, max: u32) -> FaultPlan {
        self.readback_failure_rate = rate;
        self.max_transient_readbacks = max;
        self
    }

    /// Inject seeded latency spikes: each draw stalls with probability
    /// `rate` for `modeled_ns` of device time (also slept wall-clock on the
    /// device thread). The draw completes correctly — this models a
    /// straggling engine, not a failing one, so slow-device behavior is
    /// reproducible by seed just like hard faults.
    pub fn with_draw_stall(mut self, rate: f64, modeled_ns: u64) -> FaultPlan {
        self.draw_stall_rate = rate;
        self.draw_stall_ns = modeled_ns;
        self
    }

    /// Whether this plan can inject any fault at all.
    pub fn is_faulty(&self) -> bool {
        self.context_loss_at_draw.is_some()
            || self.context_loss_probability > 0.0
            || !self.shader_compile_blocklist.is_empty()
            || self.compile_fails_on_half_precision
            || self.texture_byte_limit.is_some()
            || self.readback_failure_rate > 0.0
            || (self.draw_stall_rate > 0.0 && self.draw_stall_ns > 0)
    }
}

/// Notification payload delivered to context-loss observers — the
/// simulator's `webglcontextlost` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextLossEvent {
    /// Draw calls completed before the loss (the failing draw excluded).
    pub draws_completed: u64,
    /// Whether `restore_context` can bring the context back.
    pub restorable: bool,
}

/// Counters for injected faults, exposed via
/// [`fault_stats`](crate::GpgpuContext::fault_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Context losses triggered.
    pub context_losses: u64,
    /// Allocation failures injected.
    pub oom_failures: u64,
    /// Shader compilations rejected.
    pub compile_failures: u64,
    /// Transient readback failures injected.
    pub transient_read_failures: u64,
    /// Draw-call latency stalls injected (stragglers).
    pub draw_stalls: u64,
}

/// Host-side runtime state evaluating a [`FaultPlan`]. All checks happen at
/// enqueue time on the host thread, never on the device thread, so fault
/// decisions are synchronous and deterministic.
///
/// Public so sibling device simulators (the WebGPU-class compute device)
/// can evaluate the same fault vocabulary: one `FaultPlan` seed injects
/// the same schedule on either rung of the degradation ladder.
pub struct FaultState {
    plan: FaultPlan,
    rng: Mutex<u64>,
    draws: AtomicU64,
    lost: AtomicBool,
    transient_reads: AtomicU32,
    stats: Mutex<FaultStats>,
    #[allow(clippy::type_complexity)]
    observers: Mutex<Vec<Box<dyn Fn(&ContextLossEvent) + Send + Sync>>>,
}

impl FaultState {
    /// Build the runtime state for `plan`, seeding the fault RNG stream.
    pub fn new(plan: FaultPlan) -> FaultState {
        let rng_seed = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        FaultState {
            plan,
            rng: Mutex::new(rng_seed),
            draws: AtomicU64::new(0),
            lost: AtomicBool::new(false),
            transient_reads: AtomicU32::new(0),
            stats: Mutex::new(FaultStats::default()),
            observers: Mutex::new(Vec::new()),
        }
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters for faults injected so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// Whether the context/device is currently lost.
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::SeqCst)
    }

    /// Clear the lost flag; `true` when the plan allows restoration.
    pub fn try_restore(&self) -> bool {
        if !self.plan.restorable {
            return false;
        }
        self.lost.store(false, Ordering::SeqCst);
        true
    }

    /// Register a loss observer (the simulator's `webglcontextlost` /
    /// `device.lost` listener).
    pub fn add_observer(&self, f: Box<dyn Fn(&ContextLossEvent) + Send + Sync>) {
        self.observers.lock().push(f);
    }

    /// Deliver a loss event to all registered observers.
    pub fn notify_loss(&self, event: &ContextLossEvent) {
        for obs in self.observers.lock().iter() {
            obs(event);
        }
    }

    /// Account a draw call; `Some(event)` when this draw loses the context.
    pub fn before_draw(&self) -> Option<ContextLossEvent> {
        let draw = self.draws.fetch_add(1, Ordering::SeqCst) + 1;
        let scheduled = self.plan.context_loss_at_draw == Some(draw);
        let random = self.plan.context_loss_probability > 0.0
            && self.next_f64() < self.plan.context_loss_probability;
        if !(scheduled || random) || self.lost.swap(true, Ordering::SeqCst) {
            return None;
        }
        self.stats.lock().context_losses += 1;
        Some(ContextLossEvent { draws_completed: draw - 1, restorable: self.plan.restorable })
    }

    /// Whether compiling `program` must fail under this plan.
    pub fn compile_blocked(&self, program: &str, half_precision_device: bool) -> bool {
        let blocked = (self.plan.compile_fails_on_half_precision && half_precision_device)
            || self.plan.shader_compile_blocklist.iter().any(|b| program.starts_with(b.as_str()));
        if blocked {
            self.stats.lock().compile_failures += 1;
        }
        blocked
    }

    /// Check an allocation of `requested` bytes against the byte limit,
    /// given current residency; `Some(limit)` when it must fail. Paging,
    /// when enabled, keeps residency under the limit on its own, so only
    /// single allocations above the limit fail.
    pub fn alloc_blocked(
        &self,
        requested: usize,
        resident: usize,
        paging_enabled: bool,
    ) -> Option<usize> {
        let limit = self.plan.texture_byte_limit?;
        let oom = requested > limit || (!paging_enabled && resident + requested > limit);
        if oom {
            self.stats.lock().oom_failures += 1;
            Some(limit)
        } else {
            None
        }
    }

    /// Whether this draw call stalls; `Some(ns)` carries the injected
    /// stall duration. Drawn from the same seeded RNG stream as the other
    /// probabilistic faults, so a plan's stall schedule is reproducible.
    pub fn draw_stall(&self) -> Option<u64> {
        if self.plan.draw_stall_rate <= 0.0 || self.plan.draw_stall_ns == 0 {
            return None;
        }
        if self.next_f64() >= self.plan.draw_stall_rate {
            return None;
        }
        self.stats.lock().draw_stalls += 1;
        Some(self.plan.draw_stall_ns)
    }

    /// Whether this readback fails transiently; `Some(attempt)` carries the
    /// 1-based injected-failure count. Bounded by the plan's maximum, so
    /// retries always make progress.
    pub fn readback_blocked(&self) -> Option<u32> {
        if self.plan.readback_failure_rate <= 0.0 {
            return None;
        }
        if self.transient_reads.load(Ordering::SeqCst) >= self.plan.max_transient_readbacks {
            return None;
        }
        if self.next_f64() >= self.plan.readback_failure_rate {
            return None;
        }
        let n = self.transient_reads.fetch_add(1, Ordering::SeqCst) + 1;
        if n > self.plan.max_transient_readbacks {
            return None;
        }
        self.stats.lock().transient_read_failures += 1;
        Some(n)
    }

    fn next_f64(&self) -> f64 {
        let mut s = self.rng.lock();
        let r = splitmix64(&mut s);
        (r >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64 step — the same tiny generator the rest of the workspace uses
/// for reproducible pseudo-randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let s = FaultState::new(FaultPlan::none());
        for _ in 0..100 {
            assert!(s.before_draw().is_none());
            assert!(s.readback_blocked().is_none());
        }
        assert!(!s.compile_blocked("MatMul", false));
        assert!(s.alloc_blocked(usize::MAX / 2, 0, false).is_none());
        assert!(!FaultPlan::none().is_faulty());
    }

    #[test]
    fn scheduled_loss_fires_exactly_once() {
        let s = FaultState::new(FaultPlan::none().lose_context_at(3));
        assert!(s.before_draw().is_none());
        assert!(s.before_draw().is_none());
        let e = s.before_draw().expect("third draw loses the context");
        assert_eq!(e.draws_completed, 2);
        assert!(e.restorable);
        assert!(s.is_lost());
        assert_eq!(s.stats().context_losses, 1);
    }

    #[test]
    fn blocklist_matches_by_prefix() {
        let s = FaultState::new(FaultPlan::none().block_shader("MatMul"));
        assert!(s.compile_blocked("MatMul", false));
        assert!(s.compile_blocked("MatMulPacked", false));
        assert!(!s.compile_blocked("Binary", false));
    }

    #[test]
    fn alloc_limit_interacts_with_paging() {
        let s = FaultState::new(FaultPlan::none().with_texture_byte_limit(1000));
        // Single allocation above the limit always fails.
        assert_eq!(s.alloc_blocked(2000, 0, true), Some(1000));
        // Cumulative pressure fails only without paging.
        assert_eq!(s.alloc_blocked(600, 600, false), Some(1000));
        assert!(s.alloc_blocked(600, 600, true).is_none());
    }

    #[test]
    fn transient_readbacks_are_bounded() {
        let plan = FaultPlan::none().with_readback_failures(1.0, 2);
        let s = FaultState::new(plan);
        assert_eq!(s.readback_blocked(), Some(1));
        assert_eq!(s.readback_blocked(), Some(2));
        for _ in 0..50 {
            assert!(s.readback_blocked().is_none());
        }
        assert_eq!(s.stats().transient_read_failures, 2);
    }

    #[test]
    fn from_seed_is_deterministic_and_bounded() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            if let Some(d) = a.context_loss_at_draw {
                assert!((1..=8).contains(&d));
            }
            assert!(a.readback_failure_rate < 0.31);
            assert!(a.max_transient_readbacks <= 2);
        }
        assert!(FaultPlan::from_seed(1).is_faulty());
    }

    #[test]
    fn draw_stalls_are_seeded_and_reproducible() {
        let plan = FaultPlan { seed: 42, ..FaultPlan::none() }.with_draw_stall(0.5, 1_000_000);
        assert!(plan.is_faulty());
        let draws = |p: &FaultPlan| -> Vec<Option<u64>> {
            let s = FaultState::new(p.clone());
            (0..32).map(|_| s.draw_stall()).collect()
        };
        let a = draws(&plan);
        let b = draws(&plan);
        assert_eq!(a, b, "same seed, same stall schedule");
        let stalled = a.iter().flatten().count();
        assert!(stalled > 0 && stalled < 32, "rate 0.5 stalls some but not all draws");
        assert!(a.iter().flatten().all(|&ns| ns == 1_000_000));
        let s = FaultState::new(plan);
        let n = (0..32).filter_map(|_| s.draw_stall()).count() as u64;
        assert_eq!(s.stats().draw_stalls, n);
        // A rate-0 plan never stalls.
        assert!(FaultState::new(FaultPlan::none()).draw_stall().is_none());
    }

    #[test]
    fn restore_respects_restorable_bit() {
        let s = FaultState::new(FaultPlan::none().lose_context_at(1).unrestorable());
        s.before_draw();
        assert!(s.is_lost());
        assert!(!s.try_restore());
        assert!(s.is_lost());

        let s = FaultState::new(FaultPlan::none().lose_context_at(1));
        s.before_draw();
        assert!(s.try_restore());
        assert!(!s.is_lost());
    }

    #[test]
    fn observers_receive_loss_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = FaultState::new(FaultPlan::none().lose_context_at(1));
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        s.add_observer(Box::new(move |e| {
            assert_eq!(e.draws_completed, 0);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let e = s.before_draw().unwrap();
        s.notify_loss(&e);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
