//! The texture recycler (paper Sec 4.1.2).
//!
//! "Disposing and re-allocating WebGL textures is relatively expensive, so
//! we don't release memory when a tensor gets disposed. Instead, we mark the
//! texture for reuse. If another tensor gets allocated with the same
//! physical texture shape, we simply recycle the texture." Repeated passes
//! through the same model produce same-shaped tensors, so the hit rate is
//! high.

use crate::texture::{Texture, TextureFormat};
use std::collections::HashMap;

/// Recycler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecyclerStats {
    /// Allocations served from the free list.
    pub hits: u64,
    /// Allocations requiring a fresh texture.
    pub misses: u64,
    /// Textures currently parked on the free list.
    pub free_textures: usize,
    /// Bytes currently parked on the free list.
    pub free_bytes: usize,
}

/// A pool of disposed textures keyed by physical shape.
#[derive(Debug, Default)]
pub struct TextureRecycler {
    enabled: bool,
    free: HashMap<(usize, usize, TextureFormat), Vec<Texture>>,
    hits: u64,
    misses: u64,
    free_bytes: usize,
}

impl TextureRecycler {
    /// Create a recycler; when disabled it always allocates fresh.
    pub fn new(enabled: bool) -> TextureRecycler {
        TextureRecycler { enabled, ..Default::default() }
    }

    /// Acquire a texture of the given physical shape, recycled when
    /// possible; the flag reports whether it came from the free list.
    /// Recycled textures are not zeroed — like real WebGL, reused texture
    /// contents are whatever the previous program left, and programs must
    /// write every output texel.
    pub fn acquire(&mut self, rows: usize, cols: usize, format: TextureFormat) -> (Texture, bool) {
        if self.enabled {
            if let Some(list) = self.free.get_mut(&(rows, cols, format)) {
                if let Some(tex) = list.pop() {
                    self.hits += 1;
                    self.free_bytes -= tex.byte_size();
                    return (tex, true);
                }
            }
        }
        self.misses += 1;
        (Texture::new(rows, cols, format), false)
    }

    /// Return a disposed texture to the pool (dropped when disabled).
    pub fn release(&mut self, tex: Texture) {
        if !self.enabled {
            return;
        }
        self.free_bytes += tex.byte_size();
        self.free.entry((tex.rows, tex.cols, tex.format)).or_default().push(tex);
    }

    /// Current statistics.
    pub fn stats(&self) -> RecyclerStats {
        RecyclerStats {
            hits: self.hits,
            misses: self.misses,
            free_textures: self.free.values().map(|v| v.len()).sum(),
            free_bytes: self.free_bytes,
        }
    }

    /// Drop every pooled texture (used under memory pressure).
    pub fn clear(&mut self) {
        self.free.clear();
        self.free_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_same_shape() {
        let mut r = TextureRecycler::new(true);
        let (t, hit) = r.acquire(4, 4, TextureFormat::R32F);
        assert!(!hit);
        r.release(t);
        assert_eq!(r.stats().free_textures, 1);
        let (_t2, hit2) = r.acquire(4, 4, TextureFormat::R32F);
        assert!(hit2);
        let s = r.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.free_textures, 0);
    }

    #[test]
    fn different_shape_misses() {
        let mut r = TextureRecycler::new(true);
        let (t, _) = r.acquire(4, 4, TextureFormat::R32F);
        r.release(t);
        let (_t2, hit) = r.acquire(4, 8, TextureFormat::R32F);
        assert!(!hit);
        assert_eq!(r.stats().hits, 0);
        assert_eq!(r.stats().misses, 2);
    }

    #[test]
    fn format_is_part_of_the_key() {
        let mut r = TextureRecycler::new(true);
        r.release(Texture::new(4, 4, TextureFormat::R32F));
        let (_t, hit) = r.acquire(4, 4, TextureFormat::Rgba32F);
        assert!(!hit);
        assert_eq!(r.stats().hits, 0);
    }

    #[test]
    fn disabled_recycler_always_allocates() {
        let mut r = TextureRecycler::new(false);
        let (t, _) = r.acquire(2, 2, TextureFormat::R32F);
        r.release(t);
        assert_eq!(r.stats().free_textures, 0);
        let (_t, hit) = r.acquire(2, 2, TextureFormat::R32F);
        assert!(!hit);
        assert_eq!(r.stats().hits, 0);
        assert_eq!(r.stats().misses, 2);
    }

    #[test]
    fn clear_empties_pool() {
        let mut r = TextureRecycler::new(true);
        r.release(Texture::new(2, 2, TextureFormat::R32F));
        r.clear();
        assert_eq!(r.stats().free_bytes, 0);
        assert_eq!(r.stats().free_textures, 0);
    }
}
