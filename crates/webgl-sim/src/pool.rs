//! A persistent worker pool: the simulator's "shader cores".
//!
//! Real GPUs do not pay thread-creation cost per draw call; neither should
//! the simulator. The device thread owns one [`WorkerPool`] sized to the
//! device profile's parallelism and dispatches every program's chunks onto
//! it.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A chunk-executing job shared with the workers.
struct Job {
    /// Executes chunk `i`. The pointee lives on the dispatcher's stack;
    /// `run` blocks until all chunks complete, which keeps it alive.
    func: ChunkFn,
    next: std::sync::atomic::AtomicUsize,
    total: usize,
    done: Mutex<usize>,
    cv: Condvar,
}

/// Type-erased chunk function pointer, `Send`/`Sync` by construction: the
/// dispatcher guarantees the pointee outlives the job (it blocks in `run`).
struct ChunkFn(*const (dyn Fn(usize) + Sync));
unsafe impl Send for ChunkFn {}
unsafe impl Sync for ChunkFn {}

/// A fixed-size pool of long-lived worker threads.
pub struct WorkerPool {
    size: usize,
    senders: Vec<Sender<Arc<Job>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `size` workers (0 and 1 both mean "run inline").
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let mut senders = Vec::new();
        let mut workers = Vec::new();
        // One fewer worker than `size`: the dispatcher itself is a core.
        for i in 1..size {
            let (tx, rx) = unbounded::<Arc<Job>>();
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shader-core-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            work_until_drained(&job);
                        }
                    })
                    .expect("spawn shader core"),
            );
        }
        WorkerPool { size, senders, workers }
    }

    /// Number of cores (including the dispatcher).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute `func(0..chunks)` across the pool, blocking until every
    /// chunk has run. `func` must be safe to call concurrently for distinct
    /// chunk indices.
    pub fn run(&self, chunks: usize, func: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.senders.is_empty() || chunks == 1 {
            for i in 0..chunks {
                func(i);
            }
            return;
        }
        // SAFETY: the pointee outlives the job because `run` blocks below
        // until every chunk completed; the transmute only erases the
        // lifetime, not the type.
        let func_static: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(func as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(Job {
            func: ChunkFn(func_static),
            next: std::sync::atomic::AtomicUsize::new(0),
            total: chunks,
            done: Mutex::new(0),
            cv: Condvar::new(),
        });
        for tx in &self.senders {
            let _ = tx.send(job.clone());
        }
        // The dispatcher participates as a core.
        work_until_drained(&job);
        // Wait for the stragglers.
        let mut done = job.done.lock();
        while *done < job.total {
            job.cv.wait(&mut done);
        }
    }
}

fn work_until_drained(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if i >= job.total {
            return;
        }
        // SAFETY: the dispatcher blocks inside `run` until `done == total`,
        // so the closure behind the raw pointer outlives every call.
        let func = unsafe { &*job.func.0 };
        func(i);
        let mut done = job.done.lock();
        *done += 1;
        if *done == job.total {
            job.cv.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // disconnect: workers exit their recv loops
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(10, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(8, &|i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 28 + 8 * round);
        }
    }

    #[test]
    fn disjoint_mut_slices_can_be_written() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u32; 64];
        {
            let base = data.as_mut_ptr() as usize;
            pool.run(8, &move |i| {
                // SAFETY: each chunk owns a disjoint 8-element window.
                let slice = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut u32).add(i * 8), 8)
                };
                for (k, v) in slice.iter_mut().enumerate() {
                    *v = (i * 8 + k) as u32;
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }
}
