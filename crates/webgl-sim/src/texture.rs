//! Float textures: the only storage a WebGL device offers.
//!
//! A texture is a `rows x cols` grid of texels; each texel carries one
//! channel (`R...F` formats, paper Figure 4 "for simplicity we only use the
//! red channel") or four channels (`RGBA...F`, the *packing* optimization of
//! Sec 3.9 that stores floats in all 4 channels of a texel and yielded
//! 1.3–1.4x on PoseNet). 16-bit formats round every stored value through
//! [`crate::f16`].

use crate::f16;

/// Default `MAX_TEXTURE_SIZE` of a desktop WebGL implementation.
pub const MAX_TEXTURE_SIZE_DEFAULT: usize = 16_384;

/// Internal format of a float texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextureFormat {
    /// One 32-bit float per texel (`gl.R32F`, WebGL 2.0 path).
    R32F,
    /// Four 32-bit floats per texel (packed).
    Rgba32F,
    /// One 16-bit float per texel (iOS Safari path).
    R16F,
    /// Four 16-bit floats per texel (packed, 16-bit device).
    Rgba16F,
    /// One 8-bit unsigned-normalized code per texel (`gl.R8`): quantized
    /// weight storage. Sampling returns the integer code widened to f32;
    /// stores round and clamp to `0..=255`.
    R8,
}

impl TextureFormat {
    /// Channels per texel.
    pub fn channels(self) -> usize {
        match self {
            TextureFormat::R32F | TextureFormat::R16F | TextureFormat::R8 => 1,
            TextureFormat::Rgba32F | TextureFormat::Rgba16F => 4,
        }
    }

    /// Bytes per channel.
    pub fn bytes_per_channel(self) -> usize {
        match self {
            TextureFormat::R32F | TextureFormat::Rgba32F => 4,
            TextureFormat::R16F | TextureFormat::Rgba16F => 2,
            TextureFormat::R8 => 1,
        }
    }

    /// Whether stored values round through binary16.
    pub fn is_half_precision(self) -> bool {
        matches!(self, TextureFormat::R16F | TextureFormat::Rgba16F)
    }

    /// Whether stored values round to integer codes in `0..=255`.
    pub fn is_byte(self) -> bool {
        matches!(self, TextureFormat::R8)
    }

    /// Whether this is a packed (4-channel) format.
    pub fn is_packed(self) -> bool {
        self.channels() == 4
    }

    /// The packed/unpacked sibling at the same precision. `R8` has no
    /// packed sibling — quantized weights stay one code per texel.
    pub fn with_packing(self, packed: bool) -> TextureFormat {
        if self.is_byte() {
            return TextureFormat::R8;
        }
        match (self.is_half_precision(), packed) {
            (false, false) => TextureFormat::R32F,
            (false, true) => TextureFormat::Rgba32F,
            (true, false) => TextureFormat::R16F,
            (true, true) => TextureFormat::Rgba16F,
        }
    }
}

/// A device-resident float texture.
#[derive(Debug, Clone)]
pub struct Texture {
    /// Physical rows.
    pub rows: usize,
    /// Physical columns.
    pub cols: usize,
    /// Internal format.
    pub format: TextureFormat,
    /// Channel values, row-major, `channels()` floats per texel. 16-bit
    /// formats store the rounded value widened back to `f32`.
    pub data: Vec<f32>,
}

impl Texture {
    /// Allocate a zeroed texture.
    pub fn new(rows: usize, cols: usize, format: TextureFormat) -> Texture {
        Texture { rows, cols, format, data: vec![0.0; rows * cols * format.channels()] }
    }

    /// Number of float slots (texels x channels).
    pub fn capacity(&self) -> usize {
        self.rows * self.cols * self.format.channels()
    }

    /// Bytes of device memory held.
    pub fn byte_size(&self) -> usize {
        self.rows * self.cols * self.format.channels() * self.format.bytes_per_channel()
    }

    /// Store a value at a flat channel slot, rounding on 16-bit formats and
    /// clamping to integer codes on `R8` — the `setOutput` write path.
    pub fn store(&mut self, slot: usize, value: f32) {
        self.data[slot] = if self.format.is_half_precision() {
            f16::round(value)
        } else if self.format.is_byte() {
            value.round().clamp(0.0, 255.0)
        } else {
            value
        };
    }

    /// Bulk-upload values (`texSubImage2D`), rounding on 16-bit formats and
    /// clamping to integer codes on `R8`. Slots beyond `values.len()` stay
    /// zero.
    pub fn upload(&mut self, values: &[f32]) {
        if self.format.is_half_precision() {
            for (slot, &v) in values.iter().enumerate() {
                self.data[slot] = f16::round(v);
            }
        } else if self.format.is_byte() {
            for (slot, &v) in values.iter().enumerate() {
                self.data[slot] = v.round().clamp(0.0, 255.0);
            }
        } else {
            self.data[..values.len()].copy_from_slice(values);
        }
    }

    /// Read a flat channel slot.
    pub fn fetch(&self, slot: usize) -> f32 {
        self.data[slot]
    }

    /// Decompose into the host-side shadow a context loss (or page-out)
    /// leaves behind: physical geometry plus the values, with the device
    /// allocation given up.
    pub fn into_shadow(self) -> (usize, usize, TextureFormat, Vec<f32>) {
        (self.rows, self.cols, self.format, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_counts_channels() {
        assert_eq!(Texture::new(2, 3, TextureFormat::R32F).capacity(), 6);
        assert_eq!(Texture::new(2, 3, TextureFormat::Rgba32F).capacity(), 24);
    }

    #[test]
    fn byte_size_accounts_for_precision() {
        assert_eq!(Texture::new(4, 4, TextureFormat::R32F).byte_size(), 64);
        assert_eq!(Texture::new(4, 4, TextureFormat::R16F).byte_size(), 32);
        assert_eq!(Texture::new(4, 4, TextureFormat::Rgba16F).byte_size(), 128);
    }

    #[test]
    fn half_precision_rounds_on_store() {
        let mut t = Texture::new(1, 1, TextureFormat::R16F);
        t.store(0, 1e-8);
        assert_eq!(t.fetch(0), 0.0);
        t.store(0, 0.1);
        assert!((t.fetch(0) - 0.1).abs() < 1e-4);
        assert_ne!(t.fetch(0), 0.1, "0.1 is not exactly representable in f16");
    }

    #[test]
    fn full_precision_stores_exactly() {
        let mut t = Texture::new(1, 1, TextureFormat::R32F);
        t.store(0, 0.1);
        assert_eq!(t.fetch(0), 0.1);
    }

    #[test]
    fn upload_rounds_in_bulk_on_f16() {
        let mut t = Texture::new(1, 2, TextureFormat::R16F);
        t.upload(&[1e-8, 2.0]);
        assert_eq!(t.data, vec![0.0, 2.0]);
    }

    #[test]
    fn packing_sibling_format() {
        assert_eq!(TextureFormat::R32F.with_packing(true), TextureFormat::Rgba32F);
        assert_eq!(TextureFormat::Rgba16F.with_packing(false), TextureFormat::R16F);
    }
}
