//! The shader abstraction: GPGPU programs as data-parallel per-texel
//! functions (paper Sec 4.1, Figure 4 and Listing 2).
//!
//! A [`Program`] is the analogue of a compiled fragment shader: its body is
//! invoked once per output value (or once per packed texel), in parallel,
//! with **no shared memory** and **no scatter** — the body can only return
//! the value for its own output coordinates (`setOutput`), and reads inputs
//! exclusively through [`Samplers`], the layout-compiled `getA(...)`
//! accessors the shader compiler generates. These are exactly the
//! constraints the paper identifies as the source of the WebGL/CUDA gap
//! (no work groups, no shared memory — Sec 3.9).

use crate::layout::TextureLayout;
use std::sync::Arc;

/// Read-only access to the program's input textures in logical coordinates.
pub struct Samplers<'a> {
    inputs: &'a [(&'a [f32], &'a TextureLayout)],
}

impl<'a> Samplers<'a> {
    /// Wrap input texture data and layouts.
    pub fn new(inputs: &'a [(&'a [f32], &'a TextureLayout)]) -> Samplers<'a> {
        Samplers { inputs }
    }

    /// Sample input `i` at logical N-D `coords` — the generated
    /// `getA(b, r, c, d)` accessor.
    #[inline]
    pub fn get(&self, i: usize, coords: &[usize]) -> f32 {
        let (data, layout) = &self.inputs[i];
        data[layout.slot(coords)]
    }

    /// Sample input `i` at a logical flat index (element-wise kernels).
    #[inline]
    pub fn get_flat(&self, i: usize, flat: usize) -> f32 {
        let (data, layout) = &self.inputs[i];
        data[layout.slot_of_flat(flat)]
    }

    /// Logical shape of input `i`.
    pub fn shape(&self, i: usize) -> &[usize] {
        &self.inputs[i].1.logical
    }

    /// Number of inputs bound.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether no inputs are bound.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Body of an unpacked program: `main()` runs per output element with its
/// flat index and N-D coordinates, returning the value for `setOutput`.
pub type ElementBody = Arc<dyn Fn(&Samplers<'_>, usize, &[usize]) -> f32 + Send + Sync>;

/// Body of a packed program: one invocation computes the 4 consecutive
/// output elements of an RGBA texel (the packing optimization of Sec 3.9).
pub type PackedBody = Arc<dyn Fn(&Samplers<'_>, usize) -> [f32; 4] + Send + Sync>;

/// A compiled GPGPU program.
#[derive(Clone)]
pub struct Program {
    /// Program name, reported by timer queries and profiling.
    pub name: &'static str,
    /// Logical output shape.
    pub out_shape: Vec<usize>,
    /// Execution body.
    pub body: ProgramBody,
    /// Approximate arithmetic operations per output element — the
    /// occupancy hint the executor uses to decide how many shader cores a
    /// draw call can usefully fill (tiny draws underutilize a real GPU the
    /// same way).
    pub cost_per_element: usize,
}

/// Unpacked or packed execution body.
#[derive(Clone)]
pub enum ProgramBody {
    /// One invocation per output element.
    PerElement(ElementBody),
    /// One invocation per 4-wide output texel.
    Packed(PackedBody),
}

impl Program {
    /// An unpacked per-element program.
    pub fn per_element(
        name: &'static str,
        out_shape: Vec<usize>,
        body: impl Fn(&Samplers<'_>, usize, &[usize]) -> f32 + Send + Sync + 'static,
    ) -> Program {
        Program { name, out_shape, body: ProgramBody::PerElement(Arc::new(body)), cost_per_element: 1 }
    }

    /// A packed program computing 4 outputs per invocation.
    pub fn packed(
        name: &'static str,
        out_shape: Vec<usize>,
        body: impl Fn(&Samplers<'_>, usize) -> [f32; 4] + Send + Sync + 'static,
    ) -> Program {
        Program { name, out_shape, body: ProgramBody::Packed(Arc::new(body)), cost_per_element: 1 }
    }

    /// Attach an occupancy cost hint (arithmetic ops per output element).
    pub fn with_cost(mut self, cost_per_element: usize) -> Program {
        self.cost_per_element = cost_per_element.max(1);
        self
    }

    /// Logical output element count.
    pub fn out_size(&self) -> usize {
        self.out_shape.iter().product::<usize>().max(1)
    }

    /// Whether the body is packed.
    pub fn is_packed(&self) -> bool {
        matches!(self.body, ProgramBody::Packed(_))
    }

    /// Identity under which a context caches this program's compiled
    /// shader: the name plus which body variant actually runs (a packed
    /// body compiles to different GLSL than a per-element body, so the two
    /// are distinct cache entries and fail compilation independently).
    pub fn compile_key(&self, packing_enabled: bool) -> (&'static str, bool) {
        (self.name, self.is_packed() && packing_enabled)
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("out_shape", &self.out_shape)
            .field("packed", &self.is_packed())
            .finish()
    }
}

/// Execute a program body over an output buffer, splitting the work across
/// the device's persistent [`crate::pool::WorkerPool`] — the simulator's model of
/// fragment-shader parallelism. Each invocation writes only its own output
/// slot.
///
/// `store` semantics (f16 rounding) are applied per element; this function
/// fills `out` at logical flat indices.
/// What a program execution used: the basis of the simulated-time model.
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Modeled shader cores the draw call could fill (occupancy).
    pub occupancy: usize,
    /// Host threads actually engaged (bounded by the machine).
    pub real_engaged: usize,
}

/// Execute a program over the device pool, filling `out` at logical flat
/// indices (with f16 rounding when the device is half-precision), and
/// return the occupancy statistics the simulated-time model needs.
pub fn execute(
    program: &Program,
    samplers_inputs: &[(&[f32], &TextureLayout)],
    out: &mut [f32],
    pool: &crate::pool::WorkerPool,
    modeled_parallelism: usize,
    half_precision: bool,
) -> ExecStats {
    let size = program.out_size();
    if size == 0 {
        return ExecStats { occupancy: 1, real_engaged: 1 };
    }
    // Occupancy model: a draw call only fills as many shader cores as its
    // total work justifies (tiny textures underutilize a real GPU).
    let work = size.saturating_mul(program.cost_per_element);
    let occupancy = modeled_parallelism.max(1).min((work / 2_048).max(1));
    let threads = pool.size().min(occupancy);
    // Chunk boundaries; packed bodies need texel (4-element) alignment.
    let align = if program.is_packed() { 4 } else { 1 };
    let raw_chunk = size.div_ceil(threads);
    let chunk_len = raw_chunk.div_ceil(align) * align;
    let n_chunks = size.div_ceil(chunk_len);
    let base_ptr = out.as_mut_ptr() as usize;
    let dims = program.out_shape.clone();
    let body = program.body.clone();
    pool.run(n_chunks, &move |ci| {
        let start = ci * chunk_len;
        let len = chunk_len.min(size - start);
        // SAFETY: chunks are disjoint windows of `out`, and `execute`
        // blocks inside `pool.run` until all chunks are done.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut((base_ptr as *mut f32).add(start), len) };
        let samplers = Samplers::new(samplers_inputs);
        match &body {
            ProgramBody::PerElement(f) => {
                let mut coords = coords_of(&dims, start);
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let v = f(&samplers, start + off, &coords);
                    *slot = if half_precision { crate::f16::round(v) } else { v };
                    advance(&dims, &mut coords);
                }
            }
            ProgramBody::Packed(f) => {
                let mut off = 0;
                while off < len {
                    let take = 4.min(len - off);
                    let quad = f(&samplers, start + off);
                    for (q, slot) in chunk[off..off + take].iter_mut().enumerate() {
                        let v = quad[q];
                        *slot = if half_precision { crate::f16::round(v) } else { v };
                    }
                    off += take;
                }
            }
        }
    });
    ExecStats { occupancy, real_engaged: threads.min(n_chunks) }
}

fn coords_of(dims: &[usize], mut flat: usize) -> Vec<usize> {
    let mut coords = vec![0usize; dims.len()];
    for i in (0..dims.len()).rev() {
        coords[i] = flat % dims[i];
        flat /= dims[i];
    }
    coords
}

fn advance(dims: &[usize], coords: &mut [usize]) {
    for i in (0..dims.len()).rev() {
        coords[i] += 1;
        if coords[i] < dims[i] {
            return;
        }
        coords[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use crate::texture::TextureFormat;

    fn layout(dims: &[usize]) -> TextureLayout {
        TextureLayout::compile(dims, TextureFormat::R32F, 16_384, true).unwrap()
    }

    fn run(program: &Program, inputs: &[(&[f32], &TextureLayout)], out: &mut [f32], cores: usize) {
        let pool = WorkerPool::new(cores);
        execute(program, inputs, out, &pool, cores, false);
    }

    #[test]
    fn per_element_addition_matches_figure4() {
        // Figure 4: element-wise addition of two equally shaped matrices,
        // one main() per output value.
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![10.0, 20.0, 30.0, 40.0];
        let la = layout(&[2, 2]);
        let lb = layout(&[2, 2]);
        let prog = Program::per_element("Add", vec![2, 2], |s, flat, _| {
            s.get_flat(0, flat) + s.get_flat(1, flat)
        });
        let mut out = vec![0.0; 4];
        run(&prog, &[(&a, &la), (&b, &lb)], &mut out, 1);
        assert_eq!(out, vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let n = 100_000;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let la = layout(&[n]);
        let prog = Program::per_element("Square", vec![n], |s, flat, _| {
            let v = s.get_flat(0, flat);
            v * v
        })
        .with_cost(64);
        let mut serial = vec![0.0; n];
        run(&prog, &[(&a, &la)], &mut serial, 1);
        let mut parallel = vec![0.0; n];
        run(&prog, &[(&a, &la)], &mut parallel, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn coords_are_row_major() {
        let prog = Program::per_element("CoordProbe", vec![2, 3], |_, _, coords| {
            (coords[0] * 10 + coords[1]) as f32
        });
        let mut out = vec![0.0; 6];
        run(&prog, &[], &mut out, 1);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn packed_program_computes_quads() {
        let a: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let la = layout(&[10]);
        let prog = Program::packed("AddOnePacked", vec![10], |s, base| {
            let mut quad = [0.0; 4];
            for (i, q) in quad.iter_mut().enumerate() {
                if base + i < 10 {
                    *q = s.get_flat(0, base + i) + 1.0;
                }
            }
            quad
        });
        let mut out = vec![0.0; 10];
        run(&prog, &[(&a, &la)], &mut out, 1);
        let expected: Vec<f32> = (0..10).map(|i| (i + 1) as f32).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn packed_parallel_matches_serial() {
        let n = 99_999;
        let a: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let la = layout(&[n]);
        let prog = Program::packed("NegPacked", vec![n], move |s, base| {
            let mut quad = [0.0; 4];
            for (i, q) in quad.iter_mut().enumerate() {
                if base + i < n {
                    *q = -s.get_flat(0, base + i);
                }
            }
            quad
        })
        .with_cost(64);
        let mut serial = vec![0.0; n];
        run(&prog, &[(&a, &la)], &mut serial, 1);
        let mut parallel = vec![0.0; n];
        run(&prog, &[(&a, &la)], &mut parallel, 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn half_precision_rounds_outputs() {
        let a = vec![1e-8f32];
        let la = layout(&[1]);
        let prog = Program::per_element("Id", vec![1], |s, flat, _| s.get_flat(0, flat));
        let mut out = vec![9.0; 1];
        let pool = WorkerPool::new(1);
        execute(&prog, &[(&a, &la)], &mut out, &pool, 1, true);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn matmul_listing2_style() {
        // Listing 2: per-output dot product. No shared memory: each output
        // recomputes its whole row x column walk.
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2
        let la = layout(&[2, 2]);
        let lb = layout(&[2, 2]);
        let n = 2;
        let prog = Program::per_element("MatMul", vec![2, 2], move |s, _, coords| {
            let (row, col) = (coords[0], coords[1]);
            let mut acc = 0.0;
            for i in 0..n {
                acc += s.get(0, &[row, i]) * s.get(1, &[i, col]);
            }
            acc
        });
        let mut out = vec![0.0; 4];
        run(&prog, &[(&a, &la), (&b, &lb)], &mut out, 1);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }
}
