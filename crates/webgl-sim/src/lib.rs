//! # webml-webgl-sim
//!
//! A software simulation of the WebGL GPGPU execution model that
//! TensorFlow.js repurposes for numeric computation (paper Sec 4.1).
//!
//! The simulator enforces the same architectural constraints real WebGL
//! imposes, so code built on top faces the same engineering trade-offs:
//!
//! - **Float textures** are the only storage ([`texture`]): 2-D grids of
//!   texels with 1 (`R`) or 4 (`RGBA`) float channels, at 32- or 16-bit
//!   precision ([`mod@f16`]); device size limits apply.
//! - **Fragment-shader programs** ([`shader`]) run one `main()` per output
//!   texel, in parallel, with *no shared memory and no scatter* — outputs
//!   can only be written at the invocation's own coordinates, inputs only
//!   sampled through the layout-compiled `get(...)` accessors.
//! - The **layout compiler** ([`layout`]) separates the logical N-D shape
//!   from the physical 2-D texture, including the squeeze optimization for
//!   unit dimensions the paper credits with a 1.3x speedup.
//! - A **command queue** on a dedicated device thread ([`queue`],
//!   [`context`]): programs are enqueued in sub-millisecond time and run
//!   asynchronously; readback is a queue flush; fences and disjoint timer
//!   queries provide completion signals and pure-GPU timing.
//! - **Texture recycling** and threshold-based **paging to the CPU**
//!   ([`recycler`], [`pager`]) reproduce the memory-management strategies of
//!   paper Sec 4.1.2.
//! - A **device capability database** ([`devices`]) models the WebGL
//!   support landscape of Sec 4.1.3 (OES_texture_float availability,
//!   16-bit-only mobile GPUs, market shares).
//! - **Deterministic fault injection** ([`fault`]): seedable plans for
//!   context loss, shader-compile failure, allocation OOM and transient
//!   readback errors, so the engine's graceful-degradation ladder can be
//!   exercised reproducibly.

#![warn(missing_docs)]

pub mod context;
pub mod devices;
pub mod f16;
pub mod fault;
pub mod future;
pub mod layout;
pub mod pager;
pub mod pool;
pub mod queue;
pub mod recycler;
pub mod shader;
pub mod texture;

pub use context::{ContextConfig, FenceHandle, GpgpuContext, GpuMemoryStats, TexHandle};
pub use fault::{ContextLossEvent, FaultPlan, FaultState, FaultStats};
pub use devices::{DeviceClass, DeviceProfile, GlVersion};
pub use future::ReadFuture;
pub use queue::QueueStats;
pub use layout::TextureLayout;
pub use shader::{Program, ProgramBody, Samplers};
pub use texture::{TextureFormat, MAX_TEXTURE_SIZE_DEFAULT};
