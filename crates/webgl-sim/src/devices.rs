//! Device capability profiles and the market-share database used to
//! reproduce the device-support statistics of paper Sec 4.1.3 ("TensorFlow.js
//! can run on 99% of desktop devices, 98% of iOS and Windows mobile devices,
//! and 52% of Android devices").

/// WebGL specification level implemented by a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlVersion {
    /// WebGL 1.0 (needs `OES_texture_float` for float textures).
    WebGl1,
    /// WebGL 2.0 (float textures and `fenceSync` built in).
    WebGl2,
}

/// Broad device category, for Table 1-style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Laptop/desktop with an integrated GPU (e.g. Intel Iris Pro).
    DesktopIntegrated,
    /// Desktop with a discrete GPU (e.g. GTX 1080).
    DesktopDiscrete,
    /// iOS device (Safari: WebGL 1.0, 16-bit float textures).
    MobileIos,
    /// Android device.
    MobileAndroid,
    /// Windows mobile device.
    MobileWindows,
}

/// Capabilities of one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Device category.
    pub class: DeviceClass,
    /// WebGL level.
    pub gl_version: GlVersion,
    /// Whether WebGL 1.0 exposes `OES_texture_float` (required to upload
    /// and read float textures; the gating capability of Sec 4.1.3).
    pub has_oes_texture_float: bool,
    /// iOS-style devices only support 16-bit float textures.
    pub half_precision_only: bool,
    /// `MAX_TEXTURE_SIZE` per dimension.
    pub max_texture_size: usize,
    /// Modeled shader-core parallelism: the effective core count used by
    /// the simulated-time model (and, up to the host machine's size, by
    /// real execution). Calibrated so the simulated Table 1 ratios track
    /// the paper: integrated ≈ 8, discrete ≈ 64.
    pub parallelism: usize,
    /// `gl.fenceSync` availability (WebGL 2.0 path of Sec 4.1.1).
    pub has_fence_sync: bool,
    /// `EXT_disjoint_timer_query` availability (WebGL 1.0 path).
    pub has_disjoint_timer_query: bool,
    /// Driver pipeline-drain cost of a *synchronous* `readPixels` issued
    /// while the command queue still has unfinished work (paper Fig 2: a
    /// blocking `dataSync()` stalls the main thread until the whole
    /// pipeline drains). Fence-synchronized readback (Fig 3) pays nothing.
    /// Charged as wall-clock host latency, not device compute time.
    pub readback_sync_penalty_ns: u64,
    /// Whether the browser on this device exposes a WebGPU-class compute
    /// API (compute shaders, workgroups, storage buffers — paper Sec 4.3's
    /// "general purpose parallel programming" future work). Absent on older
    /// iOS Safari and legacy Android profiles, so the degradation ladder
    /// and fleet placement only offer the webgpu backend where it exists.
    pub has_webgpu: bool,
}

impl DeviceProfile {
    /// Whether the WebGL backend can run at all on this device.
    pub fn supports_float_textures(&self) -> bool {
        match self.gl_version {
            GlVersion::WebGl2 => true,
            GlVersion::WebGl1 => self.has_oes_texture_float,
        }
    }

    /// The per-device epsilon of Sec 4.1.3: 1e-7 at full precision, 1e-4 on
    /// 16-bit devices (where the f32 default 1e-8 rounds to zero and made
    /// `log(x + eps)` collapse to `log(x)`).
    pub fn epsilon(&self) -> f32 {
        if self.half_precision_only {
            1e-4
        } else {
            1e-7
        }
    }

    /// An integrated-GPU laptop (the paper's MacBook Pro / Intel Iris Pro
    /// measurement platform).
    pub fn intel_iris_pro() -> DeviceProfile {
        DeviceProfile {
            name: "Intel Iris Pro (integrated)".into(),
            class: DeviceClass::DesktopIntegrated,
            gl_version: GlVersion::WebGl2,
            has_oes_texture_float: true,
            half_precision_only: false,
            max_texture_size: 16_384,
            parallelism: 8,
            has_fence_sync: true,
            has_disjoint_timer_query: true,
            readback_sync_penalty_ns: 1_500_000,
            has_webgpu: true,
        }
    }

    /// A discrete desktop GPU (the paper's GTX 1080 platform).
    pub fn gtx_1080() -> DeviceProfile {
        DeviceProfile {
            name: "GTX 1080 (discrete)".into(),
            class: DeviceClass::DesktopDiscrete,
            gl_version: GlVersion::WebGl2,
            has_oes_texture_float: true,
            half_precision_only: false,
            max_texture_size: 16_384,
            parallelism: 64,
            has_fence_sync: true,
            has_disjoint_timer_query: true,
            readback_sync_penalty_ns: 1_200_000,
            has_webgpu: true,
        }
    }

    /// iOS Safari: WebGL 1.0, 16-bit float textures only (Sec 4.1.3).
    pub fn ios_safari() -> DeviceProfile {
        DeviceProfile {
            name: "iOS Safari".into(),
            class: DeviceClass::MobileIos,
            gl_version: GlVersion::WebGl1,
            has_oes_texture_float: true,
            half_precision_only: true,
            max_texture_size: 4_096,
            parallelism: 2,
            has_fence_sync: false,
            has_disjoint_timer_query: true,
            readback_sync_penalty_ns: 3_000_000,
            has_webgpu: false,
        }
    }

    /// A modern Android device with full float support.
    pub fn android_modern() -> DeviceProfile {
        DeviceProfile {
            name: "Android (modern)".into(),
            class: DeviceClass::MobileAndroid,
            gl_version: GlVersion::WebGl2,
            has_oes_texture_float: true,
            half_precision_only: false,
            max_texture_size: 8_192,
            parallelism: 4,
            has_fence_sync: true,
            has_disjoint_timer_query: false,
            readback_sync_penalty_ns: 2_500_000,
            has_webgpu: true,
        }
    }

    /// An old Android device without GPU float-texture support — the WebGL
    /// backend cannot run here and the engine falls back to plain CPU.
    pub fn android_legacy() -> DeviceProfile {
        DeviceProfile {
            name: "Android (legacy, no GPU float)".into(),
            class: DeviceClass::MobileAndroid,
            gl_version: GlVersion::WebGl1,
            has_oes_texture_float: false,
            half_precision_only: false,
            max_texture_size: 2_048,
            parallelism: 1,
            has_fence_sync: false,
            has_disjoint_timer_query: false,
            readback_sync_penalty_ns: 4_000_000,
            has_webgpu: false,
        }
    }
}

/// One entry of the simulated WebGLStats-style population: a device model
/// with a within-platform market share.
#[derive(Debug, Clone)]
pub struct PopulationEntry {
    /// Platform bucket the share is relative to.
    pub platform: Platform,
    /// Device model name.
    pub model: String,
    /// Share within the platform (entries per platform sum to 1.0).
    pub share: f64,
    /// Whether the device supports float textures (can run the WebGL
    /// backend).
    pub supports_webgl_backend: bool,
    /// Whether the browser on this device exposes a WebGPU-class compute
    /// API (can run the webgpu backend). Strictly a subset of the WebGL
    /// population: modern WebGL2-era devices only.
    pub supports_webgpu_backend: bool,
}

/// Reporting platform of Sec 4.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Desktop browsers.
    Desktop,
    /// iOS and Windows mobile devices (reported jointly in the paper).
    IosAndWindowsMobile,
    /// Android devices.
    Android,
}

/// The simulated device population, calibrated to the WebGLStats figures
/// the paper cites. The Android gap is dominated by a long tail of older
/// devices with no usable GPU float support.
pub fn population() -> Vec<PopulationEntry> {
    use Platform::*;
    let e = |platform, model: &str, share, gl, gpu| PopulationEntry {
        platform,
        model: model.to_string(),
        share,
        supports_webgl_backend: gl,
        supports_webgpu_backend: gpu,
    };
    vec![
        // Desktop: overwhelmingly supported; a sliver of ancient GPUs or
        // blacklisted drivers is not. WebGPU ships only on the WebGL2-era
        // browsers.
        e(Desktop, "desktop-webgl2", 0.82, true, true),
        e(Desktop, "desktop-webgl1-oes", 0.17, true, false),
        e(Desktop, "desktop-blacklisted-driver", 0.01, false, false),
        // iOS + Windows mobile: Safari exposes 16-bit float textures, which
        // still counts as supported (reduced precision) — but no compute
        // API on any of these profiles.
        e(IosAndWindowsMobile, "ios-safari-f16", 0.90, true, false),
        e(IosAndWindowsMobile, "windows-mobile-webgl1", 0.08, true, false),
        e(IosAndWindowsMobile, "ios-legacy", 0.02, false, false),
        // Android: modern devices support it; a long tail of older devices
        // has no GPU float path at all (the 52% of the paper). Only the
        // WebGL2 cohort carries a compute-capable browser.
        e(Android, "android-webgl2", 0.40, true, true),
        e(Android, "android-webgl1-oes", 0.12, true, false),
        e(Android, "android-legacy-no-float", 0.48, false, false),
    ]
}

/// Fraction of a platform's population able to run the WebGL backend.
pub fn coverage(platform: Platform) -> f64 {
    let pop = population();
    let total: f64 = pop.iter().filter(|p| p.platform == platform).map(|p| p.share).sum();
    let ok: f64 = pop
        .iter()
        .filter(|p| p.platform == platform && p.supports_webgl_backend)
        .map(|p| p.share)
        .sum();
    ok / total
}

/// Fraction of a platform's population able to run the WebGPU compute
/// backend (the Sec 4.3 future-work API). Always ≤ the WebGL coverage:
/// the compute API only exists on the modern end of each platform.
pub fn webgpu_coverage(platform: Platform) -> f64 {
    let pop = population();
    let total: f64 = pop.iter().filter(|p| p.platform == platform).map(|p| p.share).sum();
    let ok: f64 = pop
        .iter()
        .filter(|p| p.platform == platform && p.supports_webgpu_backend)
        .map(|p| p.share)
        .sum();
    ok / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_shares_sum_to_one_per_platform() {
        for platform in [Platform::Desktop, Platform::IosAndWindowsMobile, Platform::Android] {
            let total: f64 =
                population().iter().filter(|p| p.platform == platform).map(|p| p.share).sum();
            assert!((total - 1.0).abs() < 1e-9, "{platform:?} sums to {total}");
        }
    }

    #[test]
    fn coverage_matches_paper_figures() {
        assert!((coverage(Platform::Desktop) - 0.99).abs() < 0.005);
        assert!((coverage(Platform::IosAndWindowsMobile) - 0.98).abs() < 0.005);
        assert!((coverage(Platform::Android) - 0.52).abs() < 0.005);
    }

    #[test]
    fn ios_profile_is_half_precision_webgl1() {
        let p = DeviceProfile::ios_safari();
        assert!(p.supports_float_textures());
        assert!(p.half_precision_only);
        assert_eq!(p.epsilon(), 1e-4);
        assert!(!p.has_fence_sync, "WebGL 1.0 has no fenceSync");
        assert!(p.has_disjoint_timer_query);
    }

    #[test]
    fn legacy_android_cannot_run_webgl_backend() {
        assert!(!DeviceProfile::android_legacy().supports_float_textures());
    }

    #[test]
    fn webgpu_only_on_modern_profiles() {
        assert!(DeviceProfile::intel_iris_pro().has_webgpu);
        assert!(DeviceProfile::gtx_1080().has_webgpu);
        assert!(DeviceProfile::android_modern().has_webgpu);
        assert!(!DeviceProfile::ios_safari().has_webgpu);
        assert!(!DeviceProfile::android_legacy().has_webgpu);
    }

    #[test]
    fn webgpu_coverage_is_subset_of_webgl_coverage() {
        for platform in [Platform::Desktop, Platform::IosAndWindowsMobile, Platform::Android] {
            assert!(
                webgpu_coverage(platform) <= coverage(platform) + 1e-12,
                "{platform:?}: webgpu coverage must not exceed webgl coverage"
            );
        }
        // Every webgpu-capable entry must also be webgl-capable.
        for p in population() {
            if p.supports_webgpu_backend {
                assert!(p.supports_webgl_backend, "{} claims webgpu without webgl", p.model);
            }
        }
    }

    #[test]
    fn webgpu_coverage_matches_modern_cohorts() {
        assert!((webgpu_coverage(Platform::Desktop) - 0.82).abs() < 0.005);
        assert!((webgpu_coverage(Platform::IosAndWindowsMobile) - 0.0).abs() < 0.005);
        assert!((webgpu_coverage(Platform::Android) - 0.40).abs() < 0.005);
    }

    #[test]
    fn desktop_profiles_support_everything() {
        for p in [DeviceProfile::intel_iris_pro(), DeviceProfile::gtx_1080()] {
            assert!(p.supports_float_textures());
            assert_eq!(p.epsilon(), 1e-7);
            assert!(p.has_fence_sync);
        }
    }
}
