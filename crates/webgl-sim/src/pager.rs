//! Threshold-based paging of textures to CPU memory (paper Sec 4.1.2).
//!
//! "We automatically page WebGL textures to the CPU when the total amount of
//! GPU memory allocated exceeds a threshold which can be estimated from the
//! screen size" — the built-in heuristic that keeps leaky applications from
//! crashing. Victims are chosen least-recently-used; touching a paged
//! texture uploads it back.

/// Paging policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct PagingPolicy {
    /// Whether automatic paging is active. It is disabled for applications
    /// that manage memory explicitly via `tidy`/`dispose` (per the paper).
    pub enabled: bool,
    /// GPU byte budget before paging starts.
    pub threshold_bytes: usize,
}

impl PagingPolicy {
    /// The paper's heuristic: estimate the budget from the screen size.
    /// A `width x height` RGBA32F framebuffer times a small multiplier.
    pub fn from_screen(width: usize, height: usize) -> PagingPolicy {
        PagingPolicy { enabled: true, threshold_bytes: width * height * 16 * 4 }
    }

    /// Paging disabled (explicit memory management).
    pub fn disabled() -> PagingPolicy {
        PagingPolicy { enabled: false, threshold_bytes: usize::MAX }
    }
}

/// Paging statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Textures evicted to CPU memory.
    pub page_outs: u64,
    /// Textures re-uploaded to the GPU after eviction.
    pub page_ins: u64,
    /// Bytes currently resident in CPU (paged) storage.
    pub bytes_paged: usize,
}

/// Select LRU victims so that GPU usage drops to the threshold.
///
/// `candidates` are `(id, bytes, last_use)` of evictable GPU textures;
/// returns the ids to evict, oldest first.
pub fn select_victims(
    candidates: &[(u64, usize, u64)],
    bytes_in_gpu: usize,
    threshold: usize,
) -> Vec<u64> {
    if bytes_in_gpu <= threshold {
        return Vec::new();
    }
    let mut sorted: Vec<_> = candidates.to_vec();
    sorted.sort_by_key(|&(_, _, last_use)| last_use);
    let mut need = bytes_in_gpu - threshold;
    let mut out = Vec::new();
    for (id, bytes, _) in sorted {
        if need == 0 {
            break;
        }
        out.push(id);
        need = need.saturating_sub(bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_threshold_evicts_nothing() {
        assert!(select_victims(&[(1, 100, 0)], 100, 200).is_empty());
    }

    #[test]
    fn evicts_lru_first() {
        let candidates = [(1, 100, 5), (2, 100, 1), (3, 100, 9)];
        let victims = select_victims(&candidates, 300, 150);
        assert_eq!(victims, vec![2, 1]);
    }

    #[test]
    fn evicts_just_enough() {
        let candidates = [(1, 400, 1), (2, 400, 2)];
        let victims = select_victims(&candidates, 800, 500);
        assert_eq!(victims, vec![1]);
    }

    #[test]
    fn screen_heuristic_scales_with_resolution() {
        let small = PagingPolicy::from_screen(1280, 720);
        let large = PagingPolicy::from_screen(3840, 2160);
        assert!(large.threshold_bytes > small.threshold_bytes);
        assert!(small.enabled);
        assert!(!PagingPolicy::disabled().enabled);
    }
}
