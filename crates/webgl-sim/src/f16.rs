//! IEEE 754 binary16 emulation for 16-bit float textures.
//!
//! iOS-class devices expose only 16-bit float textures (paper Sec 4.1.3);
//! every value written to an `R16F`/`RGBA16F` texture is rounded through
//! this format, reproducing the precision cliff that motivated
//! TensorFlow.js's per-device epsilon adjustment. This is the device-side
//! counterpart of the host-side conversion in `webml-core`; the simulator is
//! deliberately standalone, modelling the GPU hardware itself.

/// Convert an `f32` to binary16 bits, rounding to nearest-even.
pub fn to_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let mut exp = ((bits >> 23) & 0xff) as i32;
    let mut mant = bits & 0x007f_ffff;

    if exp == 0xff {
        let m = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | m as u16;
    }
    exp -= 127 - 15;
    if exp >= 0x1f {
        return sign | 0x7c00;
    }
    if exp <= 0 {
        if exp < -10 {
            return sign;
        }
        mant |= 0x0080_0000;
        let shift = (14 - exp) as u32;
        let half = 1u32 << (shift - 1);
        let mut m = mant >> shift;
        if (mant & (half * 2 - 1)) > half || ((mant & (half * 2 - 1)) == half && (m & 1) == 1) {
            m += 1;
        }
        return sign | m as u16;
    }
    let mut m = mant >> 13;
    let rem = mant & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
        m += 1;
        if m == 0x400 {
            m = 0;
            exp += 1;
            if exp >= 0x1f {
                return sign | 0x7c00;
            }
        }
    }
    sign | ((exp as u16) << 10) | m as u16
}

/// Convert binary16 bits back to `f32`.
pub fn from_bits(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            let mut e = -1i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            m &= 0x03ff;
            sign | (((127 - 15 - e) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Round an `f32` through binary16 precision (the f16 texture write path).
pub fn round(x: f32) -> f32 {
    from_bits(to_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for &x in &[0.0f32, 1.0, -2.5, 1024.0, 65504.0] {
            assert_eq!(round(x), x);
        }
    }

    #[test]
    fn epsilon_1e8_underflows_to_zero() {
        // The paper's log(x + eps) bug: the default eps 1e-8 rounds to 0.
        assert_eq!(round(1e-8), 0.0);
        assert!(round(1e-4) > 0.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(round(1e6).is_infinite());
    }

    #[test]
    fn exhaustive_bits_round_trip() {
        // Every finite f16 bit pattern must round-trip exactly.
        for h in 0..=0xffffu16 {
            let f = from_bits(h);
            if f.is_nan() {
                continue;
            }
            assert_eq!(to_bits(f), h, "bits {h:#x}");
        }
    }
}
