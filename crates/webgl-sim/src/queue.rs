//! The GPU command queue and device thread (paper Sec 4.1.1).
//!
//! "When the user calls an operation, we enqueue a program onto the GPU
//! command queue, which typically takes sub-millisecond time, and
//! immediately return a handle to the resulting tensor despite the
//! computation not being done." Commands execute in order on a dedicated
//! device thread; fences and readbacks are themselves commands, which gives
//! the same ordering guarantees as a real GL command stream.

use crate::future::ReadPromise;
use crate::layout::TextureLayout;
use crate::pager::{select_victims, PagerStats, PagingPolicy};
use crate::recycler::{RecyclerStats, TextureRecycler};
use crate::shader::{execute, Program};
use crate::texture::{Texture, TextureFormat};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a device texture.
pub type TexId = u64;

/// Residency state of a texture.
pub enum SlotState {
    /// Resident in (simulated) GPU memory.
    Gpu(Texture),
    /// Paged out to CPU memory (paper Sec 4.1.2).
    Paged {
        /// Physical rows.
        rows: usize,
        /// Physical cols.
        cols: usize,
        /// Texture format to restore with.
        format: TextureFormat,
        /// The values, kept on the host.
        data: Vec<f32>,
    },
}

/// A texture slot with LRU bookkeeping.
pub struct Slot {
    /// Residency.
    pub state: SlotState,
    /// Monotone use counter for LRU eviction.
    pub last_use: u64,
}

/// Commands accepted by the device thread, executed strictly in order.
// Run dominates real queues anyway, and boxing its fields would cost an
// allocation per draw call on the hot path.
#[allow(clippy::large_enum_variant)]
pub enum Command {
    /// Upload host data into a new texture.
    Upload {
        /// Destination texture id.
        tex: TexId,
        /// Values to upload.
        data: Vec<f32>,
        /// Physical rows.
        rows: usize,
        /// Physical cols.
        cols: usize,
        /// Texture format.
        format: TextureFormat,
    },
    /// Execute a shader program into a fresh output texture.
    Run {
        /// The program.
        program: Program,
        /// Input texture ids.
        inputs: Vec<TexId>,
        /// Input layouts (parallel to `inputs`).
        in_layouts: Vec<TextureLayout>,
        /// Output texture id (fresh).
        output: TexId,
        /// Output layout.
        out_layout: TextureLayout,
        /// Injected straggler stall: device nanoseconds added to the clock
        /// (and slept wall-clock) before the program runs. 0 = no stall.
        stall_ns: u64,
        /// Request trace id active on the submitting thread at enqueue
        /// time (0 = untraced). Carried across the thread hop so the GPU
        /// span lands in the same causal lane as the request that issued
        /// the draw call.
        trace_id: u64,
    },
    /// Read a texture back to the host (`gl.readPixels`), resolving the
    /// promise with the first `len` values.
    ReadPixels {
        /// Texture to read.
        tex: TexId,
        /// Number of logical values wanted.
        len: usize,
        /// Simulated driver pipeline-drain cost (paper Fig 2): non-zero
        /// only for a *synchronous* read issued while the queue still had
        /// unfinished work. Slept as wall-clock before the copy-out; never
        /// added to the device compute clock and never counted busy.
        drain_ns: u64,
        /// Completion promise.
        promise: ReadPromise,
    },
    /// Mark a fence as passed once all prior commands completed
    /// (`gl.fenceSync`).
    Fence {
        /// Fence id.
        id: u64,
    },
    /// Release a texture (returned to the recycler).
    Dispose {
        /// Texture to release.
        tex: TexId,
    },
    /// The context was lost: invalidate every device texture. GPU residency
    /// drops to zero; contents are preserved as host-side shadows (the
    /// copies a recovery path re-uploads), so readback keeps working.
    LoseContext,
    /// Stop the device thread.
    Shutdown,
}

/// State shared between the host-side context and the device thread.
pub struct DeviceShared {
    /// Texture registry.
    pub textures: Mutex<HashMap<TexId, Slot>>,
    /// Highest fence id that has passed. Kept atomic so `fence_passed`
    /// stays a lock-free poll; the device thread additionally stores it
    /// under `fence_lock` and notifies `fence_cond`, so a blocking
    /// `wait_fence` can sleep instead of spinning.
    pub last_fence: AtomicU64,
    /// Guards fence-passing notification (pairs with `fence_cond`).
    pub fence_lock: Mutex<()>,
    /// Signalled by the device thread each time a fence passes.
    pub fence_cond: Condvar,
    /// Total device-side execution time (the disjoint-timer-query counter).
    pub gpu_nanos: AtomicU64,
    /// Wall-clock nanoseconds the device thread spent executing commands
    /// (uploads, draws, readbacks, disposals) — the numerator of the
    /// device-thread utilization gauge. Injected drain sleeps are idle,
    /// not busy.
    pub busy_ns: AtomicU64,
    /// Number of blocking `wait_fence` calls that actually slept.
    pub fence_waits: AtomicU64,
    /// Total nanoseconds hosts spent blocked in `wait_fence`.
    pub fence_wait_ns: AtomicU64,
    /// Synchronous readbacks that forced a driver pipeline drain.
    pub drains: AtomicU64,
    /// Total wall-clock nanoseconds lost to those drains.
    pub drain_ns: AtomicU64,
    /// Upload/draw commands enqueued by the host but not yet executed by
    /// the device thread. `read_sync` uses this to decide whether a
    /// blocking read stalls the pipeline.
    pub pending: AtomicU64,
    /// Number of programs executed.
    pub program_count: AtomicU64,
    /// Bytes resident in GPU memory.
    pub bytes_gpu: AtomicUsize,
    /// Paging statistics.
    pub pager: Mutex<PagerStats>,
    /// The texture recycler.
    pub recycler: Mutex<TextureRecycler>,
    /// Monotone use counter.
    pub use_counter: AtomicU64,
}

/// Counters of device-queue behaviour, snapshotted without flushing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Wall-clock ns the device thread spent executing commands.
    pub busy_ns: u64,
    /// Blocking `wait_fence` calls that actually slept.
    pub fence_waits: u64,
    /// Total ns hosts spent blocked in `wait_fence`.
    pub fence_wait_ns: u64,
    /// Synchronous readbacks that forced a pipeline drain.
    pub drains: u64,
    /// Total ns lost to those drains.
    pub drain_ns: u64,
    /// Upload/draw commands enqueued but not yet executed.
    pub pending: u64,
}

impl DeviceShared {
    /// Fresh shared state.
    pub fn new(recycling_enabled: bool) -> DeviceShared {
        DeviceShared {
            textures: Mutex::new(HashMap::new()),
            last_fence: AtomicU64::new(0),
            fence_lock: Mutex::new(()),
            fence_cond: Condvar::new(),
            gpu_nanos: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            fence_waits: AtomicU64::new(0),
            fence_wait_ns: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            drain_ns: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            program_count: AtomicU64::new(0),
            bytes_gpu: AtomicUsize::new(0),
            pager: Mutex::new(PagerStats::default()),
            recycler: Mutex::new(TextureRecycler::new(recycling_enabled)),
            use_counter: AtomicU64::new(0),
        }
    }

    /// Snapshot of recycler statistics.
    pub fn recycler_stats(&self) -> RecyclerStats {
        self.recycler.lock().stats()
    }

    /// Snapshot of queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        QueueStats {
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            fence_waits: self.fence_waits.load(Ordering::Relaxed),
            fence_wait_ns: self.fence_wait_ns.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            drain_ns: self.drain_ns.load(Ordering::Relaxed),
            pending: self.pending.load(Ordering::SeqCst),
        }
    }

    fn touch(&self) -> u64 {
        self.use_counter.fetch_add(1, Ordering::Relaxed)
    }
}

/// Run the device loop until [`Command::Shutdown`]. Executed on the device
/// thread spawned by [`crate::context::GpgpuContext`].
pub fn device_loop(
    rx: crossbeam::channel::Receiver<Command>,
    shared: Arc<DeviceShared>,
    parallelism: usize,
    half_precision: bool,
    paging: PagingPolicy,
) {
    // The device's persistent shader cores. The pool is bounded by the
    // host machine; `parallelism` stays the *modeled* core count used by
    // the simulated-time accounting below.
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let pool = crate::pool::WorkerPool::new(parallelism.min(host));
    // Device-thread utilization window: busy nanoseconds accumulated since
    // the last fence over the wall-clock extent of the window. Fences are
    // exactly the points a pipelined executor punctuates its schedule with,
    // so each window covers one submit→fence interval.
    let mut window_wall = webml_telemetry::now_ns();
    let mut window_busy = 0u64;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Upload { tex, data, rows, cols, format } => {
                let t0 = webml_telemetry::now_ns();
                let (mut t, recycled) = shared.recycler.lock().acquire(rows, cols, format);
                if !recycled {
                    shared.gpu_nanos.fetch_add(TEXTURE_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
                }
                // Recycled textures may be dirty; the upload overwrites the
                // prefix, so only the tail beyond the uploaded data needs
                // zeroing.
                let tail = data.len().min(t.data.len());
                t.data[tail..].fill(0.0);
                t.upload(&data);
                shared.bytes_gpu.fetch_add(t.byte_size(), Ordering::Relaxed);
                let last_use = shared.touch();
                shared.textures.lock().insert(tex, Slot { state: SlotState::Gpu(t), last_use });
                maybe_page_out(&shared, &paging);
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Command::Run { program, inputs, in_layouts, output, out_layout, stall_ns, trace_id } => {
                let t0 = webml_telemetry::now_ns();
                if stall_ns > 0 {
                    // An injected straggler: the device clock advances and
                    // the device thread really stalls, so the spike is
                    // observable both in modeled time and in wall-clock
                    // latency (the signal a serving router's health tracker
                    // reacts to).
                    shared.gpu_nanos.fetch_add(stall_ns, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_nanos(stall_ns));
                }
                run_program(
                    &shared, program, &inputs, &in_layouts, output, &out_layout, &pool,
                    parallelism, half_precision, trace_id,
                );
                maybe_page_out(&shared, &paging);
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Command::ReadPixels { tex, len, drain_ns, promise } => {
                if drain_ns > 0 {
                    // Fig 2: a blocking readPixels issued against a busy
                    // pipeline stalls until the driver drains. The host is
                    // already blocked on the promise, so the sleep lands as
                    // caller-visible latency — and as device *idle* time.
                    shared.drains.fetch_add(1, Ordering::Relaxed);
                    shared.drain_ns.fetch_add(drain_ns, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_nanos(drain_ns));
                }
                let t0 = webml_telemetry::now_ns();
                let textures = shared.textures.lock();
                match textures.get(&tex) {
                    Some(slot) => {
                        let data = match &slot.state {
                            SlotState::Gpu(t) => t.data[..len.min(t.data.len())].to_vec(),
                            SlotState::Paged { data, .. } => data[..len.min(data.len())].to_vec(),
                        };
                        drop(textures);
                        promise.complete(Ok(data));
                    }
                    None => {
                        drop(textures);
                        promise.complete(Err(format!("texture {tex} does not exist")));
                    }
                }
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
            }
            Command::Fence { id } => {
                // Close the utilization window first so the gauge reflects
                // the interval this fence terminates.
                let now = webml_telemetry::now_ns();
                let busy_total = shared.busy_ns.load(Ordering::Relaxed);
                let wall = now.saturating_sub(window_wall);
                if wall > 0 {
                    let util = ((busy_total.saturating_sub(window_busy)) as f64 / wall as f64)
                        .clamp(0.0, 1.0);
                    webml_telemetry::fgauge("webml_device_utilization").set(util);
                    if webml_telemetry::enabled() {
                        webml_telemetry::gpu_instant("device_utilization", "utilization", util);
                    }
                }
                window_wall = now;
                window_busy = busy_total;
                // Publish under the lock so a host blocked in `wait_fence`
                // cannot check the atomic, miss this store, and then sleep
                // past the notification.
                let _guard = shared.fence_lock.lock();
                shared.last_fence.store(id, Ordering::SeqCst);
                shared.fence_cond.notify_all();
            }
            Command::Dispose { tex } => {
                // Queue order makes disposal fence-safe: every consumer of
                // this texture was enqueued (and therefore executes) before
                // the Dispose, so recycling here can never race a use.
                let slot = shared.textures.lock().remove(&tex);
                if let Some(slot) = slot {
                    match slot.state {
                        SlotState::Gpu(t) => {
                            shared.bytes_gpu.fetch_sub(t.byte_size(), Ordering::Relaxed);
                            shared.recycler.lock().release(t);
                        }
                        SlotState::Paged { data, .. } => {
                            shared.pager.lock().bytes_paged -= data.len() * 4;
                        }
                    }
                }
            }
            Command::LoseContext => {
                // All GPU-resident textures are gone. Keep each texture's
                // values as a host shadow in the paged state so readback
                // (and later lazy re-upload) still works; drop the
                // recycler's free pool outright.
                shared.recycler.lock().clear();
                let mut textures = shared.textures.lock();
                let mut freed = 0usize;
                let mut shadow_bytes = 0usize;
                for slot in textures.values_mut() {
                    if matches!(slot.state, SlotState::Gpu(_)) {
                        let placeholder = SlotState::Paged {
                            rows: 0,
                            cols: 0,
                            format: TextureFormat::R32F,
                            data: Vec::new(),
                        };
                        if let SlotState::Gpu(t) = std::mem::replace(&mut slot.state, placeholder)
                        {
                            freed += t.byte_size();
                            let (rows, cols, format, data) = t.into_shadow();
                            shadow_bytes += data.len() * 4;
                            slot.state = SlotState::Paged { rows, cols, format, data };
                        }
                    }
                }
                drop(textures);
                shared.bytes_gpu.fetch_sub(freed, Ordering::Relaxed);
                shared.pager.lock().bytes_paged += shadow_bytes;
            }
            Command::Shutdown => break,
        }
    }
}

#[allow(clippy::too_many_arguments)]
/// Fixed per-draw-call device overhead in the simulated-time model
/// (command decode, pipeline state, framebuffer bind).
const DRAW_CALL_OVERHEAD_NANOS: u64 = 8_000;

/// Simulated driver cost of allocating a fresh WebGL texture (paper
/// Sec 4.1.2: "disposing and re-allocating WebGL textures is relatively
/// expensive") — avoided entirely when the recycler supplies a texture.
const TEXTURE_ALLOC_OVERHEAD_NANOS: u64 = 60_000;

#[allow(clippy::too_many_arguments)]
fn run_program(
    shared: &Arc<DeviceShared>,
    program: Program,
    inputs: &[TexId],
    in_layouts: &[TextureLayout],
    output: TexId,
    out_layout: &TextureLayout,
    pool: &crate::pool::WorkerPool,
    modeled_parallelism: usize,
    half_precision: bool,
    trace_id: u64,
) {
    let t0 = Instant::now();
    let tracing = webml_telemetry::enabled();
    let program_name = program.name;
    let trace_t0 = if tracing { webml_telemetry::now_ns() } else { 0 };
    // Page in any evicted inputs and temporarily take them out of the
    // registry so the executor can borrow them while the lock is released.
    let mut taken: Vec<(TexId, Texture)> = Vec::new();
    {
        let mut textures = shared.textures.lock();
        let mut seen = Vec::new();
        for &id in inputs {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            let slot = textures.remove(&id).expect("input texture exists (queue order)");
            let tex = match slot.state {
                SlotState::Gpu(t) => t,
                SlotState::Paged { rows, cols, format, data } => {
                    // Page back in.
                    let mut stats = shared.pager.lock();
                    stats.page_ins += 1;
                    stats.bytes_paged -= data.len() * 4;
                    drop(stats);
                    if tracing {
                        webml_telemetry::instant_arg(
                            "page_in",
                            "texture-pool",
                            "bytes",
                            (data.len() * 4) as f64,
                        );
                    }
                    let (mut t, recycled) = shared.recycler.lock().acquire(rows, cols, format);
                    if !recycled {
                        shared.gpu_nanos.fetch_add(TEXTURE_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
                    }
                    let tail = data.len().min(t.data.len());
                    t.data[tail..].fill(0.0);
                    t.upload(&data);
                    shared.bytes_gpu.fetch_add(t.byte_size(), Ordering::Relaxed);
                    t
                }
            };
            taken.push((id, tex));
        }
    }

    // Allocate the output (possibly recycled).
    let out_format = out_layout.format;
    let (mut out_tex, recycled) =
        shared.recycler.lock().acquire(out_layout.tex_rows, out_layout.tex_cols, out_format);
    if !recycled {
        shared.gpu_nanos.fetch_add(TEXTURE_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
    }
    if tracing {
        webml_telemetry::instant(
            if recycled { "texture_recycle" } else { "texture_alloc" },
            "texture-pool",
        );
    }

    let stats = {
        // Index the taken textures once so each sampler binding is an O(1)
        // map hit instead of an O(n) scan per input.
        let taken_index: HashMap<TexId, &Texture> =
            taken.iter().map(|(tid, tex)| (*tid, tex)).collect();
        let sampler_inputs: Vec<(&[f32], &TextureLayout)> = inputs
            .iter()
            .zip(in_layouts)
            .map(|(id, layout)| {
                let tex = taken_index.get(id).expect("taken above");
                (tex.data.as_slice(), layout)
            })
            .collect();
        execute(&program, &sampler_inputs, &mut out_tex.data, pool, modeled_parallelism, half_precision)
    };

    // Return inputs and publish the output.
    let out_bytes = out_tex.byte_size();
    {
        let mut textures = shared.textures.lock();
        for (id, tex) in taken {
            let last_use = shared.touch();
            textures.insert(id, Slot { state: SlotState::Gpu(tex), last_use });
        }
        let last_use = shared.touch();
        textures.insert(output, Slot { state: SlotState::Gpu(out_tex), last_use });
    }
    shared.bytes_gpu.fetch_add(out_bytes, Ordering::Relaxed);
    shared.program_count.fetch_add(1, Ordering::Relaxed);
    // Simulated device time: the measured execution, rescaled from the
    // host threads actually engaged to the occupancy the draw call would
    // achieve on the modeled device, plus fixed draw-call overhead. On a
    // single-core host the measurement is the serial time and the model
    // divides by occupancy; on a many-core host the measurement already
    // reflects `real_engaged`-way parallelism.
    let elapsed = t0.elapsed().as_nanos() as u64;
    let modeled =
        elapsed.saturating_mul(stats.real_engaged as u64) / stats.occupancy.max(1) as u64;
    let device_ns = modeled + DRAW_CALL_OVERHEAD_NANOS;
    shared.gpu_nanos.fetch_add(device_ns, Ordering::Relaxed);
    if tracing {
        // The virtual GPU track: wall-clock extent of the draw call on the
        // device thread, annotated with the modeled (timer-query) time.
        webml_telemetry::gpu_span_traced(
            program_name,
            trace_t0,
            webml_telemetry::now_ns(),
            "modeled_device_ns",
            device_ns as f64,
            trace_id,
        );
    }
}

fn maybe_page_out(shared: &Arc<DeviceShared>, paging: &PagingPolicy) {
    if !paging.enabled {
        return;
    }
    let bytes = shared.bytes_gpu.load(Ordering::Relaxed);
    if bytes <= paging.threshold_bytes {
        return;
    }
    // Under pressure, first drop the recycler's free pool.
    shared.recycler.lock().clear();
    let mut textures = shared.textures.lock();
    let candidates: Vec<(u64, usize, u64)> = textures
        .iter()
        .filter_map(|(&id, slot)| match &slot.state {
            SlotState::Gpu(t) => Some((id, t.byte_size(), slot.last_use)),
            SlotState::Paged { .. } => None,
        })
        .collect();
    let victims = select_victims(&candidates, bytes, paging.threshold_bytes);
    for id in victims {
        if let Some(slot) = textures.get_mut(&id) {
            if let SlotState::Gpu(t) = &slot.state {
                let bytes = t.byte_size();
                let data = t.data.clone();
                let (rows, cols, format) = (t.rows, t.cols, t.format);
                shared.bytes_gpu.fetch_sub(bytes, Ordering::Relaxed);
                let mut stats = shared.pager.lock();
                stats.page_outs += 1;
                stats.bytes_paged += data.len() * 4;
                drop(stats);
                webml_telemetry::instant_arg(
                    "page_out",
                    "texture-pool",
                    "bytes",
                    (data.len() * 4) as f64,
                );
                slot.state = SlotState::Paged { rows, cols, format, data };
            }
        }
    }
}
