//! # webml-backend-cpu
//!
//! The "plain JS" baseline backend of Table 1.
//!
//! TensorFlow.js's plain CPU backend is interpreted JavaScript: every
//! per-element operation pays dynamic dispatch, double-precision number
//! semantics, and bounds-checked property access. [`PlainJsBackend`]
//! reproduces those costs deliberately:
//!
//! - per-element math goes through **boxed function pointers** (no
//!   inlining, like a JS interpreter's dispatch),
//! - arithmetic is performed in **f64** (JS numbers) and cast back to f32
//!   on store (TypedArray semantics),
//! - loads go through **bounds-checked index closures**.
//!
//! Cold ops (slicing, padding, gathering) delegate to the reference
//! implementations — they are memory-bound and not what separates the
//! backends in the paper's evaluation.
//!
//! Correctness is tested against the reference [`webml_core::cpu::CpuBackend`].

#![warn(missing_docs)]

use webml_core::backend::{
    ArgReduceOp, Backend, BackendMemory, BinaryOp, DataFuture, DataId, KTensor, KernelTiming,
    PoolOp, ReduceOp, UnaryOp,
};
use webml_core::conv_util::Conv2dInfo;
use webml_core::cpu::CpuBackend;
use webml_core::dtype::{DType, TensorData};
use webml_core::error::Result;
use webml_core::shape::Shape;

/// An interpreter-flavored scalar CPU backend: the Table 1 "Plain JS" row.
pub struct PlainJsBackend {
    inner: CpuBackend,
}

impl Default for PlainJsBackend {
    fn default() -> Self {
        PlainJsBackend::new()
    }
}

/// A boxed scalar function — the interpreter's dispatched "bytecode op".
type ScalarFn = Box<dyn Fn(f64) -> f64>;
/// A boxed binary scalar function.
type ScalarFn2 = Box<dyn Fn(f64, f64) -> f64>;
/// A boxed bounds-checked load.
type LoadFn<'a> = Box<dyn Fn(usize) -> f64 + 'a>;

impl PlainJsBackend {
    /// Create a backend named `"plainjs"`.
    pub fn new() -> PlainJsBackend {
        PlainJsBackend { inner: CpuBackend::with_name("plainjs") }
    }

    fn fetch(&self, id: DataId) -> Result<Vec<f32>> {
        Ok(self.inner.read_sync(id)?.to_f32_vec())
    }

    fn put(&self, vals: Vec<f32>, dtype: DType) -> DataId {
        self.inner.register(TensorData::F32(vals), dtype)
    }

    fn loader(data: &[f32]) -> LoadFn<'_> {
        let len = data.len();
        // black_box keeps the closure opaque so the optimizer cannot
        // devirtualize the interpreter's dispatch into straight-line code.
        std::hint::black_box(Box::new(move |i| {
            // Bounds-checked property access, JS-style (OOB reads would be
            // `undefined`; here they are a hard error, which is stricter).
            assert!(i < len, "index {i} out of bounds for length {len}");
            data[i] as f64
        }))
    }
}

impl Backend for PlainJsBackend {
    fn name(&self) -> &str {
        "plainjs"
    }

    fn register(&self, data: TensorData, dtype: DType) -> DataId {
        self.inner.register(data, dtype)
    }

    fn read_sync(&self, id: DataId) -> Result<TensorData> {
        self.inner.read_sync(id)
    }

    fn read(&self, id: DataId) -> DataFuture {
        self.inner.read(id)
    }

    fn dispose_data(&self, id: DataId) {
        self.inner.dispose_data(id)
    }

    fn memory(&self) -> BackendMemory {
        self.inner.memory()
    }

    fn begin_timing(&self) {
        self.inner.begin_timing()
    }

    fn end_timing(&self) -> KernelTiming {
        self.inner.end_timing()
    }

    fn device_timer_ns(&self) -> Option<u64> {
        self.inner.device_timer_ns()
    }

    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId> {
        let x = self.fetch(a.data)?;
        let f: ScalarFn = std::hint::black_box(Box::new(move |v| op.apply(v as f32) as f64));
        let load = Self::loader(&x);
        let mut out = Vec::with_capacity(x.len());
        for i in 0..x.len() {
            out.push(f(load(i)) as f32);
        }
        Ok(self.put(out, op.out_dtype(a.dtype)))
    }

    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId> {
        let x = self.fetch(a.data)?;
        let y = self.fetch(b.data)?;
        let f: ScalarFn2 = std::hint::black_box(Box::new(move |u, v| op.apply(u as f32, v as f32) as f64));
        let load_a = Self::loader(&x);
        let load_b = Self::loader(&y);
        let size = out_shape.size();
        let mut out = Vec::with_capacity(size);
        if a.shape == b.shape {
            for i in 0..size {
                out.push(f(load_a(i), load_b(i)) as f32);
            }
        } else {
            // Broadcast with per-element coordinate arithmetic, the way an
            // interpreted index computation would run.
            for idx in 0..size {
                let coords = out_shape.coords(idx);
                let ai = webml_core::shape::broadcast_source_index(&coords, a.shape);
                let bi = webml_core::shape::broadcast_source_index(&coords, b.shape);
                out.push(f(load_a(ai), load_b(bi)) as f32);
            }
        }
        Ok(self.put(out, out_dtype))
    }

    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId> {
        self.inner.cast(a, dtype)
    }

    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        self.inner.reduce(op, a, axes)
    }

    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId> {
        self.inner.arg_reduce(op, a, axis)
    }

    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let x = self.fetch(a.data)?;
        let y = self.fetch(b.data)?;
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let load_a = Self::loader(&x);
        let load_b = Self::loader(&y);
        // Every arithmetic step goes through dispatched "bytecode ops".
        let mul: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u * v));
        let add: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u + v));
        let mut out = vec![0.0f32; batch * m * n];
        let mut oi = 0;
        for bi in 0..batch {
            let a_off = bi * m * k;
            let b_off = bi * k * n;
            for i in 0..m {
                for j in 0..n {
                    // f64 accumulator: JS number semantics.
                    let mut acc = 0.0f64;
                    for p in 0..k {
                        let av = if transpose_a {
                            load_a(a_off + p * m + i)
                        } else {
                            load_a(a_off + i * k + p)
                        };
                        let bv = if transpose_b {
                            load_b(b_off + j * k + p)
                        } else {
                            load_b(b_off + p * n + j)
                        };
                        acc = add(acc, mul(av, bv));
                    }
                    out[oi] = acc as f32;
                    oi += 1;
                }
            }
        }
        Ok(self.put(out, DType::F32))
    }

    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let xv = self.fetch(x.data)?;
        let wv = self.fetch(filter.data)?;
        let c = info;
        let load_x = Self::loader(&xv);
        let load_w = Self::loader(&wv);
        let mul: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u * v));
        let add: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u + v));
        let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
        let mut oi = 0;
        for b in 0..c.batch {
            for oh in 0..c.out_height {
                for ow in 0..c.out_width {
                    for oc in 0..c.out_channels {
                        let mut acc = 0.0f64;
                        for fh in 0..c.filter_height {
                            let ih =
                                (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                            if ih < 0 || ih >= c.in_height as isize {
                                continue;
                            }
                            for fw in 0..c.filter_width {
                                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize
                                    - c.pad_left as isize;
                                if iw < 0 || iw >= c.in_width as isize {
                                    continue;
                                }
                                for ic in 0..c.in_channels {
                                    let x_idx = ((b * c.in_height + ih as usize) * c.in_width
                                        + iw as usize)
                                        * c.in_channels
                                        + ic;
                                    let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic)
                                        * c.out_channels
                                        + oc;
                                    acc = add(acc, mul(load_x(x_idx), load_w(w_idx)));
                                }
                            }
                        }
                        out[oi] = acc as f32;
                        oi += 1;
                    }
                }
            }
        }
        Ok(self.put(out, DType::F32))
    }

    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        self.inner.conv2d_backprop_input(dy, filter, info)
    }

    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        self.inner.conv2d_backprop_filter(x, dy, info)
    }

    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let xv = self.fetch(x.data)?;
        let wv = self.fetch(filter.data)?;
        let c = info;
        let mul = c.channel_mul;
        let load_x = Self::loader(&xv);
        let load_w = Self::loader(&wv);
        let mul_op: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u * v));
        let add_op: ScalarFn2 = std::hint::black_box(Box::new(|u, v| u + v));
        let mut out = vec![0.0f32; c.batch * c.out_height * c.out_width * c.out_channels];
        let mut oi = 0;
        for b in 0..c.batch {
            for oh in 0..c.out_height {
                for ow in 0..c.out_width {
                    for ic in 0..c.in_channels {
                        for m in 0..mul {
                            let mut acc = 0.0f64;
                            for fh in 0..c.filter_height {
                                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize
                                    - c.pad_top as isize;
                                if ih < 0 || ih >= c.in_height as isize {
                                    continue;
                                }
                                for fw in 0..c.filter_width {
                                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize
                                        - c.pad_left as isize;
                                    if iw < 0 || iw >= c.in_width as isize {
                                        continue;
                                    }
                                    let x_idx = ((b * c.in_height + ih as usize) * c.in_width
                                        + iw as usize)
                                        * c.in_channels
                                        + ic;
                                    let w_idx =
                                        ((fh * c.filter_width + fw) * c.in_channels + ic) * mul + m;
                                    acc = add_op(acc, mul_op(load_x(x_idx), load_w(w_idx)));
                                }
                            }
                            out[oi] = acc as f32;
                            oi += 1;
                        }
                    }
                }
            }
        }
        Ok(self.put(out, DType::F32))
    }

    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        self.inner.depthwise_conv2d_backprop_input(dy, filter, info)
    }

    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        self.inner.depthwise_conv2d_backprop_filter(x, dy, info)
    }

    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        self.inner.pool2d(op, x, info)
    }

    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        self.inner.pool2d_backprop(op, dy, x, info)
    }

    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId> {
        self.inner.slice(x, begin, size)
    }

    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId> {
        self.inner.concat(xs, axis)
    }

    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId> {
        self.inner.transpose(x, perm)
    }

    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId> {
        self.inner.pad(x, paddings, value)
    }

    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId> {
        self.inner.gather(x, indices, axis)
    }

    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId> {
        self.inner.tile(x, reps)
    }

    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        self.inner.reverse(x, axes)
    }

    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId> {
        self.inner.select(cond, a, b, out_shape)
    }

    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId> {
        self.inner.one_hot(indices, depth, on, off)
    }

    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId> {
        self.inner.resize_bilinear(x, new_h, new_w, align_corners)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webml_core::conv_util::{conv2d_info, depthwise_conv2d_info, Padding};

    fn pair() -> (PlainJsBackend, CpuBackend) {
        (PlainJsBackend::new(), CpuBackend::new())
    }

    fn upload(b: &dyn Backend, vals: &[f32]) -> DataId {
        b.register(TensorData::F32(vals.to_vec()), DType::F32)
    }

    #[test]
    fn unary_matches_reference() {
        let (pj, r) = pair();
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.1).collect();
        let shape = Shape::new(vec![64]);
        for op in [UnaryOp::Exp, UnaryOp::Relu, UnaryOp::Sigmoid, UnaryOp::Abs] {
            let a = upload(&pj, &vals);
            let b = upload(&r, &vals);
            let got = pj
                .read_sync(pj.unary(op, &KTensor { data: a, shape: &shape, dtype: DType::F32 }).unwrap())
                .unwrap();
            let want = r
                .read_sync(r.unary(op, &KTensor { data: b, shape: &shape, dtype: DType::F32 }).unwrap())
                .unwrap();
            assert_eq!(got, want, "op {op:?}");
        }
    }

    #[test]
    fn binary_broadcast_matches_reference() {
        let (pj, r) = pair();
        let a_vals: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let b_vals = vec![10.0f32, 20.0, 30.0];
        let sa = Shape::new(vec![2, 3]);
        let sb = Shape::new(vec![3]);
        let out = Shape::new(vec![2, 3]);
        let a1 = upload(&pj, &a_vals);
        let b1 = upload(&pj, &b_vals);
        let a2 = upload(&r, &a_vals);
        let b2 = upload(&r, &b_vals);
        let got = pj
            .read_sync(
                pj.binary(
                    BinaryOp::Mul,
                    &KTensor { data: a1, shape: &sa, dtype: DType::F32 },
                    &KTensor { data: b1, shape: &sb, dtype: DType::F32 },
                    &out,
                    DType::F32,
                )
                .unwrap(),
            )
            .unwrap();
        let want = r
            .read_sync(
                r.binary(
                    BinaryOp::Mul,
                    &KTensor { data: a2, shape: &sa, dtype: DType::F32 },
                    &KTensor { data: b2, shape: &sb, dtype: DType::F32 },
                    &out,
                    DType::F32,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_matches_reference() {
        let (pj, r) = pair();
        let a_vals: Vec<f32> = (0..24).map(|i| (i as f32 * 0.3).sin()).collect();
        let b_vals: Vec<f32> = (0..24).map(|i| (i as f32 * 0.7).cos()).collect();
        for (ta, tb, sa2, sb2) in [
            (false, false, Shape::new(vec![1, 4, 6]), Shape::new(vec![1, 6, 4])),
            (true, false, Shape::new(vec![1, 6, 4]), Shape::new(vec![1, 6, 4])),
            (false, true, Shape::new(vec![1, 4, 6]), Shape::new(vec![1, 4, 6])),
        ] {
            let a1 = upload(&pj, &a_vals);
            let b1 = upload(&pj, &b_vals);
            let a2 = upload(&r, &a_vals);
            let b2 = upload(&r, &b_vals);
            let got = pj
                .read_sync(
                    pj.matmul(
                        &KTensor { data: a1, shape: &sa2, dtype: DType::F32 },
                        &KTensor { data: b1, shape: &sb2, dtype: DType::F32 },
                        ta,
                        tb,
                    )
                    .unwrap(),
                )
                .unwrap()
                .to_f32_vec();
            let want = r
                .read_sync(
                    r.matmul(
                        &KTensor { data: a2, shape: &sa2, dtype: DType::F32 },
                        &KTensor { data: b2, shape: &sb2, dtype: DType::F32 },
                        ta,
                        tb,
                    )
                    .unwrap(),
                )
                .unwrap()
                .to_f32_vec();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-5, "ta={ta} tb={tb}");
            }
        }
    }

    #[test]
    fn conv_and_depthwise_match_reference() {
        let (pj, r) = pair();
        let x_vals: Vec<f32> = (0..150).map(|i| (i as f32 * 0.17).sin()).collect();
        let w_vals: Vec<f32> = (0..54).map(|i| (i as f32 * 0.31).cos()).collect();
        let xs = Shape::new(vec![1, 5, 5, 6]);
        let ws = Shape::new(vec![3, 3, 6, 1]);
        let info = conv2d_info("t", &xs, &ws, (1, 1), Padding::Same, (1, 1)).unwrap();
        let x1 = upload(&pj, &x_vals);
        let w1 = upload(&pj, &w_vals);
        let x2 = upload(&r, &x_vals);
        let w2 = upload(&r, &w_vals);
        let got = pj
            .read_sync(
                pj.conv2d(
                    &KTensor { data: x1, shape: &xs, dtype: DType::F32 },
                    &KTensor { data: w1, shape: &ws, dtype: DType::F32 },
                    &info,
                )
                .unwrap(),
            )
            .unwrap()
            .to_f32_vec();
        let want = r
            .read_sync(
                r.conv2d(
                    &KTensor { data: x2, shape: &xs, dtype: DType::F32 },
                    &KTensor { data: w2, shape: &ws, dtype: DType::F32 },
                    &info,
                )
                .unwrap(),
            )
            .unwrap()
            .to_f32_vec();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }

        let dws = Shape::new(vec![3, 3, 6, 2]);
        let dinfo = depthwise_conv2d_info("t", &xs, &dws, (1, 1), Padding::Same, (1, 1)).unwrap();
        let dw_vals: Vec<f32> = (0..108).map(|i| (i as f32 * 0.23).sin()).collect();
        let x1 = upload(&pj, &x_vals);
        let w1 = upload(&pj, &dw_vals);
        let x2 = upload(&r, &x_vals);
        let w2 = upload(&r, &dw_vals);
        let got = pj
            .read_sync(
                pj.depthwise_conv2d(
                    &KTensor { data: x1, shape: &xs, dtype: DType::F32 },
                    &KTensor { data: w1, shape: &dws, dtype: DType::F32 },
                    &dinfo,
                )
                .unwrap(),
            )
            .unwrap()
            .to_f32_vec();
        let want = r
            .read_sync(
                r.depthwise_conv2d(
                    &KTensor { data: x2, shape: &xs, dtype: DType::F32 },
                    &KTensor { data: w2, shape: &dws, dtype: DType::F32 },
                    &dinfo,
                )
                .unwrap(),
            )
            .unwrap()
            .to_f32_vec();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn registers_as_engine_backend() {
        use std::sync::Arc;
        let e = webml_core::Engine::new();
        e.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 0);
        let t = e.tensor_1d(&[1.0, -2.0]).unwrap();
        let y = webml_core::ops::relu(&t).unwrap();
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 0.0]);
    }
}
