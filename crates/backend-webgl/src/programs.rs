//! Shader-program builders: every kernel re-expressed as a per-output
//! gather computation (fragment shaders cannot scatter), in the style of
//! the paper's Figure 4 (element-wise add) and Listing 2 (matmul).

use webml_core::backend::{ArgReduceOp, BinaryOp, FusedStep, PoolOp, ReduceOp, UnaryOp};
use webml_core::conv_util::Conv2dInfo;
use webml_core::dtype::DType;
use webml_core::quant::QuantParams;
use webml_webgl_sim::shader::{Program, Samplers};

/// Maximum tensor rank supported by the shader address math.
pub const MAX_RANK: usize = 8;

/// Fused bias+activation epilogue applied to a finished accumulator
/// in-register. Float order matches the unfused `Add`-then-activation
/// kernel composition exactly, so fused and unfused agree bit-for-bit on
/// f32 devices.
#[inline]
fn apply_epilogue(
    s: &Samplers<'_>,
    bias_input: Option<usize>,
    activation: Option<UnaryOp>,
    channel: usize,
    acc: f32,
) -> f32 {
    let v = match bias_input {
        Some(i) => BinaryOp::Add.apply(acc, s.get_flat(i, channel)),
        None => acc,
    };
    match activation {
        Some(act) => act.apply(v),
        None => v,
    }
}

/// Element-wise unary kernel. Uses a packed (RGBA texel) body when
/// requested: one invocation computes 4 consecutive outputs.
pub fn unary(op: UnaryOp, out_shape: Vec<usize>, packed: bool) -> Program {
    if packed {
        let n = out_shape.iter().product::<usize>().max(1);
        Program::packed("Unary", out_shape, move |s, base| {
            let mut quad = [0.0f32; 4];
            for (i, q) in quad.iter_mut().enumerate() {
                if base + i < n {
                    *q = op.apply(s.get_flat(0, base + i));
                }
            }
            quad
        })
    } else {
        Program::per_element("Unary", out_shape, move |s, flat, _| op.apply(s.get_flat(0, flat)))
    }
}

/// Map output coordinates to an input's (right-aligned, broadcast) coords.
#[inline]
fn broadcast_coords(out_coords: &[usize], in_dims: &[usize], buf: &mut [usize; MAX_RANK]) -> usize {
    let offset = out_coords.len() - in_dims.len();
    for (i, &d) in in_dims.iter().enumerate() {
        buf[i] = if d == 1 { 0 } else { out_coords[i + offset] };
    }
    in_dims.len()
}

/// Element-wise binary kernel with broadcasting.
pub fn binary(
    op: BinaryOp,
    a_dims: Vec<usize>,
    b_dims: Vec<usize>,
    out_shape: Vec<usize>,
    packed: bool,
) -> Program {
    let same = a_dims == out_shape && b_dims == out_shape;
    if same && packed {
        let n = out_shape.iter().product::<usize>().max(1);
        return Program::packed("BinaryPacked", out_shape, move |s, base| {
            let mut quad = [0.0f32; 4];
            for (i, q) in quad.iter_mut().enumerate() {
                if base + i < n {
                    *q = op.apply(s.get_flat(0, base + i), s.get_flat(1, base + i));
                }
            }
            quad
        });
    }
    if same {
        return Program::per_element("Binary", out_shape, move |s, flat, _| {
            op.apply(s.get_flat(0, flat), s.get_flat(1, flat))
        });
    }
    Program::per_element("BinaryBroadcast", out_shape, move |s, _, coords| {
        let mut buf = [0usize; MAX_RANK];
        let la = broadcast_coords(coords, &a_dims, &mut buf);
        let av = s.get(0, &buf[..la]);
        let lb = broadcast_coords(coords, &b_dims, &mut buf);
        let bv = s.get(1, &buf[..lb]);
        op.apply(av, bv)
    })
}

/// Cast kernel (values live in float textures; semantics applied here).
pub fn cast(out_shape: Vec<usize>, dtype: DType) -> Program {
    Program::per_element("Cast", out_shape, move |s, flat, _| {
        let v = s.get_flat(0, flat);
        match dtype {
            DType::F32 | DType::F16 => v,
            DType::I32 => v as i32 as f32,
            DType::Bool => (v != 0.0) as u8 as f32,
            DType::U8 => v.clamp(0.0, 255.0) as u8 as f32,
        }
    })
}

/// Reduction over `axes`: each output walks its reduced subspace (a naive
/// O(k)-per-output WebGL reduce; no shared memory to build a tree with).
pub fn reduce(op: ReduceOp, in_dims: Vec<usize>, axes: Vec<usize>, out_shape: Vec<usize>) -> Program {
    let reduce_dims: Vec<usize> = axes.iter().map(|&i| in_dims[i]).collect();
    let count: usize = reduce_dims.iter().product::<usize>().max(1);
    let cost = count.max(1);
    let kept_axes: Vec<usize> =
        (0..in_dims.len()).filter(|i| !axes.contains(i)).collect();
    Program::per_element("Reduce", out_shape, move |s, _, out_coords| {
        let mut in_coords = [0usize; MAX_RANK];
        for (k, &ax) in kept_axes.iter().enumerate() {
            in_coords[ax] = out_coords[k];
        }
        let mut acc = op.init();
        let mut idx = vec![0usize; reduce_dims.len()];
        loop {
            for (k, &ax) in axes.iter().enumerate() {
                in_coords[ax] = idx[k];
            }
            acc = op.combine(acc, s.get(0, &in_coords[..in_dims.len()]));
            // Odometer.
            let mut d = reduce_dims.len();
            loop {
                if d == 0 {
                    return op.finalize(acc, count);
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < reduce_dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    })
    .with_cost(cost)
}

/// Arg-reduction along one axis.
#[allow(clippy::needless_range_loop)] // coordinate scatter across two arrays
pub fn arg_reduce(op: ArgReduceOp, in_dims: Vec<usize>, axis: usize, out_shape: Vec<usize>) -> Program {
    let n = in_dims[axis];
    Program::per_element("ArgReduce", out_shape, move |s, _, out_coords| {
        let mut in_coords = [0usize; MAX_RANK];
        let mut k = 0;
        for i in 0..in_dims.len() {
            if i != axis {
                in_coords[i] = out_coords[k];
                k += 1;
            }
        }
        in_coords[axis] = 0;
        let mut best = s.get(0, &in_coords[..in_dims.len()]);
        let mut best_i = 0usize;
        for j in 1..n {
            in_coords[axis] = j;
            let v = s.get(0, &in_coords[..in_dims.len()]);
            let better = match op {
                ArgReduceOp::ArgMax => v > best,
                ArgReduceOp::ArgMin => v < best,
            };
            if better {
                best = v;
                best_i = j;
            }
        }
        best_i as f32
    })
}

/// Batched matmul, Listing 2 style: each output recomputes a full dot
/// product (no shared memory — the architectural handicap behind the
/// WebGL/CUDA gap of Sec 3.9). The packed variant computes 4 adjacent
/// outputs per invocation, reusing each A element across the quad.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    packed: bool,
) -> Program {
    matmul_impl(("MatMul", "MatMulPacked"), batch, m, k, n, transpose_a, transpose_b, packed, false, None)
}

/// Matmul with the bias+activation epilogue fused in-register: the whole
/// `matmul → add → activation` chain in one draw call, no intermediate
/// textures. Bias (when present) is sampler input 2, indexed by output
/// column.
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    packed: bool,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    matmul_impl(
        ("FusedMatMul", "FusedMatMulPacked"),
        batch,
        m,
        k,
        n,
        transpose_a,
        transpose_b,
        packed,
        has_bias,
        activation,
    )
}

#[allow(clippy::too_many_arguments)]
fn matmul_impl(
    names: (&'static str, &'static str),
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    packed: bool,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![batch, m, n];
    let cost = (k * 2).max(1);
    let bias_input = if has_bias { Some(2) } else { None };
    if packed {
        let total = batch * m * n;
        return Program::packed(names.1, out_shape, move |s, base| {
            // base indexes the flattened [batch, m, n] output.
            let j0 = base % n;
            let rest = base / n;
            let i = rest % m;
            let b = rest / m;
            let mut acc = [0.0f32; 4];
            if j0 + 3 < n {
                // Fast path: all four outputs share row (b, i), so each A
                // element is loaded once for the whole quad — the vec4
                // benefit of Listing 2.
                let a_off = b * m * k;
                let b_off = b * k * n;
                for p in 0..k {
                    let av = if transpose_a { s.get_flat(0, a_off + p * m + i) } else { s.get_flat(0, a_off + i * k + p) };
                    for (q, a) in acc.iter_mut().enumerate() {
                        let j = j0 + q;
                        let bv = if transpose_b {
                            s.get_flat(1, b_off + j * k + p)
                        } else {
                            s.get_flat(1, b_off + p * n + j)
                        };
                        *a += av * bv;
                    }
                }
                for (q, a) in acc.iter_mut().enumerate() {
                    *a = apply_epilogue(s, bias_input, activation, j0 + q, *a);
                }
            } else {
                // Row-straddling texel: compute each output independently.
                for (q, a) in acc.iter_mut().enumerate() {
                    let idx = base + q;
                    if idx >= total {
                        break;
                    }
                    let j = idx % n;
                    let rest = idx / n;
                    let i = rest % m;
                    let b = rest / m;
                    let mut dot = 0.0f32;
                    for p in 0..k {
                        let av = if transpose_a { s.get(0, &[b, p, i]) } else { s.get(0, &[b, i, p]) };
                        let bv = if transpose_b { s.get(1, &[b, j, p]) } else { s.get(1, &[b, p, j]) };
                        dot += av * bv;
                    }
                    *a = apply_epilogue(s, bias_input, activation, j, dot);
                }
            }
            acc
        })
        .with_cost(cost);
    }
    Program::per_element(names.0, out_shape, move |s, _, coords| {
        let (b, i, j) = (coords[0], coords[1], coords[2]);
        let a_off = b * m * k;
        let b_off = b * k * n;
        let mut acc = 0.0f32;
        for p in 0..k {
            let av = if transpose_a { s.get_flat(0, a_off + p * m + i) } else { s.get_flat(0, a_off + i * k + p) };
            let bv = if transpose_b { s.get_flat(1, b_off + j * k + p) } else { s.get_flat(1, b_off + p * n + j) };
            acc += av * bv;
        }
        apply_epilogue(s, bias_input, activation, j, acc)
    })
    .with_cost(cost)
}

/// Quantized-weight fused matmul: input 1 is an `R8` codes texture
/// (sampling yields the integer code widened to f32, never a dequantized
/// weight buffer). The accumulation is factored as
/// `Σ a·(q·s + m) = s·Σ a·q + m·Σ a`, with the affine scale/min applied
/// in-register before the shared bias+activation epilogue — one draw call,
/// 1-byte-per-weight device residency. `b_batch == 1` broadcasts the single
/// code matrix across the batch.
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul_quant(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    b_batch: usize,
    transpose_a: bool,
    transpose_b: bool,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![batch, m, n];
    let cost = (k * 3).max(1);
    let bias_input = if has_bias { Some(2) } else { None };
    Program::per_element("FusedMatMulQuant", out_shape, move |s, _, coords| {
        let (b, i, j) = (coords[0], coords[1], coords[2]);
        let a_off = b * m * k;
        let b_off = if b_batch == 1 { 0 } else { b * k * n };
        let mut acc_q = 0.0f32;
        let mut acc_a = 0.0f32;
        for p in 0..k {
            let av = if transpose_a {
                s.get_flat(0, a_off + p * m + i)
            } else {
                s.get_flat(0, a_off + i * k + p)
            };
            let qv = if transpose_b {
                s.get_flat(1, b_off + j * k + p)
            } else {
                s.get_flat(1, b_off + p * n + j)
            };
            acc_q += av * qv;
            acc_a += av;
        }
        let (sc, mn) = params.scale_min(j);
        apply_epilogue(s, bias_input, activation, j, sc * acc_q + mn * acc_a)
    })
    .with_cost(cost)
}

/// Quantized-filter fused conv2d: input 1 holds `R8` HWIO codes. The
/// valid-tap input sum is shared across the factored epilogue; per-channel
/// `params` index the output-channel axis (the caller guarantees this via
/// `quant_axis_ok`).
pub fn fused_conv2d_quant(
    info: Conv2dInfo,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![info.batch, info.out_height, info.out_width, info.out_channels];
    let cost = info.filter_height * info.filter_width * info.in_channels * 3;
    let bias_input = if has_bias { Some(2) } else { None };
    Program::per_element("FusedConv2DQuant", out_shape, move |s, _, coords| {
        let (b, oh, ow, oc) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let row_stride = c.in_width * c.in_channels;
        let img_stride = c.in_height * row_stride;
        let w_oc_stride = c.out_channels;
        let mut acc_q = 0.0f32;
        let mut acc_x = 0.0f32;
        for fh in 0..c.filter_height {
            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
            if ih < 0 || ih >= c.in_height as isize {
                continue;
            }
            for fw in 0..c.filter_width {
                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                if iw < 0 || iw >= c.in_width as isize {
                    continue;
                }
                let x_base = b * img_stride + ih as usize * row_stride + iw as usize * c.in_channels;
                let w_base = ((fh * c.filter_width + fw) * c.in_channels) * w_oc_stride + oc;
                for ic in 0..c.in_channels {
                    let xv = s.get_flat(0, x_base + ic);
                    acc_q += xv * s.get_flat(1, w_base + ic * w_oc_stride);
                    acc_x += xv;
                }
            }
        }
        let (sc, mn) = params.scale_min(oc);
        apply_epilogue(s, bias_input, activation, oc, sc * acc_q + mn * acc_x)
    })
    .with_cost(cost)
}

/// Quantized-filter fused depthwise conv2d over `R8` codes. Per-channel
/// scales index filter axis 2 (input channel) or 3 (channel multiplier).
pub fn fused_depthwise_conv2d_quant(
    info: Conv2dInfo,
    params: QuantParams,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![info.batch, info.out_height, info.out_width, info.out_channels];
    let cost = info.filter_height * info.filter_width * 3;
    let bias_input = if has_bias { Some(2) } else { None };
    Program::per_element("FusedDepthwiseConv2DQuant", out_shape, move |s, _, coords| {
        let (b, oh, ow, och) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let ic = och / c.channel_mul;
        let m = och % c.channel_mul;
        let row_stride = c.in_width * c.in_channels;
        let img_stride = c.in_height * row_stride;
        let mut acc_q = 0.0f32;
        let mut acc_x = 0.0f32;
        for fh in 0..c.filter_height {
            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
            if ih < 0 || ih >= c.in_height as isize {
                continue;
            }
            for fw in 0..c.filter_width {
                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                if iw < 0 || iw >= c.in_width as isize {
                    continue;
                }
                let x_idx =
                    b * img_stride + ih as usize * row_stride + iw as usize * c.in_channels + ic;
                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic) * c.channel_mul + m;
                let xv = s.get_flat(0, x_idx);
                acc_q += xv * s.get_flat(1, w_idx);
                acc_x += xv;
            }
        }
        let ch = match &params {
            QuantParams::PerTensor { .. } => 0,
            QuantParams::PerChannel { axis, .. } => {
                if *axis == 2 {
                    ic
                } else {
                    m
                }
            }
        };
        let (sc, mn) = params.scale_min(ch);
        apply_epilogue(s, bias_input, activation, och, sc * acc_q + mn * acc_x)
    })
    .with_cost(cost)
}

/// conv2d: one output activation per invocation, walking its receptive
/// field. Index math is pre-resolved to flat fetches, as a GLSL compiler
/// resolves the generated accessors into direct texture fetches.
///
/// The packed variant computes the 4 output channels of one RGBA texel per
/// invocation, loading every input activation once for all four filters —
/// the packed-conv win behind the paper's 1.3-1.4x PoseNet speedup.
pub fn conv2d(info: Conv2dInfo, packed: bool) -> Program {
    conv2d_impl(("Conv2D", "Conv2DPacked"), info, packed, false, None)
}

/// conv2d with the bias+activation epilogue fused in-register. Bias (when
/// present) is sampler input 2, indexed by output channel.
pub fn fused_conv2d(
    info: Conv2dInfo,
    packed: bool,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    conv2d_impl(("FusedConv2D", "FusedConv2DPacked"), info, packed, has_bias, activation)
}

fn conv2d_impl(
    names: (&'static str, &'static str),
    info: Conv2dInfo,
    packed: bool,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![info.batch, info.out_height, info.out_width, info.out_channels];
    let cost = info.filter_height * info.filter_width * info.in_channels * 2;
    let bias_input = if has_bias { Some(2) } else { None };
    if packed {
        let c = info.clone();
        let total = out_shape.iter().product::<usize>();
        return Program::packed(names.1, out_shape, move |s, base| {
            let mut acc = [0.0f32; 4];
            let oc0 = base % c.out_channels;
            let pix = base / c.out_channels;
            let row_stride = c.in_width * c.in_channels;
            let img_stride = c.in_height * row_stride;
            if oc0 + 3 < c.out_channels {
                // All four outputs share the pixel: one x fetch feeds four
                // filter channels.
                let ow = pix % c.out_width;
                let rest = pix / c.out_width;
                let oh = rest % c.out_height;
                let b = rest / c.out_height;
                for fh in 0..c.filter_height {
                    let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                    if ih < 0 || ih >= c.in_height as isize {
                        continue;
                    }
                    for fw in 0..c.filter_width {
                        let iw =
                            (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                        if iw < 0 || iw >= c.in_width as isize {
                            continue;
                        }
                        let x_base = b * img_stride
                            + ih as usize * row_stride
                            + iw as usize * c.in_channels;
                        let w_base = (fh * c.filter_width + fw) * c.in_channels * c.out_channels + oc0;
                        for ic in 0..c.in_channels {
                            let xv = s.get_flat(0, x_base + ic);
                            let w_at = w_base + ic * c.out_channels;
                            acc[0] += xv * s.get_flat(1, w_at);
                            acc[1] += xv * s.get_flat(1, w_at + 1);
                            acc[2] += xv * s.get_flat(1, w_at + 2);
                            acc[3] += xv * s.get_flat(1, w_at + 3);
                        }
                    }
                }
                for (q, a) in acc.iter_mut().enumerate() {
                    *a = apply_epilogue(s, bias_input, activation, oc0 + q, *a);
                }
            } else {
                // Channel-straddling texel: per-output fallback.
                for (q, a) in acc.iter_mut().enumerate() {
                    let idx = base + q;
                    if idx >= total {
                        break;
                    }
                    let oc = idx % c.out_channels;
                    let pix = idx / c.out_channels;
                    let ow = pix % c.out_width;
                    let rest = pix / c.out_width;
                    let oh = rest % c.out_height;
                    let b = rest / c.out_height;
                    let mut dot = 0.0f32;
                    for fh in 0..c.filter_height {
                        let ih =
                            (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                        if ih < 0 || ih >= c.in_height as isize {
                            continue;
                        }
                        for fw in 0..c.filter_width {
                            let iw = (ow * c.stride_w + fw * c.dilation_w) as isize
                                - c.pad_left as isize;
                            if iw < 0 || iw >= c.in_width as isize {
                                continue;
                            }
                            let x_base = b * img_stride
                                + ih as usize * row_stride
                                + iw as usize * c.in_channels;
                            let w_base =
                                (fh * c.filter_width + fw) * c.in_channels * c.out_channels + oc;
                            for ic in 0..c.in_channels {
                                dot += s.get_flat(0, x_base + ic)
                                    * s.get_flat(1, w_base + ic * c.out_channels);
                            }
                        }
                    }
                    *a = apply_epilogue(s, bias_input, activation, oc, dot);
                }
            }
            acc
        })
        .with_cost(cost);
    }
    Program::per_element(names.0, out_shape, move |s, _, coords| {
        let (b, oh, ow, oc) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let row_stride = c.in_width * c.in_channels;
        let img_stride = c.in_height * row_stride;
        let w_oc_stride = c.out_channels;
        let mut acc = 0.0f32;
        for fh in 0..c.filter_height {
            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
            if ih < 0 || ih >= c.in_height as isize {
                continue;
            }
            for fw in 0..c.filter_width {
                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                if iw < 0 || iw >= c.in_width as isize {
                    continue;
                }
                let x_base = b * img_stride + ih as usize * row_stride + iw as usize * c.in_channels;
                let w_base = ((fh * c.filter_width + fw) * c.in_channels) * w_oc_stride + oc;
                for ic in 0..c.in_channels {
                    acc += s.get_flat(0, x_base + ic) * s.get_flat(1, w_base + ic * w_oc_stride);
                }
            }
        }
        apply_epilogue(s, bias_input, activation, oc, acc)
    })
    .with_cost(cost)
}

/// Gather-form gradient of conv2d w.r.t. the input.
pub fn conv2d_backprop_input(info: Conv2dInfo) -> Program {
    let out_shape = vec![info.batch, info.in_height, info.in_width, info.in_channels];
    Program::per_element("Conv2DBackpropInput", out_shape, move |s, _, coords| {
        let (b, ih, iw, ic) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = 0.0f32;
        for fh in 0..c.filter_height {
            let num_h = ih as isize + c.pad_top as isize - (fh * c.dilation_h) as isize;
            if num_h < 0 || num_h % c.stride_h as isize != 0 {
                continue;
            }
            let oh = (num_h / c.stride_h as isize) as usize;
            if oh >= c.out_height {
                continue;
            }
            for fw in 0..c.filter_width {
                let num_w = iw as isize + c.pad_left as isize - (fw * c.dilation_w) as isize;
                if num_w < 0 || num_w % c.stride_w as isize != 0 {
                    continue;
                }
                let ow = (num_w / c.stride_w as isize) as usize;
                if ow >= c.out_width {
                    continue;
                }
                for oc in 0..c.out_channels {
                    acc += s.get(0, &[b, oh, ow, oc]) * s.get(1, &[fh, fw, ic, oc]);
                }
            }
        }
        acc
    })
}

/// Gather-form gradient of conv2d w.r.t. the filter.
pub fn conv2d_backprop_filter(info: Conv2dInfo) -> Program {
    let out_shape = vec![info.filter_height, info.filter_width, info.in_channels, info.out_channels];
    Program::per_element("Conv2DBackpropFilter", out_shape, move |s, _, coords| {
        let (fh, fw, ic, oc) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = 0.0f32;
        for b in 0..c.batch {
            for oh in 0..c.out_height {
                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                if ih < 0 || ih >= c.in_height as isize {
                    continue;
                }
                for ow in 0..c.out_width {
                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                    if iw < 0 || iw >= c.in_width as isize {
                        continue;
                    }
                    acc += s.get(0, &[b, ih as usize, iw as usize, ic])
                        * s.get(1, &[b, oh, ow, oc]);
                }
            }
        }
        acc
    })
}

/// Depthwise conv2d, with pre-resolved flat index math.
pub fn depthwise_conv2d(info: Conv2dInfo) -> Program {
    depthwise_conv2d_impl("DepthwiseConv2D", info, false, None)
}

/// Depthwise conv2d with the bias+activation epilogue fused in-register.
/// Bias (when present) is sampler input 2, indexed by output channel.
pub fn fused_depthwise_conv2d(
    info: Conv2dInfo,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    depthwise_conv2d_impl("FusedDepthwiseConv2D", info, has_bias, activation)
}

fn depthwise_conv2d_impl(
    name: &'static str,
    info: Conv2dInfo,
    has_bias: bool,
    activation: Option<UnaryOp>,
) -> Program {
    let out_shape = vec![info.batch, info.out_height, info.out_width, info.out_channels];
    let cost = info.filter_height * info.filter_width * 2;
    let bias_input = if has_bias { Some(2) } else { None };
    Program::per_element(name, out_shape, move |s, _, coords| {
        let (b, oh, ow, och) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let ic = och / c.channel_mul;
        let m = och % c.channel_mul;
        let row_stride = c.in_width * c.in_channels;
        let img_stride = c.in_height * row_stride;
        let mut acc = 0.0f32;
        for fh in 0..c.filter_height {
            let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
            if ih < 0 || ih >= c.in_height as isize {
                continue;
            }
            for fw in 0..c.filter_width {
                let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                if iw < 0 || iw >= c.in_width as isize {
                    continue;
                }
                let x_idx = b * img_stride + ih as usize * row_stride + iw as usize * c.in_channels + ic;
                let w_idx = ((fh * c.filter_width + fw) * c.in_channels + ic) * c.channel_mul + m;
                acc += s.get_flat(0, x_idx) * s.get_flat(1, w_idx);
            }
        }
        apply_epilogue(s, bias_input, activation, och, acc)
    })
    .with_cost(cost)
}

/// A chain of elementwise steps executed as one program: input 0 is the
/// chain head, inputs 1.. are the extras referenced by binary steps, each
/// sampled with right-aligned broadcast against the output coordinates.
pub fn fused_elementwise(
    in_dims: Vec<Vec<usize>>,
    steps: Vec<FusedStep>,
    out_shape: Vec<usize>,
) -> Program {
    let cost = (steps.len() * 2).max(1);
    Program::per_element("FusedElementwise", out_shape, move |s, _, coords| {
        let mut buf = [0usize; MAX_RANK];
        let l = broadcast_coords(coords, &in_dims[0], &mut buf);
        let mut v = s.get(0, &buf[..l]);
        for step in &steps {
            v = match *step {
                FusedStep::Unary(op) => op.apply(v),
                FusedStep::Binary(op, i) => {
                    let l = broadcast_coords(coords, &in_dims[i + 1], &mut buf);
                    op.apply(v, s.get(i + 1, &buf[..l]))
                }
            };
        }
        v
    })
    .with_cost(cost)
}

/// Gather-form gradient of depthwise conv2d w.r.t. the input.
pub fn depthwise_conv2d_backprop_input(info: Conv2dInfo) -> Program {
    let out_shape = vec![info.batch, info.in_height, info.in_width, info.in_channels];
    Program::per_element("DepthwiseBackpropInput", out_shape, move |s, _, coords| {
        let (b, ih, iw, ic) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = 0.0f32;
        for fh in 0..c.filter_height {
            let num_h = ih as isize + c.pad_top as isize - (fh * c.dilation_h) as isize;
            if num_h < 0 || num_h % c.stride_h as isize != 0 {
                continue;
            }
            let oh = (num_h / c.stride_h as isize) as usize;
            if oh >= c.out_height {
                continue;
            }
            for fw in 0..c.filter_width {
                let num_w = iw as isize + c.pad_left as isize - (fw * c.dilation_w) as isize;
                if num_w < 0 || num_w % c.stride_w as isize != 0 {
                    continue;
                }
                let ow = (num_w / c.stride_w as isize) as usize;
                if ow >= c.out_width {
                    continue;
                }
                for m in 0..c.channel_mul {
                    acc += s.get(0, &[b, oh, ow, ic * c.channel_mul + m])
                        * s.get(1, &[fh, fw, ic, m]);
                }
            }
        }
        acc
    })
}

/// Gather-form gradient of depthwise conv2d w.r.t. the filter.
pub fn depthwise_conv2d_backprop_filter(info: Conv2dInfo) -> Program {
    let out_shape = vec![info.filter_height, info.filter_width, info.in_channels, info.channel_mul];
    Program::per_element("DepthwiseBackpropFilter", out_shape, move |s, _, coords| {
        let (fh, fw, ic, m) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = 0.0f32;
        for b in 0..c.batch {
            for oh in 0..c.out_height {
                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                if ih < 0 || ih >= c.in_height as isize {
                    continue;
                }
                for ow in 0..c.out_width {
                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                    if iw < 0 || iw >= c.in_width as isize {
                        continue;
                    }
                    acc += s.get(0, &[b, ih as usize, iw as usize, ic])
                        * s.get(1, &[b, oh, ow, ic * c.channel_mul + m]);
                }
            }
        }
        acc
    })
}

/// Max/avg pooling. Average divides by the count of in-bounds positions.
pub fn pool2d(op: PoolOp, info: Conv2dInfo) -> Program {
    let out_shape = vec![info.batch, info.out_height, info.out_width, info.out_channels];
    let cost = info.filter_height * info.filter_width;
    Program::per_element("Pool2D", out_shape, move |s, _, coords| {
        let (b, oh, ow, ch) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = match op {
            PoolOp::Max => f32::NEG_INFINITY,
            PoolOp::Avg => 0.0,
        };
        let mut count = 0usize;
        for fh in 0..c.filter_height {
            let ih = (oh * c.stride_h + fh) as isize - c.pad_top as isize;
            if ih < 0 || ih >= c.in_height as isize {
                continue;
            }
            for fw in 0..c.filter_width {
                let iw = (ow * c.stride_w + fw) as isize - c.pad_left as isize;
                if iw < 0 || iw >= c.in_width as isize {
                    continue;
                }
                let v = s.get(0, &[b, ih as usize, iw as usize, ch]);
                match op {
                    PoolOp::Max => acc = acc.max(v),
                    PoolOp::Avg => acc += v,
                }
                count += 1;
            }
        }
        match op {
            PoolOp::Max => acc,
            PoolOp::Avg => acc / count.max(1) as f32,
        }
    })
    .with_cost(cost)
}

/// Gather-form pooling gradient: each input pixel scans the windows that
/// contain it; max-pool matches the reference's first-argmax tie rule by
/// recomputing each window scan in the same order.
pub fn pool2d_backprop(op: PoolOp, info: Conv2dInfo) -> Program {
    // Input 0 = dy, input 1 = x.
    let out_shape = vec![info.batch, info.in_height, info.in_width, info.in_channels];
    Program::per_element("Pool2DBackprop", out_shape, move |s, _, coords| {
        let (b, ih, iw, ch) = (coords[0], coords[1], coords[2], coords[3]);
        let c = &info;
        let mut acc = 0.0f32;
        // Which output windows include (ih, iw)?
        for fh in 0..c.filter_height {
            let num_h = ih as isize + c.pad_top as isize - fh as isize;
            if num_h < 0 || num_h % c.stride_h as isize != 0 {
                continue;
            }
            let oh = (num_h / c.stride_h as isize) as usize;
            if oh >= c.out_height {
                continue;
            }
            for fw in 0..c.filter_width {
                let num_w = iw as isize + c.pad_left as isize - fw as isize;
                if num_w < 0 || num_w % c.stride_w as isize != 0 {
                    continue;
                }
                let ow = (num_w / c.stride_w as isize) as usize;
                if ow >= c.out_width {
                    continue;
                }
                let g = s.get(0, &[b, oh, ow, ch]);
                match op {
                    PoolOp::Avg => {
                        // Count valid positions of this window.
                        let mut count = 0usize;
                        for wfh in 0..c.filter_height {
                            let wih = (oh * c.stride_h + wfh) as isize - c.pad_top as isize;
                            if wih < 0 || wih >= c.in_height as isize {
                                continue;
                            }
                            for wfw in 0..c.filter_width {
                                let wiw = (ow * c.stride_w + wfw) as isize - c.pad_left as isize;
                                if wiw < 0 || wiw >= c.in_width as isize {
                                    continue;
                                }
                                count += 1;
                            }
                        }
                        acc += g / count.max(1) as f32;
                    }
                    PoolOp::Max => {
                        // First-argmax of the window, reference scan order.
                        let mut best = f32::NEG_INFINITY;
                        let mut best_pos = (usize::MAX, usize::MAX);
                        for wfh in 0..c.filter_height {
                            let wih = (oh * c.stride_h + wfh) as isize - c.pad_top as isize;
                            if wih < 0 || wih >= c.in_height as isize {
                                continue;
                            }
                            for wfw in 0..c.filter_width {
                                let wiw = (ow * c.stride_w + wfw) as isize - c.pad_left as isize;
                                if wiw < 0 || wiw >= c.in_width as isize {
                                    continue;
                                }
                                let v = s.get(1, &[b, wih as usize, wiw as usize, ch]);
                                if v > best {
                                    best = v;
                                    best_pos = (wih as usize, wiw as usize);
                                }
                            }
                        }
                        if best_pos == (ih, iw) {
                            acc += g;
                        }
                    }
                }
            }
        }
        acc
    })
}

/// Contiguous slice.
pub fn slice(in_rank: usize, begin: Vec<usize>, out_shape: Vec<usize>) -> Program {
    Program::per_element("Slice", out_shape, move |s, _, coords| {
        let mut src = [0usize; MAX_RANK];
        for i in 0..in_rank {
            src[i] = coords[i] + begin[i];
        }
        s.get(0, &src[..in_rank])
    })
}

/// Constant pad.
pub fn pad(in_dims: Vec<usize>, paddings: Vec<(usize, usize)>, value: f32, out_shape: Vec<usize>) -> Program {
    Program::per_element("Pad", out_shape, move |s, _, coords| {
        let mut src = [0usize; MAX_RANK];
        for i in 0..in_dims.len() {
            let c = coords[i] as isize - paddings[i].0 as isize;
            if c < 0 || c >= in_dims[i] as isize {
                return value;
            }
            src[i] = c as usize;
        }
        s.get(0, &src[..in_dims.len()])
    })
}

/// Concat along `axis`: each output texel picks its source input.
pub fn concat(sizes_along_axis: Vec<usize>, axis: usize, out_shape: Vec<usize>) -> Program {
    Program::per_element("Concat", out_shape, move |s, _, coords| {
        let mut c = coords[axis];
        let mut input = 0usize;
        while c >= sizes_along_axis[input] {
            c -= sizes_along_axis[input];
            input += 1;
        }
        let mut src = [0usize; MAX_RANK];
        src[..coords.len()].copy_from_slice(coords);
        src[axis] = c;
        s.get(input, &src[..coords.len()])
    })
}

/// Transpose by permutation.
pub fn transpose(perm: Vec<usize>, out_shape: Vec<usize>) -> Program {
    Program::per_element("Transpose", out_shape, move |s, _, coords| {
        let mut src = [0usize; MAX_RANK];
        for (d, &p) in perm.iter().enumerate() {
            src[p] = coords[d];
        }
        s.get(0, &src[..perm.len()])
    })
}

/// Gather rows along `axis` via an index texture (input 1).
pub fn gather(in_dims: Vec<usize>, axis: usize, n_indices: usize, out_shape: Vec<usize>) -> Program {
    let n = in_dims[axis];
    Program::per_element("Gather", out_shape, move |s, _, coords| {
        let _ = n_indices;
        let ix = s.get(1, &[coords[axis]]) as i64;
        let ix = ix.rem_euclid(n as i64) as usize;
        let mut src = [0usize; MAX_RANK];
        // coords: [..axis] from out, axis index replaced, [axis+1..].
        src[..in_dims.len()].copy_from_slice(&coords[..in_dims.len()]);
        src[axis] = ix;
        s.get(0, &src[..in_dims.len()])
    })
}

/// Tile by repetition.
pub fn tile(in_dims: Vec<usize>, out_shape: Vec<usize>) -> Program {
    Program::per_element("Tile", out_shape, move |s, _, coords| {
        let mut src = [0usize; MAX_RANK];
        for (i, &d) in in_dims.iter().enumerate() {
            src[i] = coords[i] % d;
        }
        s.get(0, &src[..in_dims.len()])
    })
}

/// Reverse along axes.
pub fn reverse(in_dims: Vec<usize>, axes: Vec<usize>, out_shape: Vec<usize>) -> Program {
    Program::per_element("Reverse", out_shape, move |s, _, coords| {
        let mut src = [0usize; MAX_RANK];
        for (i, &d) in in_dims.iter().enumerate() {
            src[i] = if axes.contains(&i) { d - 1 - coords[i] } else { coords[i] };
        }
        s.get(0, &src[..in_dims.len()])
    })
}

/// Broadcast select `cond ? a : b`.
pub fn select(
    cond_dims: Vec<usize>,
    a_dims: Vec<usize>,
    b_dims: Vec<usize>,
    out_shape: Vec<usize>,
) -> Program {
    Program::per_element("Select", out_shape, move |s, _, coords| {
        let mut buf = [0usize; MAX_RANK];
        let lc = broadcast_coords(coords, &cond_dims, &mut buf);
        let c = s.get(0, &buf[..lc]);
        if c != 0.0 {
            let la = broadcast_coords(coords, &a_dims, &mut buf);
            s.get(1, &buf[..la])
        } else {
            let lb = broadcast_coords(coords, &b_dims, &mut buf);
            s.get(2, &buf[..lb])
        }
    })
}

/// One-hot encode: indices are input 0, trailing dim is `depth`.
pub fn one_hot(depth: usize, on: f32, off: f32, out_shape: Vec<usize>) -> Program {
    Program::per_element("OneHot", out_shape, move |s, flat, _| {
        let _ = depth;
        let row = flat / depth;
        let col = flat % depth;
        let ix = s.get_flat(0, row) as i64;
        if ix == col as i64 {
            on
        } else {
            off
        }
    })
}

/// Bilinear resize of NHWC.
pub fn resize_bilinear(
    in_dims: Vec<usize>,
    new_h: usize,
    new_w: usize,
    align_corners: bool,
) -> Program {
    let (in_h, in_w) = (in_dims[1], in_dims[2]);
    let out_shape = vec![in_dims[0], new_h, new_w, in_dims[3]];
    let scale = |out_size: usize, in_size: usize| -> f32 {
        if align_corners && out_size > 1 {
            (in_size - 1) as f32 / (out_size - 1) as f32
        } else {
            in_size as f32 / out_size as f32
        }
    };
    let h_scale = scale(new_h, in_h);
    let w_scale = scale(new_w, in_w);
    Program::per_element("ResizeBilinear", out_shape, move |s, _, coords| {
        let (b, oh, ow, ch) = (coords[0], coords[1], coords[2], coords[3]);
        let src_h = if align_corners { oh as f32 * h_scale } else { (oh as f32 + 0.5) * h_scale - 0.5 };
        let src_h = src_h.max(0.0);
        let h0 = (src_h.floor() as usize).min(in_h - 1);
        let h1 = (h0 + 1).min(in_h - 1);
        let hf = src_h - h0 as f32;
        let src_w = if align_corners { ow as f32 * w_scale } else { (ow as f32 + 0.5) * w_scale - 0.5 };
        let src_w = src_w.max(0.0);
        let w0 = (src_w.floor() as usize).min(in_w - 1);
        let w1 = (w0 + 1).min(in_w - 1);
        let wf = src_w - w0 as f32;
        let at = |h: usize, w: usize| s.get(0, &[b, h, w, ch]);
        let top = at(h0, w0) + (at(h0, w1) - at(h0, w0)) * wf;
        let bot = at(h1, w0) + (at(h1, w1) - at(h1, w0)) * wf;
        top + (bot - top) * hf
    })
}
