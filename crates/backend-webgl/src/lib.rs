//! # webml-backend-webgl
//!
//! The WebGL backend (paper Sec 4.1): kernels are fragment-shader programs
//! executed over the [`webml_webgl_sim`] substrate through a
//! `GPGPUContext`. Ops enqueue programs on the device command queue and
//! return immediately; `read`/`read_sync` are the `data()`/`dataSync()`
//! readback paths of Figures 2 and 3. Texture recycling, CPU paging,
//! RGBA-texel packing, the layout squeeze optimization and per-device f16
//! precision all come from the substrate and are switchable through
//! [`WebGlConfig`] for the ablation benchmarks.

#![warn(missing_docs)]

pub mod programs;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use webml_core::backend::{
    fused_conv2d_fallback, fused_conv2d_quant_fallback, fused_depthwise_conv2d_fallback,
    fused_depthwise_conv2d_quant_fallback, fused_elementwise_fallback, fused_matmul_fallback,
    fused_matmul_quant_fallback,
    ArgReduceOp, Backend, BackendMemory, BinaryOp, DataFuture, DataId, FenceToken, FusedStep,
    KTensor, KernelTiming, PoolOp, ReduceOp, UnaryOp,
};
use webml_core::conv_util::Conv2dInfo;
use webml_core::dtype::{DType, TensorData};
use webml_core::error::{Error, Result};
use webml_core::shape::Shape;
use webml_webgl_sim::context::{ContextConfig, FenceHandle, GlError, GpgpuContext, TexHandle};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::fault::FaultPlan;
use webml_webgl_sim::pager::PagingPolicy;
use webml_webgl_sim::shader::Program;

/// Re-exported configuration of the underlying GPGPU context.
pub type WebGlConfig = ContextConfig;

/// Where a data container's values currently live.
enum Residency {
    /// On the (simulated) device, behind a texture handle.
    Device(TexHandle),
    /// On the host only: the device refused the upload (context lost,
    /// allocation OOM). Reads are served directly; the next kernel use, or
    /// [`WebGlBackend::recover_context`], re-acquires a texture.
    Host(Vec<f32>),
}

struct Entry {
    res: Residency,
    dtype: DType,
}

/// Map a substrate error to the engine's classified error surface, so the
/// engine can tell transient faults (retry / degrade) from logic errors.
fn map_gl(name: &str, e: GlError) -> Error {
    match e {
        GlError::ContextLost => Error::context_lost(name),
        GlError::Oom { .. } | GlError::TransientReadback { .. } => {
            Error::resource_exhausted(name, e.to_string())
        }
        GlError::ShaderCompile { ref program } => Error::kernel_unsupported(name, program.clone()),
        other => Error::backend(name, other.to_string()),
    }
}

/// The WebGL backend over a simulated device.
pub struct WebGlBackend {
    name: String,
    ctx: GpgpuContext,
    store: Mutex<HashMap<DataId, Entry>>,
    next_id: AtomicU64,
}

impl WebGlBackend {
    /// Create a backend named `"webgl"` on the given device profile.
    ///
    /// # Errors
    /// Fails when the device lacks float-texture support — callers should
    /// fall back to a CPU backend, as TensorFlow.js does automatically.
    pub fn new(profile: DeviceProfile, config: WebGlConfig) -> Result<WebGlBackend> {
        Self::with_name("webgl", profile, config)
    }

    /// Create a backend with a custom registry name (used to register
    /// multiple device profiles side by side, e.g. `webgl-integrated` and
    /// `webgl-discrete` for Table 1).
    ///
    /// # Errors
    /// Same as [`WebGlBackend::new`].
    pub fn with_name(
        name: impl Into<String>,
        profile: DeviceProfile,
        config: WebGlConfig,
    ) -> Result<WebGlBackend> {
        Self::with_faults_named(name, profile, config, FaultPlan::none())
    }

    /// Create a backend named `"webgl"` whose context injects faults
    /// according to `plan` — the entry point of the fault suite.
    ///
    /// # Errors
    /// Same as [`WebGlBackend::new`].
    pub fn with_faults(
        profile: DeviceProfile,
        config: WebGlConfig,
        plan: FaultPlan,
    ) -> Result<WebGlBackend> {
        Self::with_faults_named("webgl", profile, config, plan)
    }

    /// [`WebGlBackend::with_faults`] with a custom registry name.
    ///
    /// # Errors
    /// Same as [`WebGlBackend::new`].
    pub fn with_faults_named(
        name: impl Into<String>,
        profile: DeviceProfile,
        config: WebGlConfig,
        plan: FaultPlan,
    ) -> Result<WebGlBackend> {
        let name = name.into();
        let ctx = GpgpuContext::with_faults(profile, config, plan)
            .map_err(|e| Error::backend(&name, e.to_string()))?;
        Ok(WebGlBackend { name, ctx, store: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1) })
    }

    /// The underlying GPGPU context (for diagnostics and benchmarks).
    pub fn context(&self) -> &GpgpuContext {
        &self.ctx
    }

    /// Device-queue counters (busy time, fence waits, pipeline drains,
    /// pending commands). Does not flush.
    pub fn queue_stats(&self) -> webml_webgl_sim::QueueStats {
        self.ctx.queue_stats()
    }

    /// After a context loss: attempt restoration and re-acquire textures
    /// for host-resident entries. Returns whether the context is usable
    /// again. The substrate's program cache was cleared at loss time, so
    /// shaders recompile on next use; textures the device still shadows
    /// page back in lazily.
    pub fn recover_context(&self) -> bool {
        if !self.ctx.restore_context() {
            return false;
        }
        let mut store = self.store.lock();
        for e in store.values_mut() {
            let data = match &e.res {
                Residency::Host(d) => d.clone(),
                Residency::Device(_) => continue,
            };
            let uploaded = if e.dtype == DType::U8 {
                let codes: Vec<u8> =
                    data.iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect();
                self.ctx.upload_quantized(&codes, &[codes.len()]).ok()
            } else {
                let n = data.len();
                self.ctx.try_upload(data, &[n]).ok()
            };
            if let Some(h) = uploaded {
                e.res = Residency::Device(h);
            }
        }
        true
    }

    /// Fetch the texture handle for `id`, re-acquiring a device texture
    /// for host-resident entries (the lazy half of context-loss recovery).
    fn handle(&self, id: DataId) -> Result<TexHandle> {
        let mut store = self.store.lock();
        let e = store
            .get_mut(&id)
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
        match &e.res {
            Residency::Device(h) => Ok(h.clone()),
            Residency::Host(data) => {
                let h = if e.dtype == DType::U8 {
                    let codes: Vec<u8> =
                        data.iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect();
                    self.ctx
                        .upload_quantized(&codes, &[codes.len()])
                        .map_err(|g| map_gl(&self.name, g))?
                } else {
                    self.ctx
                        .try_upload(data.clone(), &[data.len()])
                        .map_err(|(g, _)| map_gl(&self.name, g))?
                };
                e.res = Residency::Device(h.clone());
                Ok(h)
            }
        }
    }

    /// Handle re-viewed under the kernel's logical shape. Tensors share
    /// data containers across free reshapes, so the stored layout may not
    /// match the shape the op sees; the accessor math must.
    fn view(&self, id: DataId, shape: &Shape) -> Result<TexHandle> {
        let h = self.handle(id)?;
        self.ctx.relayout(&h, shape.dims()).map_err(|e| map_gl(&self.name, e))
    }

    fn insert(&self, res: Residency, dtype: DType) -> DataId {
        let id = DataId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.store.lock().insert(id, Entry { res, dtype });
        id
    }

    fn run1(&self, program: Program, a: &TexHandle, dtype: DType) -> Result<DataId> {
        let out = self.ctx.run(program, &[a]).map_err(|e| map_gl(&self.name, e))?;
        Ok(self.insert(Residency::Device(out), dtype))
    }

    fn run_n(&self, program: Program, inputs: &[&TexHandle], dtype: DType) -> Result<DataId> {
        let out = self.ctx.run(program, inputs).map_err(|e| map_gl(&self.name, e))?;
        Ok(self.insert(Residency::Device(out), dtype))
    }

    fn packing(&self) -> bool {
        self.ctx.config().packing
    }
}

fn to_tensor_data(vals: Vec<f32>, dtype: DType) -> TensorData {
    TensorData::F32(vals).cast(dtype)
}

impl Backend for WebGlBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, data: TensorData, dtype: DType) -> DataId {
        // U8 containers (quantized weight codes) land in 1-byte `R8`
        // textures — the whole point of quantization is that codes never
        // widen to f32 on the device. Sampling still yields the code as a
        // float, so every program addresses them like any other texture.
        if dtype == DType::U8 {
            let codes: Vec<u8> = match data {
                TensorData::U8(v) => v,
                other => other
                    .to_f32_vec()
                    .iter()
                    .map(|&x| x.round().clamp(0.0, 255.0) as u8)
                    .collect(),
            };
            let res = match self.ctx.upload_quantized(&codes, &[codes.len()]) {
                Ok(tex) => Residency::Device(tex),
                Err(_) => Residency::Host(codes.iter().map(|&c| c as f32).collect()),
            };
            return self.insert(res, dtype);
        }
        let vals = data.to_f32_vec();
        let n = vals.len();
        let res = match self.ctx.try_upload(vals, &[n]) {
            Ok(tex) => Residency::Device(tex),
            // The device refused the upload (context lost, OOM): keep the
            // values host-side rather than fail an infallible registration.
            // Reads serve the host copy; kernel use or `recover_context`
            // re-acquires a texture when the device allows it again.
            Err((_, vals)) => Residency::Host(vals),
        };
        self.insert(res, dtype)
    }

    fn read_sync(&self, id: DataId) -> Result<TensorData> {
        let (tex, dtype) = {
            let store = self.store.lock();
            let e = store
                .get(&id)
                .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))?;
            match &e.res {
                Residency::Device(h) => (h.clone(), e.dtype),
                Residency::Host(data) => return Ok(to_tensor_data(data.clone(), e.dtype)),
            }
        };
        let vals = self.ctx.read_sync(&tex).map_err(|e| map_gl(&self.name, e))?;
        Ok(to_tensor_data(vals, dtype))
    }

    fn read(&self, id: DataId) -> DataFuture {
        let (tex, dtype) = {
            let store = self.store.lock();
            match store.get(&id) {
                Some(e) => match &e.res {
                    Residency::Device(h) => (h.clone(), e.dtype),
                    Residency::Host(data) => {
                        return DataFuture::ready(Ok(to_tensor_data(data.clone(), e.dtype)))
                    }
                },
                None => {
                    return DataFuture::ready(Err(Error::backend(
                        &self.name,
                        format!("unknown data id {id:?}"),
                    )))
                }
            }
        };
        // Transient faults surface synchronously and classified, so the
        // engine's retry policy sees them; only device-side failures
        // (nonexistent texture) travel through the future as strings.
        let inner = match self.ctx.read_async_checked(&tex) {
            Ok(f) => f,
            Err(e) => return DataFuture::ready(Err(map_gl(&self.name, e))),
        };
        let (future, promise) = DataFuture::pending();
        let backend_name = self.name.clone();
        // Bridge the substrate future onto the engine future; the waiting
        // thread parks until the device resolves (promise semantics).
        std::thread::spawn(move || {
            let result = inner
                .wait()
                .map(|vals| to_tensor_data(vals, dtype))
                .map_err(|e| Error::backend(&backend_name, e));
            promise.complete(result);
        });
        future
    }

    fn dispose_data(&self, id: DataId) {
        if let Some(entry) = self.store.lock().remove(&id) {
            if let Residency::Device(tex) = entry.res {
                self.ctx.dispose(&tex);
            }
        }
    }

    fn memory(&self) -> BackendMemory {
        let m = self.ctx.memory();
        let faults = self.ctx.fault_stats();
        let store = self.store.lock();
        let host_resident = store
            .values()
            .filter(|e| matches!(e.res, Residency::Host(_)))
            .count();
        BackendMemory {
            num_buffers: store.len(),
            num_bytes: m.bytes_in_gpu + m.pager.bytes_paged,
            details: vec![
                ("bytes_in_gpu".to_string(), m.bytes_in_gpu as f64),
                ("bytes_paged".to_string(), m.pager.bytes_paged as f64),
                ("page_outs".to_string(), m.pager.page_outs as f64),
                ("page_ins".to_string(), m.pager.page_ins as f64),
                ("recycler_hits".to_string(), m.recycler.hits as f64),
                ("recycler_misses".to_string(), m.recycler.misses as f64),
                ("programs_run".to_string(), m.programs_run as f64),
                ("host_resident_buffers".to_string(), host_resident as f64),
                ("context_losses".to_string(), faults.context_losses as f64),
                ("oom_failures".to_string(), faults.oom_failures as f64),
                ("compile_failures".to_string(), faults.compile_failures as f64),
                ("transient_read_failures".to_string(), faults.transient_read_failures as f64),
            ],
        }
    }

    fn epsilon(&self) -> f32 {
        self.ctx.epsilon()
    }

    fn float_precision(&self) -> u8 {
        if self.ctx.profile().half_precision_only {
            16
        } else {
            32
        }
    }

    fn begin_timing(&self) {
        self.ctx.begin_timing();
    }

    fn end_timing(&self) -> KernelTiming {
        KernelTiming { kernel_ms: self.ctx.end_timing() }
    }

    fn submit_fence(&self) -> Option<FenceToken> {
        Some(FenceToken(self.ctx.fence().raw()))
    }

    fn fence_passed(&self, token: FenceToken) -> bool {
        self.ctx.fence_passed(FenceHandle::from_raw(token.0))
    }

    fn wait_fence(&self, token: FenceToken) {
        self.ctx.wait_fence(FenceHandle::from_raw(token.0));
    }

    fn device_timer_ns(&self) -> Option<u64> {
        if !self.ctx.profile().has_disjoint_timer_query {
            return None;
        }
        // Like real EXT_disjoint_timer_query reads, sampling the counter
        // serializes the pipeline: flush so it covers enqueued programs.
        self.ctx.flush();
        Some(self.ctx.device_nanos())
    }

    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId> {
        let tex = self.view(a.data, a.shape)?;
        let program = programs::unary(op, a.shape.0.clone(), self.packing());
        self.run1(program, &tex, op.out_dtype(a.dtype))
    }

    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId> {
        let ta = self.view(a.data, a.shape)?;
        let tb = self.view(b.data, b.shape)?;
        let program =
            programs::binary(op, a.shape.0.clone(), b.shape.0.clone(), out_shape.0.clone(), self.packing());
        self.run_n(program, &[&ta, &tb], out_dtype)
    }

    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId> {
        let tex = self.view(a.data, a.shape)?;
        let program = programs::cast(a.shape.0.clone(), dtype);
        self.run1(program, &tex, dtype)
    }

    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let tex = self.view(a.data, a.shape)?;
        let out_dims: Vec<usize> = a
            .shape
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| !axes.contains(i))
            .map(|(_, &d)| d)
            .collect();
        let program = programs::reduce(op, a.shape.0.clone(), axes.to_vec(), out_dims);
        self.run1(program, &tex, op.out_dtype(a.dtype))
    }

    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let tex = self.view(a.data, a.shape)?;
        let out_dims: Vec<usize> = a
            .shape
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != axis)
            .map(|(_, &d)| d)
            .collect();
        let program = programs::arg_reduce(op, a.shape.0.clone(), axis, out_dims);
        self.run1(program, &tex, DType::I32)
    }

    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let ta = self.view(a.data, a.shape)?;
        let tb = self.view(b.data, b.shape)?;
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let program = programs::matmul(batch, m, k, n, transpose_a, transpose_b, self.packing());
        self.run_n(program, &[&ta, &tb], DType::F32)
    }

    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        self.run_n(programs::conv2d(info.clone(), self.packing()), &[&tx, &tw], DType::F32)
    }

    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tdy = self.view(dy.data, dy.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        self.run_n(programs::conv2d_backprop_input(info.clone()), &[&tdy, &tw], DType::F32)
    }

    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tdy = self.view(dy.data, dy.shape)?;
        self.run_n(programs::conv2d_backprop_filter(info.clone()), &[&tx, &tdy], DType::F32)
    }

    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        self.run_n(programs::depthwise_conv2d(info.clone()), &[&tx, &tw], DType::F32)
    }

    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tdy = self.view(dy.data, dy.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        self.run_n(programs::depthwise_conv2d_backprop_input(info.clone()), &[&tdy, &tw], DType::F32)
    }

    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tdy = self.view(dy.data, dy.shape)?;
        self.run_n(programs::depthwise_conv2d_backprop_filter(info.clone()), &[&tx, &tdy], DType::F32)
    }

    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        self.run1(programs::pool2d(op, info.clone()), &tx, x.dtype)
    }

    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tdy = self.view(dy.data, dy.shape)?;
        let tx = self.view(x.data, x.shape)?;
        self.run_n(programs::pool2d_backprop(op, info.clone()), &[&tdy, &tx], DType::F32)
    }

    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        self.run1(programs::slice(x.shape.rank(), begin.to_vec(), size.to_vec()), &tx, x.dtype)
    }

    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId> {
        let handles: Vec<TexHandle> = xs.iter().map(|t| self.view(t.data, t.shape)).collect::<Result<_>>()?;
        let refs: Vec<&TexHandle> = handles.iter().collect();
        let sizes: Vec<usize> = xs.iter().map(|t| t.shape.dim(axis)).collect();
        let mut out_dims = xs[0].shape.0.clone();
        out_dims[axis] = sizes.iter().sum();
        self.run_n(programs::concat(sizes, axis, out_dims), &refs, xs[0].dtype)
    }

    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let out_dims: Vec<usize> = perm.iter().map(|&p| x.shape.dim(p)).collect();
        self.run1(programs::transpose(perm.to_vec(), out_dims), &tx, x.dtype)
    }

    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let out_dims: Vec<usize> =
            x.shape.dims().iter().zip(paddings).map(|(&d, &(b, a))| d + b + a).collect();
        self.run1(programs::pad(x.shape.0.clone(), paddings.to_vec(), value, out_dims), &tx, x.dtype)
    }

    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let ti = self.view(indices.data, indices.shape)?;
        let n_indices = indices.shape.size();
        let mut out_dims = x.shape.0.clone();
        out_dims[axis] = n_indices;
        self.run_n(
            programs::gather(x.shape.0.clone(), axis, n_indices, out_dims),
            &[&tx, &ti],
            x.dtype,
        )
    }

    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let out_dims: Vec<usize> =
            x.shape.dims().iter().zip(reps).map(|(&d, &r)| d * r).collect();
        self.run1(programs::tile(x.shape.0.clone(), out_dims), &tx, x.dtype)
    }

    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        self.run1(programs::reverse(x.shape.0.clone(), axes.to_vec(), x.shape.0.clone()), &tx, x.dtype)
    }

    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId> {
        let tc = self.view(cond.data, cond.shape)?;
        let ta = self.view(a.data, a.shape)?;
        let tb = self.view(b.data, b.shape)?;
        self.run_n(
            programs::select(cond.shape.0.clone(), a.shape.0.clone(), b.shape.0.clone(), out_shape.0.clone()),
            &[&tc, &ta, &tb],
            a.dtype,
        )
    }

    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId> {
        let ti = self.view(indices.data, indices.shape)?;
        let mut out_dims = indices.shape.0.clone();
        out_dims.push(depth);
        self.run1(programs::one_hot(depth, on, off, out_dims), &ti, DType::F32)
    }

    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        self.run1(
            programs::resize_bilinear(x.shape.0.clone(), new_h, new_w, align_corners),
            &tx,
            DType::F32,
        )
    }

    // Fused kernels: one draw call each, epilogue applied in-register. When
    // the fused shader is rejected at compile time (an injected fault or a
    // driver quirk), fall back to the unfused composition on this same
    // backend instead of surfacing the error — fusion must never make the
    // degradation ladder worse than the unfused path.

    fn fused_matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let ta = self.view(a.data, a.shape)?;
        let tb = self.view(b.data, b.shape)?;
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let program = programs::fused_matmul(
            batch,
            m,
            k,
            n,
            transpose_a,
            transpose_b,
            self.packing(),
            bias.is_some(),
            activation,
        );
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&ta, &tb];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedMatMul");
                fused_matmul_fallback(self, a, b, bias, activation, transpose_a, transpose_b)
            }
            r => r,
        }
    }

    fn fused_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        let program =
            programs::fused_conv2d(info.clone(), self.packing(), bias.is_some(), activation);
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&tx, &tw];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedConv2D");
                fused_conv2d_fallback(self, x, filter, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        let program = programs::fused_depthwise_conv2d(info.clone(), bias.is_some(), activation);
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&tx, &tw];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedDepthwiseConv2D");
                fused_depthwise_conv2d_fallback(self, x, filter, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_matmul_quant(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        b_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        // The factored epilogue needs the scale constant over the inner
        // product: per-channel params must index the output-column axis.
        let col_axis = if transpose_b { 1 } else { 2 };
        if !webml_core::kernels::quant_axis_ok(b_params, col_axis, n) {
            note_fused_fallback("FusedMatMulQuant");
            return fused_matmul_quant_fallback(
                self, a, b, b_params, bias, activation, transpose_a, transpose_b,
            );
        }
        let ta = self.view(a.data, a.shape)?;
        let tb = self.view(b.data, b.shape)?;
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let program = programs::fused_matmul_quant(
            batch,
            m,
            k,
            n,
            b.shape.dim(0),
            transpose_a,
            transpose_b,
            b_params.clone(),
            bias.is_some(),
            activation,
        );
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&ta, &tb];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedMatMulQuant");
                fused_matmul_quant_fallback(
                    self, a, b, b_params, bias, activation, transpose_a, transpose_b,
                )
            }
            r => r,
        }
    }

    fn fused_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        if !webml_core::kernels::quant_axis_ok(filter_params, 3, info.out_channels) {
            note_fused_fallback("FusedConv2DQuant");
            return fused_conv2d_quant_fallback(self, x, filter, filter_params, bias, activation, info);
        }
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        let program = programs::fused_conv2d_quant(
            info.clone(),
            filter_params.clone(),
            bias.is_some(),
            activation,
        );
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&tx, &tw];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedConv2DQuant");
                fused_conv2d_quant_fallback(self, x, filter, filter_params, bias, activation, info)
            }
            r => r,
        }
    }

    fn fused_depthwise_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let axis_ok = webml_core::kernels::quant_axis_ok(filter_params, 2, info.in_channels)
            || webml_core::kernels::quant_axis_ok(filter_params, 3, info.channel_mul);
        if !axis_ok {
            note_fused_fallback("FusedDepthwiseConv2DQuant");
            return fused_depthwise_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let tx = self.view(x.data, x.shape)?;
        let tw = self.view(filter.data, filter.shape)?;
        let program = programs::fused_depthwise_conv2d_quant(
            info.clone(),
            filter_params.clone(),
            bias.is_some(),
            activation,
        );
        let tbias;
        let mut inputs: Vec<&TexHandle> = vec![&tx, &tw];
        if let Some(bias) = bias {
            tbias = self.view(bias.data, bias.shape)?;
            inputs.push(&tbias);
        }
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedDepthwiseConv2DQuant");
                fused_depthwise_conv2d_quant_fallback(
                    self, x, filter, filter_params, bias, activation, info,
                )
            }
            r => r,
        }
    }

    fn fused_elementwise(
        &self,
        x: &KTensor<'_>,
        extras: &[KTensor<'_>],
        steps: &[FusedStep],
        out_shape: &Shape,
    ) -> Result<DataId> {
        if steps.is_empty() {
            return Err(Error::invalid("FusedElementwise", "steps must be non-empty"));
        }
        let tx = self.view(x.data, x.shape)?;
        let textras: Vec<TexHandle> =
            extras.iter().map(|e| self.view(e.data, e.shape)).collect::<Result<_>>()?;
        let mut inputs: Vec<&TexHandle> = vec![&tx];
        inputs.extend(textras.iter());
        let mut in_dims = vec![x.shape.0.clone()];
        in_dims.extend(extras.iter().map(|e| e.shape.0.clone()));
        let program = programs::fused_elementwise(in_dims, steps.to_vec(), out_shape.0.clone());
        match self.run_n(program, &inputs, DType::F32) {
            Err(Error::KernelUnsupported { .. }) => {
                note_fused_fallback("FusedElementwise");
                fused_elementwise_fallback(self, x, extras, steps, out_shape)
            }
            r => r,
        }
    }
}

/// Record a fused-kernel shader rejection (telemetry instant + counter)
/// just before composing the unfused fallback. Rare by construction, so
/// the registry `OnceLock` resolution here is off any hot path.
fn note_fused_fallback(kernel: &'static str) {
    static FALLBACKS: std::sync::OnceLock<std::sync::Arc<webml_telemetry::Counter>> =
        std::sync::OnceLock::new();
    FALLBACKS.get_or_init(|| webml_telemetry::counter("webgl.fused_fallbacks_total")).inc();
    webml_telemetry::instant(kernel, "fused-fallback");
}

/// Convenience: a webgl backend on the integrated-GPU profile with default
/// config and paging estimated from a 1080p screen.
///
/// # Errors
/// Never in practice: the built-in profile supports float textures.
pub fn default_webgl_backend() -> Result<WebGlBackend> {
    let config = WebGlConfig { paging: PagingPolicy::from_screen(1920, 1080), ..Default::default() };
    WebGlBackend::new(DeviceProfile::intel_iris_pro(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::ops;
    use webml_core::Engine;

    fn engine() -> Engine {
        let e = Engine::new();
        let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()).unwrap();
        e.register_backend("webgl", Arc::new(backend), 2);
        e
    }

    #[test]
    fn matmul_on_webgl() {
        let e = engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = ops::matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn async_data_resolves() {
        let e = engine();
        let a = e.tensor_1d(&[2.0, 3.0]).unwrap();
        let y = ops::square(&a).unwrap();
        let fut = y.data().unwrap();
        assert_eq!(fut.wait().unwrap().to_f32_vec(), vec![4.0, 9.0]);
    }

    #[test]
    fn ops_return_before_device_finishes() {
        let e = engine();
        let a = e.rand_uniform([128, 128], -1.0, 1.0, 1).unwrap();
        let t0 = std::time::Instant::now();
        let mut y = ops::matmul(&a, &a, false, false).unwrap();
        for _ in 0..5 {
            y = ops::matmul(&y, &a, false, false).unwrap();
        }
        let enqueue_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Six chained 128x128 matmuls enqueue quickly; the Listing-2 style
        // per-output dot products take much longer to actually run.
        assert!(enqueue_ms < 100.0, "enqueue took {enqueue_ms} ms");
        let vals = y.to_f32_vec().unwrap();
        assert_eq!(vals.len(), 128 * 128);
    }

    #[test]
    fn gradients_run_on_webgl() {
        let e = engine();
        let x = e.tensor_1d(&[3.0]).unwrap();
        let g = e.grad(&x, || ops::sum(&ops::square(&x)?, None, false)).unwrap();
        assert_eq!(g.to_f32_vec().unwrap(), vec![6.0]);
    }

    #[test]
    fn f16_device_underflows_small_epsilon() {
        let e = Engine::new();
        let backend =
            WebGlBackend::new(DeviceProfile::ios_safari(), WebGlConfig::default()).unwrap();
        e.register_backend("webgl", Arc::new(backend), 2);
        // The paper's bug: log(x + eps) with the f32 default eps = 1e-8
        // becomes log(x + 0) on a 16-bit device because 1e-8 rounds to 0...
        let x = e.tensor_1d(&[0.0]).unwrap();
        let tiny = e.scalar(1e-8).unwrap();
        let y = ops::log(&ops::add(&x, &tiny).unwrap()).unwrap();
        assert!(y.to_f32_vec().unwrap()[0].is_infinite(), "log(0 + 1e-8) must collapse to log(0)");
        // ...and the per-device adjusted epsilon (1e-4) survives.
        assert_eq!(e.epsilon(), 1e-4);
        let eps = e.scalar(e.epsilon()).unwrap();
        let z = ops::log(&ops::add(&x, &eps).unwrap()).unwrap();
        assert!(z.to_f32_vec().unwrap()[0].is_finite());
    }

    #[test]
    fn quantized_matmul_on_webgl() {
        let e = engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let w = e
            .quantized_tensor(
                vec![5, 6, 7, 8],
                vec![2, 2],
                webml_core::quant::QuantParams::per_tensor(1.0, 0.0),
            )
            .unwrap();
        let c = ops::fused_matmul_quant(&a, &w, None, None, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn quantized_fused_ops_match_cpu_reference() {
        let cpu = Engine::new();
        cpu.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
        let gl = engine();
        let n_w = 3 * 3 * 3 * 4;
        let codes: Vec<u8> = (0..n_w).map(|i| ((i * 37) % 256) as u8).collect();
        let scales: Vec<f32> = (0..4).map(|c| 0.01 + c as f32 * 0.003).collect();
        let mins: Vec<f32> = (0..4).map(|c| -1.2 + c as f32 * 0.1).collect();
        let xvals: Vec<f32> = (0..8 * 8 * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let bvals = [0.05f32, -0.1, 0.2, 0.0];
        let run = |e: &Engine| -> Vec<f32> {
            let x = e.tensor_4d(&xvals, 1, 8, 8, 3).unwrap();
            let w = e
                .quantized_tensor(
                    codes.clone(),
                    vec![3, 3, 3, 4],
                    webml_core::quant::QuantParams::per_channel(3, scales.clone(), mins.clone()),
                )
                .unwrap();
            let bias = e.tensor_1d(&bvals).unwrap();
            let y = ops::fused_conv2d_quant(
                &x,
                &w,
                Some(&bias),
                Some(UnaryOp::Relu),
                (2, 2),
                webml_core::conv_util::Padding::Same,
                (1, 1),
            )
            .unwrap();
            y.to_f32_vec().unwrap()
        };
        let want = run(&cpu);
        let got = run(&gl);
        assert_eq!(want.len(), got.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "webgl {g} vs cpu {w}");
        }
    }

    #[test]
    fn quantized_depthwise_matches_cpu_reference() {
        let cpu = Engine::new();
        cpu.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
        let gl = engine();
        let codes: Vec<u8> = (0..3 * 3 * 3 * 2).map(|i| ((i * 91) % 256) as u8).collect();
        let xvals: Vec<f32> = (0..6 * 6 * 3).map(|i| (i as f32 * 0.23).cos()).collect();
        let run = |e: &Engine| -> Vec<f32> {
            let x = e.tensor_4d(&xvals, 1, 6, 6, 3).unwrap();
            let w = e
                .quantized_tensor(
                    codes.clone(),
                    vec![3, 3, 3, 2],
                    webml_core::quant::QuantParams::per_channel(
                        2,
                        vec![0.02, 0.015, 0.03],
                        vec![-2.0, -1.5, -2.5],
                    ),
                )
                .unwrap();
            let y = ops::fused_depthwise_conv2d_quant(
                &x,
                &w,
                None,
                Some(UnaryOp::Relu),
                (1, 1),
                webml_core::conv_util::Padding::Same,
                (1, 1),
            )
            .unwrap();
            y.to_f32_vec().unwrap()
        };
        let want = run(&cpu);
        let got = run(&gl);
        assert_eq!(want.len(), got.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "webgl {g} vs cpu {w}");
        }
    }

    #[test]
    fn quantized_weights_hold_one_byte_per_code_on_device() {
        let byte_count = |dtype: DType, data: TensorData| -> usize {
            let b =
                WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()).unwrap();
            let id = b.register(data, dtype);
            b.read_sync(id).unwrap(); // flush the upload through the queue
            b.context().memory().bytes_in_gpu
        };
        let q = byte_count(DType::U8, TensorData::U8(vec![7u8; 1024]));
        let f = byte_count(DType::F32, TensorData::F32(vec![7.0f32; 1024]));
        assert!(q * 3 <= f, "quantized residency {q} B should be ~4x below f32 {f} B");
    }

    #[test]
    fn quantized_codes_survive_round_trip() {
        let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default()).unwrap();
        let codes: Vec<u8> = (0..=255).collect();
        let id = b.register(TensorData::U8(codes.clone()), DType::U8);
        match b.read_sync(id).unwrap() {
            TensorData::U8(v) => assert_eq!(v, codes),
            other => panic!("expected U8 readback, got {other:?}"),
        }
    }

    #[test]
    fn quantized_weights_rebuild_after_seeded_context_loss() {
        use webml_core::quant::QuantParams;
        use webml_core::Shape;
        let b = WebGlBackend::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGlConfig::default(),
            FaultPlan { seed: 42, ..FaultPlan::none() }.lose_context_at(2),
        )
        .unwrap();
        let a_shape = Shape::new(vec![1, 2, 2]);
        let w_shape = Shape::new(vec![1, 2, 2]);
        let a_id = b.register(TensorData::F32(vec![1.0, 2.0, 3.0, 4.0]), DType::F32);
        let w_id = b.register(TensorData::U8(vec![5, 6, 7, 8]), DType::U8);
        let a = KTensor { data: a_id, shape: &a_shape, dtype: DType::F32 };
        let w = KTensor { data: w_id, shape: &w_shape, dtype: DType::U8 };
        let params = QuantParams::per_tensor(1.0, 0.0);
        let first = b.fused_matmul_quant(&a, &w, &params, None, None, false, false).unwrap();
        let expect = b.read_sync(first).unwrap().to_f32_vec();
        assert_eq!(expect, vec![19.0, 22.0, 43.0, 50.0]);
        // The second draw hits the injected context loss.
        assert!(
            b.fused_matmul_quant(&a, &w, &params, None, None, false, false).is_err(),
            "draw 2 must observe the lost context"
        );
        assert!(b.recover_context(), "context restores");
        // The weight pages back into an R8 texture from its shadow: the
        // rebuilt kernel result and the raw codes are both intact.
        let again = b.fused_matmul_quant(&a, &w, &params, None, None, false, false).unwrap();
        assert_eq!(b.read_sync(again).unwrap().to_f32_vec(), expect);
        match b.read_sync(w_id).unwrap() {
            TensorData::U8(v) => assert_eq!(v, vec![5, 6, 7, 8]),
            other => panic!("expected U8 codes after recovery, got {other:?}"),
        }
    }

    #[test]
    fn conv_and_pool_match_cpu_reference() {
        let cpu = Engine::new();
        cpu.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
        let gl = engine();
        let vals: Vec<f32> = (0..8 * 8 * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let wvals: Vec<f32> = (0..3 * 3 * 3 * 4).map(|i| (i as f32 * 0.19).cos()).collect();
        let run = |e: &Engine| -> Vec<f32> {
            let x = e.tensor_4d(&vals, 1, 8, 8, 3).unwrap();
            let w = e.tensor_4d(&wvals, 3, 3, 3, 4).unwrap();
            let y = ops::conv2d(&x, &w, (2, 2), webml_core::conv_util::Padding::Same, (1, 1)).unwrap();
            let p = ops::max_pool(&y, (2, 2), (2, 2), webml_core::conv_util::Padding::Valid).unwrap();
            p.to_f32_vec().unwrap()
        };
        let want = run(&cpu);
        let got = run(&gl);
        assert_eq!(want.len(), got.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }
    }
}
