//! Flight recorder: a fixed-size global ring of recent request timelines
//! and engine state transitions, snapshotted automatically when something
//! goes wrong.
//!
//! The ring records continuously and cheaply (one short mutex push per
//! entry, bounded memory). When a trigger fires — a circuit breaker trips,
//! a request is shed, a degradation generation bumps — [`notify`] captures
//! a **snapshot**: the trigger's reason, a caller-supplied context value
//! (fleet stats, engine memory, breaker states), and the last-N entries of
//! the ring. Snapshots are JSON-exportable ([`snapshots_json`],
//! [`write_snapshots`]) for postmortems.
//!
//! Trigger *counting* is exact (every call to [`notify`] bumps the per-kind
//! counter, which CI gates on); snapshot *capture* is rate-limited per
//! kind so a shed storm produces one snapshot per window instead of
//! thousands — the first trigger of a kind always captures.

use crate::attribution::{timeline_json, RequestTimeline};
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// Ring capacity: how many recent entries a snapshot can look back on.
pub const FLIGHT_CAPACITY: usize = 1024;

/// How many snapshots are retained (oldest evicted first).
pub const MAX_SNAPSHOTS: usize = 32;

/// Minimum gap between captured snapshots of the same kind (ns). Triggers
/// inside the gap are still counted, just not snapshotted.
pub const SNAPSHOT_GAP_NS: u64 = 50_000_000;

/// One flight-ring entry: a finished request timeline or a state
/// transition.
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// When it was recorded ([`crate::now_ns`]).
    pub at_ns: u64,
    /// Entry kind: `"request"` for timelines, else the transition kind
    /// (`"engine.degrade"`, `"breaker.trip"`, ...).
    pub kind: &'static str,
    /// Trace id when the entry belongs to a request (0 otherwise).
    pub trace_id: u64,
    /// Human-readable detail for transitions (empty for requests).
    pub detail: String,
    /// The request timeline, for `"request"` entries.
    pub timeline: Option<RequestTimeline>,
}

/// A captured snapshot: trigger reason + context + recent ring entries.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Capture time.
    pub at_ns: u64,
    /// Trigger kind (`"shed"`, `"breaker_trip"`, `"degradation"`, ...).
    pub kind: &'static str,
    /// Trigger detail string.
    pub reason: String,
    /// Caller-supplied context (fleet stats, engine memory, breakers).
    pub context: Value,
    /// The flight ring at capture time, oldest first.
    pub entries: Vec<FlightEntry>,
}

#[derive(Default)]
struct FlightState {
    ring: VecDeque<FlightEntry>,
    snapshots: VecDeque<Snapshot>,
    trigger_counts: HashMap<&'static str, u64>,
    last_capture_ns: HashMap<&'static str, u64>,
}

fn state() -> &'static Mutex<FlightState> {
    static STATE: OnceLock<Mutex<FlightState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(FlightState::default()))
}

fn push_entry(st: &mut FlightState, entry: FlightEntry) {
    if st.ring.len() == FLIGHT_CAPACITY {
        st.ring.pop_front();
    }
    st.ring.push_back(entry);
}

/// Record a finished request timeline into the flight ring.
pub fn record_timeline(tl: &RequestTimeline) {
    let mut st = state().lock();
    push_entry(
        &mut st,
        FlightEntry {
            at_ns: crate::now_ns(),
            kind: "request",
            trace_id: tl.trace_id,
            detail: String::new(),
            timeline: Some(*tl),
        },
    );
}

/// Record a state transition (engine degradation, breaker state change,
/// backend promotion, ...) into the flight ring.
pub fn transition(kind: &'static str, detail: String) {
    let mut st = state().lock();
    push_entry(
        &mut st,
        FlightEntry { at_ns: crate::now_ns(), kind, trace_id: 0, detail, timeline: None },
    );
}

/// Fire a trigger: bump the exact per-kind counter and — unless inside the
/// per-kind rate-limit window — capture a snapshot whose context is built
/// lazily by `context` (only evaluated when a snapshot is actually taken,
/// so shed storms don't pay for fleet-state serialization per shed).
pub fn notify(kind: &'static str, detail: String, context: impl FnOnce() -> Value) {
    let now = crate::now_ns();
    let entries = {
        let mut st = state().lock();
        *st.trigger_counts.entry(kind).or_insert(0) += 1;
        let capture = match st.last_capture_ns.get(kind) {
            Some(&last) => now.saturating_sub(last) >= SNAPSHOT_GAP_NS,
            None => true,
        };
        // The trigger is part of the record even when rate-limited out of
        // its own snapshot (later snapshots will show it in the ring).
        push_entry(
            &mut st,
            FlightEntry { at_ns: now, kind, trace_id: 0, detail: detail.clone(), timeline: None },
        );
        if !capture {
            return;
        }
        st.last_capture_ns.insert(kind, now);
        st.ring.iter().cloned().collect::<Vec<FlightEntry>>()
    };
    // Build the context with the flight lock released, so closures are
    // free to read fleet/engine state that itself records transitions.
    let snapshot = Snapshot { at_ns: now, kind, reason: detail, context: context(), entries };
    let mut st = state().lock();
    if st.snapshots.len() == MAX_SNAPSHOTS {
        st.snapshots.pop_front();
    }
    st.snapshots.push_back(snapshot);
}

/// Exact number of [`notify`] calls for `kind` since process start (or the
/// last [`reset_flight`]).
pub fn trigger_count(kind: &str) -> u64 {
    state().lock().trigger_counts.get(kind).copied().unwrap_or(0)
}

/// Number of snapshots currently retained.
pub fn snapshot_count() -> usize {
    state().lock().snapshots.len()
}

/// Clone the retained snapshots (oldest first).
pub fn snapshots() -> Vec<Snapshot> {
    state().lock().snapshots.iter().cloned().collect()
}

fn entry_json(e: &FlightEntry) -> Value {
    let timeline = match &e.timeline {
        Some(tl) => timeline_json(tl),
        None => Value::Null,
    };
    json!({
        "at_ns": e.at_ns,
        "kind": e.kind,
        "trace_id": e.trace_id,
        "detail": e.detail.clone(),
        "timeline": timeline,
    })
}

fn snapshot_json(s: &Snapshot) -> Value {
    let entries: Vec<Value> = s.entries.iter().map(entry_json).collect();
    json!({
        "at_ns": s.at_ns,
        "kind": s.kind,
        "reason": s.reason.clone(),
        "context": s.context.clone(),
        "entries": Value::Array(entries),
    })
}

/// All retained snapshots plus the per-kind trigger counters, as JSON.
pub fn snapshots_json() -> Value {
    let st = state().lock();
    let snapshots: Vec<Value> = st.snapshots.iter().map(snapshot_json).collect();
    let mut kinds: Vec<&&str> = st.trigger_counts.keys().collect();
    kinds.sort_unstable();
    let triggers: Vec<Value> = kinds
        .iter()
        .map(|k| json!({ "kind": **k, "count": st.trigger_counts[**k] }))
        .collect();
    json!({
        "triggers": Value::Array(triggers),
        "snapshot_count": st.snapshots.len(),
        "snapshots": Value::Array(snapshots),
    })
}

/// Write [`snapshots_json`] (pretty-printed) to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_snapshots(path: &str) -> std::io::Result<()> {
    let json = snapshots_json();
    std::fs::write(path, serde_json::to_string_pretty(&json).unwrap_or_default())
}

/// Drop all flight-recorder state (ring, snapshots, counters).
pub fn reset_flight() {
    let mut st = state().lock();
    st.ring.clear();
    st.snapshots.clear();
    st.trigger_counts.clear();
    st.last_capture_ns.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::RequestOutcome;

    #[test]
    fn ring_is_bounded_and_snapshot_sees_recent_requests() {
        let _g = crate::test_lock();
        reset_flight();
        for i in 0..(FLIGHT_CAPACITY + 10) as u64 {
            let mut tl = RequestTimeline::new(i + 1, 0, 0xf11);
            tl.outcome = RequestOutcome::Completed;
            record_timeline(&tl);
        }
        assert_eq!(state().lock().ring.len(), FLIGHT_CAPACITY, "ring stays bounded");
        transition("engine.degrade", "webgl -> cpu".to_owned());
        notify("breaker_trip", "engine-0 tripped".to_owned(), || json!({ "queue_depth": 7 }));
        assert_eq!(trigger_count("breaker_trip"), 1);
        assert_eq!(snapshot_count(), 1);
        let snaps = snapshots();
        let snap = &snaps[0];
        assert_eq!(snap.kind, "breaker_trip");
        assert_eq!(snap.context.get("queue_depth").and_then(Value::as_u64), Some(7));
        assert!(snap.entries.iter().any(|e| e.kind == "engine.degrade"));
        assert!(snap.entries.iter().any(|e| e.kind == "request" && e.trace_id > 0));
        let json = snapshots_json();
        assert_eq!(json.get("snapshot_count").and_then(Value::as_u64), Some(1));
        let rendered = serde_json::to_string(&json).unwrap();
        assert!(rendered.contains("breaker_trip"));
        reset_flight();
    }

    #[test]
    fn triggers_count_exactly_even_when_rate_limited() {
        let _g = crate::test_lock();
        reset_flight();
        for i in 0..100 {
            notify("shed", format!("shed {i}"), || json!({}));
        }
        assert_eq!(trigger_count("shed"), 100, "every trigger counted");
        let captured = snapshot_count();
        assert!(captured >= 1, "first trigger always snapshots");
        assert!(captured < 100, "storm is rate-limited, got {captured}");
        // A different kind is not blocked by shed's window.
        notify("degradation", "gen bump".to_owned(), || json!({}));
        assert_eq!(trigger_count("degradation"), 1);
        assert!(snapshots().iter().any(|s| s.kind == "degradation"));
        reset_flight();
    }
}
