//! # webml-telemetry
//!
//! Low-overhead observability for the WebML stack: tracing spans and
//! instant events collected into per-thread lock-free ring buffers,
//! a metrics registry (counters, gauges, log-bucketed histograms), and
//! Chrome trace-event JSON export loadable in `chrome://tracing` or
//! Perfetto.
//!
//! ## Design constraints
//!
//! The kernel hot path (`Engine::run_kernel`, the webgl-sim device loop)
//! must not take a shared lock per event. The crate therefore keeps:
//!
//! - a global **enabled flag** ([`enabled`]) — when tracing is off, every
//!   recording call is a single relaxed atomic load and an early return;
//! - one **SPSC ring buffer per thread** ([`ring::EventRing`]), pushed
//!   only by its owner thread and drained by whoever exports the trace.
//!   On overflow events are dropped and counted ([`dropped_events`]),
//!   never blocked on;
//! - a **metrics registry** ([`metrics`]) of plain atomics, safe to hammer
//!   from any thread whether or not tracing is enabled.
//!
//! Timestamps are nanoseconds since a process-wide epoch ([`now_ns`]), so
//! events from different threads land on one consistent timeline.
//!
//! ## Example
//!
//! ```
//! webml_telemetry::set_enabled(true);
//! {
//!     let _span = webml_telemetry::span("demo.work", "example");
//!     webml_telemetry::instant("demo.marker", "example");
//! }
//! webml_telemetry::set_enabled(false);
//! let json = webml_telemetry::chrome_trace_json();
//! assert!(json.contains("demo.work"));
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod flight;
pub mod metrics;
pub mod ring;
pub mod trace;

pub use attribution::{
    attribution_report, record_request, AttributionReport, ModelAttributionReport, PhaseStamps,
    RequestOutcome, RequestTimeline, PHASE_NAMES,
};
pub use metrics::{
    counter, counter_labeled, fgauge, gauge, histogram, histogram_labeled, prometheus_text,
    Counter, FGauge, Gauge, Histogram, HistogramSummary,
};
pub use trace::{chrome_trace_json, write_chrome_trace};

use parking_lot::Mutex;
use ring::EventRing;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which trace track an event is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// The recording thread's own track.
    Thread,
    /// The virtual "GPU" track (simulated-device work reported by the
    /// webgl-sim device thread).
    Gpu,
}

/// Event shape: a duration span or a point-in-time marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Complete span (`ph: "X"` in the Chrome trace format).
    Span,
    /// Instant event (`ph: "i"`).
    Instant,
}

/// One recorded trace event. `Copy` so ring-buffer slots need no drop
/// handling; string fields are `&'static str` to keep recording
/// allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event name (kernel name, `"serve.batch"`, ...).
    pub name: &'static str,
    /// Category, used for filtering in trace viewers (`"kernel"`,
    /// `"serve"`, `"gpu"`, `"texture-pool"`, ...).
    pub cat: &'static str,
    /// Track attribution.
    pub track: Track,
    /// Span or instant.
    pub phase: Phase,
    /// Start timestamp, ns since the process trace epoch.
    pub start_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// Recording thread id (stable small integer assigned at first use).
    pub tid: u64,
    /// Optional argument name (`""` when absent).
    pub arg_name: &'static str,
    /// Optional argument value.
    pub arg: f64,
    /// Request-scoped trace id joining events across threads (0 = none).
    /// Attached automatically from the calling thread's active
    /// [`trace_scope`]; the Chrome exporter emits it as a `trace_id` arg.
    pub trace_id: u64,
}

/// Request-scoped tracing context: a process-unique trace id plus the id
/// of the span context it was minted under (0 for a root request). Minted
/// by the serving front doors and propagated — via [`trace_scope`] thread
/// scopes and explicit plumbing into the device queue — through router
/// queues, micro-batches, kernel dispatch, and simulated-GPU spans, so one
/// id joins a request's fragments across every thread it touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestCtx {
    /// Process-unique trace id (never 0).
    pub trace_id: u64,
    /// Trace id of the parent span context (0 = root).
    pub parent_span: u64,
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl RequestCtx {
    /// Mint a fresh root context (parent 0).
    pub fn mint() -> RequestCtx {
        RequestCtx { trace_id: next_trace_id(), parent_span: 0 }
    }

    /// Mint a child context whose `parent_span` is this context's id
    /// (e.g. a batch context minted under a dispatch context).
    pub fn child(&self) -> RequestCtx {
        RequestCtx { trace_id: next_trace_id(), parent_span: self.trace_id }
    }
}

/// Mint a process-unique trace id (a monotone counter starting at 1, so 0
/// stays the "untraced" sentinel).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's active trace id (0 when no [`trace_scope`] is
/// open). Recording functions attach it to every event; cross-thread
/// propagation (the device queue) captures it at enqueue time.
#[inline]
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard restoring the previously active trace id on drop.
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Make `trace_id` the calling thread's active trace id until the returned
/// guard drops. Scopes nest (the guard restores the outer id). Costs two
/// thread-local cell accesses — cheap enough to hold across a request's
/// whole execution whether or not tracing is enabled.
#[inline]
pub fn trace_scope(trace_id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(trace_id));
    TraceScope { prev }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether trace collection is on. One relaxed load — this is the fast
/// path guard every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn trace collection on or off. Metrics are always on; this gates
/// only span/event recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (the first call in the
/// process). Monotonic and shared across threads.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct ThreadEntry {
    ring: Arc<EventRing>,
    tid: u64,
    name: String,
}

fn registry() -> &'static Mutex<Vec<ThreadEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<ThreadEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: OnceLock<(Arc<EventRing>, u64)> = const { OnceLock::new() };
    static LOCAL_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn local_ring<R>(f: impl FnOnce(&EventRing, u64) -> R) -> R {
    LOCAL.with(|cell| {
        let (ring, tid) = cell.get_or_init(|| {
            let ring = Arc::new(EventRing::new());
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            registry().lock().push(ThreadEntry { ring: ring.clone(), tid, name });
            (ring, tid)
        });
        f(ring, *tid)
    })
}

/// A stable, small, per-thread index (0, 1, 2, ...) assigned in first-use
/// order. Useful for lock-striping per-thread state outside this crate
/// (the engine's profile collector shards on it).
#[inline]
pub fn thread_index() -> usize {
    let cached = LOCAL_IDX.with(Cell::get);
    if cached != usize::MAX {
        return cached;
    }
    let idx = local_ring(|_, tid| tid as usize);
    LOCAL_IDX.with(|c| c.set(idx));
    idx
}

#[inline]
fn push(ev: Event) {
    local_ring(|ring, tid| ring.push(Event { tid, ..ev }));
}

/// Record a completed span from explicit timestamps (both from
/// [`now_ns`]). No-op when tracing is disabled.
#[inline]
pub fn record_span(name: &'static str, cat: &'static str, start_ns: u64, end_ns: u64) {
    record_span_arg(name, cat, start_ns, end_ns, "", 0.0);
}

/// [`record_span`] with one named numeric argument attached (shown in the
/// trace viewer's args pane).
#[inline]
pub fn record_span_arg(
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
    arg_name: &'static str,
    arg: f64,
) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        cat,
        track: Track::Thread,
        phase: Phase::Span,
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        tid: 0,
        arg_name,
        arg,
        trace_id: current_trace_id(),
    });
}

/// Record an instant (point-in-time) event on the calling thread's track.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    instant_arg(name, cat, "", 0.0);
}

/// [`instant`] with one named numeric argument.
#[inline]
pub fn instant_arg(name: &'static str, cat: &'static str, arg_name: &'static str, arg: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        cat,
        track: Track::Thread,
        phase: Phase::Instant,
        start_ns: now_ns(),
        dur_ns: 0,
        tid: 0,
        arg_name,
        arg,
        trace_id: current_trace_id(),
    });
}

/// Record a span attributed to the virtual GPU track (used by the
/// simulated device thread for shader executions). `arg` typically
/// carries the modeled device-time in ns.
#[inline]
pub fn gpu_span(
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    arg_name: &'static str,
    arg: f64,
) {
    gpu_span_traced(name, start_ns, end_ns, arg_name, arg, current_trace_id());
}

/// [`gpu_span`] with an explicit trace id. The device thread runs commands
/// asynchronously, long after the submitting thread's [`trace_scope`] has
/// moved on — so the submitter's id is captured into the command at
/// enqueue time and passed here when the span is finally recorded.
#[inline]
pub fn gpu_span_traced(
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    arg_name: &'static str,
    arg: f64,
    trace_id: u64,
) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        cat: "gpu",
        track: Track::Gpu,
        phase: Phase::Span,
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        tid: 0,
        arg_name,
        arg,
        trace_id,
    });
}

/// Record an instant event on the virtual GPU track (e.g. the device
/// thread's per-window utilization samples).
#[inline]
pub fn gpu_instant(name: &'static str, arg_name: &'static str, arg: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        cat: "gpu",
        track: Track::Gpu,
        phase: Phase::Instant,
        start_ns: now_ns(),
        dur_ns: 0,
        tid: 0,
        arg_name,
        arg,
        trace_id: current_trace_id(),
    });
}

/// RAII span: records `name` from construction to drop. Captures the
/// enabled flag at construction so a span started while tracing is on is
/// recorded even if tracing flips off mid-span.
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    armed: bool,
    arg_name: &'static str,
    arg: f64,
    trace_id: u64,
}

impl SpanGuard {
    /// Attach a named numeric argument to the span.
    pub fn with_arg(mut self, arg_name: &'static str, arg: f64) -> SpanGuard {
        self.arg_name = arg_name;
        self.arg = arg;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            push(Event {
                name: self.name,
                cat: self.cat,
                track: Track::Thread,
                phase: Phase::Span,
                start_ns: self.start_ns,
                dur_ns: now_ns().saturating_sub(self.start_ns),
                tid: 0,
                arg_name: self.arg_name,
                arg: self.arg,
                trace_id: self.trace_id,
            });
        }
    }
}

/// Open an RAII span on the calling thread's track. When tracing is
/// disabled this costs one atomic load and records nothing on drop.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    let armed = enabled();
    SpanGuard {
        name,
        cat,
        start_ns: if armed { now_ns() } else { 0 },
        armed,
        arg_name: "",
        arg: 0.0,
        trace_id: if armed { current_trace_id() } else { 0 },
    }
}

/// Drain all per-thread rings into one list (consuming the buffered
/// events). Called by the trace exporter; also usable directly in tests.
pub fn drain() -> Vec<Event> {
    let registry = registry().lock();
    let mut out = Vec::new();
    for entry in registry.iter() {
        entry.ring.drain_into(&mut out);
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// Discard all buffered events (e.g. between benchmark cells).
pub fn clear() {
    drop(drain());
}

/// Total events dropped across all threads because a ring was full.
pub fn dropped_events() -> u64 {
    registry().lock().iter().map(|e| e.ring.dropped()).sum()
}

/// `(tid, thread name)` for every thread that has recorded at least one
/// event or called [`thread_index`].
pub fn thread_names() -> Vec<(u64, String)> {
    registry().lock().iter().map(|e| (e.tid, e.name.clone())).collect()
}

/// The enabled flag and thread rings are process-global; unit tests that
/// touch them must not interleave.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _g = test_lock();
        set_enabled(false);
        clear();
        instant("off.instant", "test");
        let _s = span("off.span", "test");
        drop(_s);
        assert!(drain().iter().all(|e| e.cat != "test" || !e.name.starts_with("off.")));
    }

    #[test]
    fn span_and_instant_roundtrip() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        {
            let _s = span("rt.span", "test").with_arg("n", 3.0);
            instant("rt.instant", "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        let events = drain();
        let sp = events.iter().find(|e| e.name == "rt.span").expect("span recorded");
        assert_eq!(sp.phase, Phase::Span);
        assert!(sp.dur_ns >= 1_000_000, "span covered the sleep");
        assert_eq!(sp.arg_name, "n");
        let inst = events.iter().find(|e| e.name == "rt.instant").expect("instant recorded");
        assert_eq!(inst.phase, Phase::Instant);
        assert_eq!(inst.tid, sp.tid, "same thread, same track");
        assert!(inst.start_ns >= sp.start_ns && inst.start_ns <= sp.start_ns + sp.dur_ns);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    instant_arg("tid.probe", "test", "i", i as f64);
                    thread_index()
                })
            })
            .collect();
        let mut indices: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        set_enabled(false);
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 4, "each thread has a distinct index");
        let events = drain();
        let mut tids: Vec<u64> =
            events.iter().filter(|e| e.name == "tid.probe").map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread records on its own track");
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        let _g = test_lock();
        assert_eq!(current_trace_id(), 0);
        let outer = RequestCtx::mint();
        let inner = outer.child();
        assert_ne!(outer.trace_id, inner.trace_id);
        assert_eq!(inner.parent_span, outer.trace_id);
        {
            let _outer = trace_scope(outer.trace_id);
            assert_eq!(current_trace_id(), outer.trace_id);
            {
                let _inner = trace_scope(inner.trace_id);
                assert_eq!(current_trace_id(), inner.trace_id);
            }
            assert_eq!(current_trace_id(), outer.trace_id);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn events_carry_the_active_trace_id() {
        let _g = test_lock();
        clear();
        set_enabled(true);
        let ctx = RequestCtx::mint();
        let events = {
            let _scope = trace_scope(ctx.trace_id);
            instant("tid.tagged", "test");
            let _s = span("tid.tagged_span", "test");
            drop(_s);
            // A guard opened inside the scope keeps its id even when the
            // scope closes before the guard drops.
            let escaping = span("tid.escaping_span", "test");
            drop(_scope);
            instant("tid.untagged", "test");
            drop(escaping);
            set_enabled(false);
            drain()
        };
        let find = |n: &str| events.iter().find(|e| e.name == n).expect("event recorded");
        assert_eq!(find("tid.tagged").trace_id, ctx.trace_id);
        assert_eq!(find("tid.tagged_span").trace_id, ctx.trace_id);
        assert_eq!(find("tid.escaping_span").trace_id, ctx.trace_id);
        assert_eq!(find("tid.untagged").trace_id, 0);
    }

    #[test]
    fn eight_thread_churn_accounts_every_overflow() {
        let _g = test_lock();
        clear();
        let dropped_before = dropped_events();
        set_enabled(true);
        const EXTRA: usize = 37;
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    // Overfill this thread's ring by exactly EXTRA without
                    // draining, so the drop counter must grow by EXTRA.
                    for i in 0..ring::RING_CAPACITY + EXTRA {
                        instant_arg("churn.ev", "test", "seq", (t * 1_000_000 + i) as f64);
                    }
                    thread_index()
                })
            })
            .collect();
        let indices: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        set_enabled(false);
        let dropped_after = dropped_events();
        assert_eq!(
            dropped_after - dropped_before,
            (8 * EXTRA) as u64,
            "drop accounting is exact under churn"
        );
        let events = drain();
        for &idx in &indices {
            let tid = idx as u64;
            let mine: Vec<&Event> =
                events.iter().filter(|e| e.name == "churn.ev" && e.tid == tid).collect();
            assert_eq!(mine.len(), ring::RING_CAPACITY, "ring kept exactly its capacity");
            // Drop-newest policy: the survivors are the first RING_CAPACITY
            // pushes, in order, with args intact (no torn slots).
            for (j, ev) in mine.iter().enumerate() {
                let seq = ev.arg as usize % 1_000_000;
                assert_eq!(seq, j, "complete in-order events after overflow");
                assert_eq!(ev.arg_name, "seq");
            }
        }
    }
}
