//! Tail-latency attribution: per-request phase timelines aggregated into
//! per-model, per-phase histograms.
//!
//! The serving layers stamp seven wall-clock timestamps on every request
//! as it moves through the system (submit → admission → queue drain →
//! batch formation → upload → compute → readback/reply). A finished
//! [`RequestTimeline`] is fed to [`record_request`], which folds the six
//! phase durations into per-model histograms and mirrors them into the
//! metrics registry as `webml_attr_phase_ms{model=...,phase=...}`.
//! [`attribution_report`] then answers the question tracing alone cannot:
//! *which phase dominates this model's p99?*
//!
//! Recording is a handful of relaxed atomics under one short mutex — cheap
//! enough to stay on by default. [`set_attribution_enabled`] exists so the
//! overhead benchmark can measure a true zero-instrumentation baseline.

use crate::metrics::{histogram_labeled, Histogram, HistogramSummary};
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The six attributed phases, in timeline order. Durations are the
/// differences of consecutive timeline timestamps.
pub const PHASE_NAMES: [&str; 6] =
    ["admission", "queue", "batch_form", "upload", "compute", "readback"];

/// Terminal outcome of a request, mirroring the serving error taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Answered successfully.
    Completed,
    /// Refused by admission control / load shedding (never executed).
    Shed,
    /// Deadline expired before completion.
    DeadlineExceeded,
    /// Rejected as invalid (bad shape, unknown model, ...).
    Rejected,
    /// Failed with a caller-visible engine error.
    Error,
}

impl RequestOutcome {
    /// Stable lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Shed => "shed",
            RequestOutcome::DeadlineExceeded => "deadline_exceeded",
            RequestOutcome::Rejected => "rejected",
            RequestOutcome::Error => "error",
        }
    }
}

/// Execution-phase timestamps stamped by a batch (or single-request)
/// executor and copied onto every member's [`RequestTimeline`]. All values
/// are [`crate::now_ns`] clocks; 0 means "never reached".
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStamps {
    /// Execution began (inputs about to be concatenated/uploaded).
    pub exec_start_ns: u64,
    /// Host→device upload finished (input tensors created).
    pub upload_end_ns: u64,
    /// Device compute finished (forward pass / fence passed).
    pub compute_end_ns: u64,
    /// Device→host readback finished (outputs split and ready).
    pub readback_end_ns: u64,
}

/// One request's phase timeline, keyed by its trace id. Built up by the
/// serving layers as the request moves through the system and finalized at
/// reply time.
#[derive(Clone, Copy, Debug)]
pub struct RequestTimeline {
    /// The request's trace id (joins this timeline to its trace spans).
    pub trace_id: u64,
    /// Trace id of the batch/dispatch context that executed it (0 = none).
    pub parent_span: u64,
    /// Model identity (the serving layer's model key).
    pub model: u64,
    /// Request entered the front door.
    pub submitted_ns: u64,
    /// Admission control accepted it onto a queue.
    pub admitted_ns: u64,
    /// A dispatcher drained it off the queue.
    pub drained_ns: u64,
    /// Its batch began executing.
    pub exec_start_ns: u64,
    /// Inputs finished uploading.
    pub upload_end_ns: u64,
    /// Device compute finished.
    pub compute_end_ns: u64,
    /// Reply sent (readback complete for successful requests).
    pub done_ns: u64,
    /// Size of the batch it executed in (1 for singles; 0 if it never
    /// reached execution).
    pub batch_size: u32,
    /// Terminal outcome.
    pub outcome: RequestOutcome,
}

impl RequestTimeline {
    /// A fresh timeline for `trace_id` on `model`, all timestamps unset.
    pub fn new(trace_id: u64, parent_span: u64, model: u64) -> RequestTimeline {
        RequestTimeline {
            trace_id,
            parent_span,
            model,
            submitted_ns: 0,
            admitted_ns: 0,
            drained_ns: 0,
            exec_start_ns: 0,
            upload_end_ns: 0,
            compute_end_ns: 0,
            done_ns: 0,
            batch_size: 0,
            outcome: RequestOutcome::Error,
        }
    }

    /// Copy an executor's [`PhaseStamps`] onto this timeline.
    pub fn apply_stamps(&mut self, stamps: &PhaseStamps) {
        self.exec_start_ns = stamps.exec_start_ns;
        self.upload_end_ns = stamps.upload_end_ns;
        self.compute_end_ns = stamps.compute_end_ns;
    }

    /// The seven timestamps in timeline order.
    fn stamps(&self) -> [u64; 7] {
        [
            self.submitted_ns,
            self.admitted_ns,
            self.drained_ns,
            self.exec_start_ns,
            self.upload_end_ns,
            self.compute_end_ns,
            self.done_ns,
        ]
    }

    /// `(phase name, duration ns)` for the six phases. Meaningful only
    /// when [`RequestTimeline::is_complete`].
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        let t = self.stamps();
        let mut out = [("", 0u64); 6];
        for i in 0..6 {
            out[i] = (PHASE_NAMES[i], t[i + 1].saturating_sub(t[i]));
        }
        out
    }

    /// Whether every phase timestamp was stamped, in monotone order — i.e.
    /// the full queue→admission→batch→upload→compute→readback path can be
    /// reconstructed from this one record.
    pub fn is_complete(&self) -> bool {
        let t = self.stamps();
        t.iter().all(|&x| x > 0) && t.windows(2).all(|w| w[0] <= w[1])
    }
}

static ATTRIBUTION_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn attribution recording on/off (on by default; the off switch exists
/// for measuring the uninstrumented baseline).
pub fn set_attribution_enabled(on: bool) {
    ATTRIBUTION_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`record_request`] currently records.
#[inline]
pub fn attribution_enabled() -> bool {
    ATTRIBUTION_ENABLED.load(Ordering::Relaxed)
}

struct ModelAttr {
    label: String,
    /// One histogram per phase (ms), plus end-to-end latency.
    phase_hists: [Histogram; 6],
    total: Histogram,
    /// Registry mirrors (resolved once, so recording takes no registry
    /// lock). Refreshed when the label changes.
    phase_series: [Arc<Histogram>; 6],
    complete: u64,
    incomplete: u64,
    outcomes: [u64; 5],
}

fn series_for(label: &str) -> [Arc<Histogram>; 6] {
    std::array::from_fn(|i| {
        histogram_labeled("webml_attr_phase_ms", &[("model", label), ("phase", PHASE_NAMES[i])])
    })
}

impl ModelAttr {
    fn new(model: u64) -> ModelAttr {
        let label = format!("model_{model:08x}");
        let phase_series = series_for(&label);
        ModelAttr {
            label,
            phase_hists: std::array::from_fn(|_| Histogram::new()),
            total: Histogram::new(),
            phase_series,
            complete: 0,
            incomplete: 0,
            outcomes: [0; 5],
        }
    }
}

fn outcome_slot(o: RequestOutcome) -> usize {
    match o {
        RequestOutcome::Completed => 0,
        RequestOutcome::Shed => 1,
        RequestOutcome::DeadlineExceeded => 2,
        RequestOutcome::Rejected => 3,
        RequestOutcome::Error => 4,
    }
}

fn models() -> &'static Mutex<HashMap<u64, ModelAttr>> {
    static MODELS: OnceLock<Mutex<HashMap<u64, ModelAttr>>> = OnceLock::new();
    MODELS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Give `model` a human-readable label in reports and the
/// `webml_attr_phase_ms{model=...}` registry series (default:
/// `model_<hex>`).
pub fn set_model_label(model: u64, label: &str) {
    let mut map = models().lock();
    let attr = map.entry(model).or_insert_with(|| ModelAttr::new(model));
    if attr.label != label {
        attr.label = label.to_owned();
        attr.phase_series = series_for(label);
    }
}

/// Fold one finished request timeline into the per-model aggregates.
/// Completed requests with a fully-stamped monotone timeline contribute
/// their six phase durations; completed requests with holes are counted as
/// incomplete (the attribution completeness ratio CI gates on). Other
/// outcomes are tallied but contribute no phase samples.
pub fn record_request(tl: &RequestTimeline) {
    if !attribution_enabled() {
        return;
    }
    let mut map = models().lock();
    let attr = map.entry(tl.model).or_insert_with(|| ModelAttr::new(tl.model));
    attr.outcomes[outcome_slot(tl.outcome)] += 1;
    if tl.outcome != RequestOutcome::Completed {
        return;
    }
    if !tl.is_complete() {
        attr.incomplete += 1;
        return;
    }
    attr.complete += 1;
    for (i, (_, dur_ns)) in tl.phases().iter().enumerate() {
        let ms = *dur_ns as f64 / 1e6;
        attr.phase_hists[i].observe(ms);
        attr.phase_series[i].observe(ms);
    }
    attr.total.observe(tl.done_ns.saturating_sub(tl.submitted_ns) as f64 / 1e6);
}

/// Per-phase summary inside a [`ModelAttributionReport`].
#[derive(Clone, Debug)]
pub struct PhaseSummary {
    /// Phase name (one of [`PHASE_NAMES`]).
    pub phase: &'static str,
    /// Latency summary in milliseconds.
    pub summary: HistogramSummary,
}

/// Attribution aggregate for one model.
#[derive(Clone, Debug)]
pub struct ModelAttributionReport {
    /// Model key.
    pub model: u64,
    /// Human label (see [`set_model_label`]).
    pub label: String,
    /// Completed requests whose full timeline reconstructed.
    pub complete: u64,
    /// Completed requests with a hole in the timeline.
    pub incomplete: u64,
    /// `(outcome name, count)` for every outcome seen.
    pub outcomes: Vec<(&'static str, u64)>,
    /// End-to-end latency (ms) over complete requests.
    pub total: HistogramSummary,
    /// Per-phase latency summaries (ms), timeline order.
    pub phases: Vec<PhaseSummary>,
    /// Phase with the largest p50 ("" when no complete requests).
    pub dominant_p50: &'static str,
    /// Phase with the largest p95.
    pub dominant_p95: &'static str,
    /// Phase with the largest p99 — the tail-latency culprit.
    pub dominant_p99: &'static str,
}

impl ModelAttributionReport {
    /// Fraction of completed requests whose timeline fully reconstructed.
    pub fn completeness(&self) -> f64 {
        let total = self.complete + self.incomplete;
        if total == 0 {
            return 1.0;
        }
        self.complete as f64 / total as f64
    }
}

/// The full attribution report across models.
#[derive(Clone, Debug, Default)]
pub struct AttributionReport {
    /// Sum of per-model complete counts.
    pub total_complete: u64,
    /// Sum of per-model incomplete counts.
    pub total_incomplete: u64,
    /// Per-model breakdowns, sorted by model key.
    pub models: Vec<ModelAttributionReport>,
}

impl AttributionReport {
    /// Look up a model's report by label.
    pub fn model(&self, label: &str) -> Option<&ModelAttributionReport> {
        self.models.iter().find(|m| m.label == label)
    }

    /// The report as a JSON value (embedded in BENCH_SLO.json and flight
    /// snapshots).
    pub fn to_json(&self) -> Value {
        let summary_json = |s: &HistogramSummary| {
            json!({
                "count": s.count,
                "mean_ms": s.mean,
                "p50_ms": s.p50,
                "p95_ms": s.p95,
                "p99_ms": s.p99,
            })
        };
        let models: Vec<Value> = self
            .models
            .iter()
            .map(|m| {
                let phases: Vec<Value> = m
                    .phases
                    .iter()
                    .map(|p| {
                        let mut obj = summary_json(&p.summary);
                        if let Value::Object(entries) = &mut obj {
                            entries.insert(0, ("phase".to_owned(), json!(p.phase)));
                        }
                        obj
                    })
                    .collect();
                let outcomes: Vec<Value> =
                    m.outcomes.iter().map(|(name, n)| json!({ "outcome": *name, "count": *n })).collect();
                json!({
                    "model": m.model,
                    "label": m.label.clone(),
                    "complete": m.complete,
                    "incomplete": m.incomplete,
                    "completeness": m.completeness(),
                    "outcomes": Value::Array(outcomes),
                    "total": summary_json(&m.total),
                    "phases": Value::Array(phases),
                    "dominant_p50": m.dominant_p50,
                    "dominant_p95": m.dominant_p95,
                    "dominant_p99": m.dominant_p99,
                })
            })
            .collect();
        json!({
            "total_complete": self.total_complete,
            "total_incomplete": self.total_incomplete,
            "models": Value::Array(models),
        })
    }
}

fn dominant_at(hists: &[Histogram; 6], q: f64) -> &'static str {
    let mut best = "";
    let mut best_v = f64::NEG_INFINITY;
    for (i, h) in hists.iter().enumerate() {
        if let Some(v) = h.try_quantile(q) {
            if v > best_v {
                best_v = v;
                best = PHASE_NAMES[i];
            }
        }
    }
    best
}

/// Build the current [`AttributionReport`] from the per-model aggregates.
pub fn attribution_report() -> AttributionReport {
    let map = models().lock();
    let mut report = AttributionReport::default();
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let attr = &map[&key];
        report.total_complete += attr.complete;
        report.total_incomplete += attr.incomplete;
        let phases = (0..6)
            .map(|i| PhaseSummary { phase: PHASE_NAMES[i], summary: attr.phase_hists[i].summary() })
            .collect();
        let outcomes = (0..5)
            .filter(|&i| attr.outcomes[i] > 0)
            .map(|i| {
                let name = [
                    RequestOutcome::Completed,
                    RequestOutcome::Shed,
                    RequestOutcome::DeadlineExceeded,
                    RequestOutcome::Rejected,
                    RequestOutcome::Error,
                ][i]
                    .name();
                (name, attr.outcomes[i])
            })
            .collect();
        report.models.push(ModelAttributionReport {
            model: key,
            label: attr.label.clone(),
            complete: attr.complete,
            incomplete: attr.incomplete,
            outcomes,
            total: attr.total.summary(),
            phases,
            dominant_p50: dominant_at(&attr.phase_hists, 0.50),
            dominant_p95: dominant_at(&attr.phase_hists, 0.95),
            dominant_p99: dominant_at(&attr.phase_hists, 0.99),
        });
    }
    report
}

/// Per-model `(complete, incomplete)` counts — exact assertions for tests
/// that own a unique model key while other traffic runs in parallel.
pub fn model_counts(model: u64) -> (u64, u64) {
    let map = models().lock();
    map.get(&model).map(|a| (a.complete, a.incomplete)).unwrap_or((0, 0))
}

/// Drop all attribution state (between benchmark phases).
pub fn reset_attribution() {
    models().lock().clear();
}

/// A timeline as JSON (shared with the flight recorder's snapshots).
pub fn timeline_json(tl: &RequestTimeline) -> Value {
    let phases: Vec<Value> = if tl.is_complete() {
        tl.phases().iter().map(|(name, ns)| json!({ "phase": *name, "ns": *ns })).collect()
    } else {
        Vec::new()
    };
    json!({
        "trace_id": tl.trace_id,
        "parent_span": tl.parent_span,
        "model": tl.model,
        "outcome": tl.outcome.name(),
        "batch_size": tl.batch_size,
        "submitted_ns": tl.submitted_ns,
        "admitted_ns": tl.admitted_ns,
        "drained_ns": tl.drained_ns,
        "exec_start_ns": tl.exec_start_ns,
        "upload_end_ns": tl.upload_end_ns,
        "compute_end_ns": tl.compute_end_ns,
        "done_ns": tl.done_ns,
        "complete": tl.is_complete(),
        "phases": Value::Array(phases),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_tl(model: u64, base: u64, step: u64) -> RequestTimeline {
        let mut tl = RequestTimeline::new(crate::next_trace_id(), 0, model);
        tl.submitted_ns = base;
        tl.admitted_ns = base + step;
        tl.drained_ns = base + 2 * step;
        tl.exec_start_ns = base + 3 * step;
        tl.upload_end_ns = base + 4 * step;
        tl.compute_end_ns = base + 5 * step;
        tl.done_ns = base + 6 * step;
        tl.batch_size = 1;
        tl.outcome = RequestOutcome::Completed;
        tl
    }

    #[test]
    fn phases_and_completeness() {
        let tl = complete_tl(0xabc, 1_000_000, 2_000_000);
        assert!(tl.is_complete());
        for (name, ns) in tl.phases() {
            assert!(PHASE_NAMES.contains(&name));
            assert_eq!(ns, 2_000_000);
        }
        let mut holey = tl;
        holey.upload_end_ns = 0;
        assert!(!holey.is_complete());
        let mut backwards = tl;
        backwards.compute_end_ns = tl.upload_end_ns - 1;
        assert!(!backwards.is_complete());
    }

    #[test]
    fn report_names_dominant_phase() {
        let _g = crate::test_lock(); // serialize vs the enabled-flag toggle
        let model = 0x9_0001; // unique to this test
        set_model_label(model, "attr-test");
        for i in 1..=50u64 {
            // compute dominates: 8ms compute step vs 1ms elsewhere.
            let mut tl = complete_tl(model, i * 100_000_000, 1_000_000);
            tl.compute_end_ns = tl.upload_end_ns + 8_000_000;
            tl.done_ns = tl.compute_end_ns + 1_000_000;
            record_request(&tl);
        }
        let mut incomplete = complete_tl(model, 99_000_000_000, 1_000_000);
        incomplete.drained_ns = 0;
        record_request(&incomplete);
        let (complete, incomplete_n) = model_counts(model);
        assert_eq!((complete, incomplete_n), (50, 1));
        let report = attribution_report();
        let m = report.model("attr-test").expect("model in report");
        assert_eq!(m.complete, 50);
        assert_eq!(m.dominant_p99, "compute");
        assert_eq!(m.dominant_p50, "compute");
        assert!(m.completeness() > 0.98);
        assert!(m.total.p50 > 10.0, "end-to-end ~14ms, got {}", m.total.p50);
        let json = report.to_json();
        let rendered = serde_json::to_string(&json).unwrap();
        assert!(rendered.contains("\"dominant_p99\":\"compute\""));
    }

    #[test]
    fn non_completed_outcomes_add_no_phase_samples() {
        let _g = crate::test_lock();
        let model = 0x9_0002;
        let mut tl = complete_tl(model, 1_000_000, 1_000_000);
        tl.outcome = RequestOutcome::Shed;
        record_request(&tl);
        assert_eq!(model_counts(model), (0, 0));
        let report = attribution_report();
        let m = report.models.iter().find(|m| m.model == model).unwrap();
        assert_eq!(m.outcomes, vec![("shed", 1)]);
        assert_eq!(m.total.count, 0);
        assert_eq!(m.dominant_p99, "");
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::test_lock();
        let model = 0x9_0003;
        set_attribution_enabled(false);
        record_request(&complete_tl(model, 1_000_000, 1_000_000));
        set_attribution_enabled(true);
        assert_eq!(model_counts(model), (0, 0));
        record_request(&complete_tl(model, 1_000_000, 1_000_000));
        assert_eq!(model_counts(model), (1, 0));
    }
}
