//! A fixed-capacity single-producer single-consumer event ring.
//!
//! The producer is always the owning thread (via the crate's
//! thread-local handle); the consumer is whoever drains the trace, which
//! the crate serializes by holding the thread-registry lock while
//! draining. Overflow drops the new event and bumps a counter — the hot
//! path never blocks and never allocates.

use crate::Event;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-thread ring capacity (events). At 88 bytes/event this is ~1.4 MiB
/// per *recording* thread — rings are only allocated on first use.
pub const RING_CAPACITY: usize = 1 << 14;

/// SPSC ring of [`Event`]s. See module docs for the producer/consumer
/// contract.
pub struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Next slot to read (owned by the consumer).
    head: AtomicUsize,
    /// Next slot to write (owned by the producer).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are only written by the owner thread at indices in
// [head, tail) exclusion — the producer writes at `tail` before
// publishing it with a release store, the consumer reads only below the
// acquired `tail`. Events are `Copy`, so no slot ever needs dropping.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// An empty ring with [`RING_CAPACITY`] slots.
    pub fn new() -> EventRing {
        let slots: Vec<UnsafeCell<MaybeUninit<Event>>> =
            (0..RING_CAPACITY).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer-side push. Must only be called from the owning thread.
    /// Drops the event (counting it) when the ring is full.
    #[inline]
    pub fn push(&self, ev: Event) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: this slot is outside [head, tail), so the consumer is
        // not reading it; we are the only producer.
        unsafe {
            (*self.slots[tail % RING_CAPACITY].get()).write(ev);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer-side drain of everything currently published. The caller
    /// must guarantee a single consumer at a time (the crate drains under
    /// the thread-registry lock).
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        let tail = self.tail.load(Ordering::Acquire);
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: slots in [head, tail) were initialized by the
            // producer before the release store of `tail`.
            out.push(unsafe { (*self.slots[head % RING_CAPACITY].get()).assume_init() });
            head = head.wrapping_add(1);
        }
        self.head.store(head, Ordering::Release);
    }

    /// Events lost to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, Track};

    fn ev(i: u64) -> Event {
        Event {
            name: "t",
            cat: "t",
            track: Track::Thread,
            phase: Phase::Instant,
            start_ns: i,
            dur_ns: 0,
            tid: 0,
            arg_name: "",
            arg: 0.0,
            trace_id: 0,
        }
    }

    #[test]
    fn push_drain_preserves_order() {
        let ring = EventRing::new();
        for i in 0..100 {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, e)| e.start_ns == i as u64));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let ring = EventRing::new();
        for i in 0..(RING_CAPACITY as u64 + 37) {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 37);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        // After draining, capacity is available again.
        ring.push(ev(9999));
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].start_ns, 9999);
    }

    #[test]
    fn concurrent_churn_accounts_exactly_and_yields_complete_events() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let ring = Arc::new(EventRing::new());
        let done = Arc::new(AtomicBool::new(false));
        const TOTAL: u64 = 200_000;

        // Producer: the owning thread, pushing events whose arg mirrors
        // start_ns so a torn slot is detectable.
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for i in 0..TOTAL {
                    ring.push(Event { arg: i as f64, ..ev(i) });
                }
                done.store(true, Ordering::Release);
            })
        };

        // Consumer: drains concurrently while the producer overflows the
        // ring, then once more after the producer finishes.
        let mut drained: Vec<Event> = Vec::new();
        while !done.load(Ordering::Acquire) {
            ring.drain_into(&mut drained);
            std::thread::yield_now();
        }
        ring.drain_into(&mut drained);
        producer.join().unwrap();

        // Exact accounting: every push either drained or was counted.
        assert_eq!(drained.len() as u64 + ring.dropped(), TOTAL);
        // Only complete events: seqs strictly increasing (a subsequence of
        // the push order) and arg matches start_ns bit-for-bit.
        let mut prev: Option<u64> = None;
        for e in &drained {
            assert_eq!(e.arg, e.start_ns as f64, "no torn slot");
            if let Some(p) = prev {
                assert!(e.start_ns > p, "drain preserves push order");
            }
            prev = Some(e.start_ns);
        }
    }

    #[test]
    fn wraparound_across_many_cycles() {
        let ring = EventRing::new();
        let mut out = Vec::new();
        for cycle in 0..5u64 {
            for i in 0..(RING_CAPACITY as u64 / 2) {
                ring.push(ev(cycle * 1_000_000 + i));
            }
            out.clear();
            ring.drain_into(&mut out);
            assert_eq!(out.len(), RING_CAPACITY / 2);
            assert_eq!(out[0].start_ns, cycle * 1_000_000);
        }
        assert_eq!(ring.dropped(), 0);
    }
}
