//! Metrics: counters, gauges and log-bucketed histograms, plus a global
//! name-keyed registry exportable as Prometheus-style text.
//!
//! All metric types are plain atomics — updates are lock-free and safe
//! from any thread, independent of whether tracing is enabled. Callers on
//! hot paths should resolve a metric once ([`counter`]/[`histogram`]
//! return `Arc`s) and cache the handle; the registry lock is only taken
//! at resolution and export time.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (standalone, not registered).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (standalone, not registered).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge (e.g. a utilization ratio in `[0, 1]`), stored
/// as f64 bits in an atomic so updates stay lock-free.
#[derive(Default)]
pub struct FGauge(AtomicU64);

impl FGauge {
    /// A zeroed gauge (standalone, not registered).
    pub fn new() -> FGauge {
        FGauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: 4 per octave over 2^-16 .. 2^16, giving
/// ~19% relative resolution across nine decades — plenty for latency
/// quantiles.
const BUCKETS: usize = 128;
const BUCKETS_PER_OCTAVE: f64 = 4.0;
const BUCKET_BIAS: i64 = 64;

/// A lock-free log-bucketed histogram. `observe` is two relaxed
/// `fetch_add`s plus one `log2`; quantiles are approximate to one bucket
/// (~19% relative error bound).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Sum scaled by 2^20 so fractional observations accumulate without
    /// floating-point atomics.
    sum_scaled: AtomicU64,
}

const SUM_SCALE: f64 = (1u64 << 20) as f64;

impl Histogram {
    /// An empty histogram (standalone, not registered — useful for
    /// per-instance stats like a server's queue-wait distribution).
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([(); BUCKETS].map(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_scaled: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_index(v: f64) -> usize {
        // NaN fails `is_finite`, so non-positive and non-finite values
        // (including NaN) all land in the underflow bucket.
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        ((v.log2() * BUCKETS_PER_OCTAVE).floor() as i64 + BUCKET_BIAS).clamp(0, BUCKETS as i64 - 1)
            as usize
    }

    /// The representative (geometric-center) value of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5 - BUCKET_BIAS as f64) / BUCKETS_PER_OCTAVE)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = Histogram::bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let scaled = (v.max(0.0) * SUM_SCALE) as u64;
        self.sum_scaled.fetch_add(scaled, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_scaled.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket representative
    /// value). Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Histogram::bucket_value(i);
            }
        }
        Histogram::bucket_value(BUCKETS - 1)
    }

    /// A point-in-time summary (count, mean, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            mean: if count == 0 { 0.0 } else { self.sum() / count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A snapshot of a [`Histogram`]: count, mean and headline quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (approximate, log-bucketed).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FGauge(Arc<FGauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get or create the registered counter `name`. Cache the returned `Arc`
/// on hot paths.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry().lock();
    match reg.entry(name.to_owned()).or_insert_with(|| Metric::Counter(Arc::new(Counter::new()))) {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered as a non-counter"),
    }
}

/// Get or create the registered gauge `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry().lock();
    match reg.entry(name.to_owned()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered as a non-gauge"),
    }
}

/// Get or create the registered floating-point gauge `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn fgauge(name: &str) -> Arc<FGauge> {
    let mut reg = registry().lock();
    match reg.entry(name.to_owned()).or_insert_with(|| Metric::FGauge(Arc::new(FGauge::new()))) {
        Metric::FGauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered as a non-fgauge"),
    }
}

/// Get or create the registered histogram `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry().lock();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered as a non-histogram"),
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Render every registered metric as Prometheus-style exposition text.
/// Histograms are rendered as summaries (`{quantile="..."}` series plus
/// `_sum`/`_count`).
pub fn prometheus_text() -> String {
    let reg = registry().lock();
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        let pname = sanitize(name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", g.get()));
            }
            Metric::FGauge(g) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {pname} summary\n"));
                for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{pname}{{quantile=\"{label}\"}} {}\n",
                        h.quantile(q)
                    ));
                }
                out.push_str(&format!("{pname}_sum {}\n", h.sum()));
                out.push_str(&format!("{pname}_count {}\n", h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test.metrics.counter").get(), 5, "registry returns same instance");
        let g = gauge("test.metrics.gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn fgauge_stores_floats_and_renders_as_gauge() {
        let g = fgauge("test.metrics.utilization");
        g.set(0.837);
        assert!((g.get() - 0.837).abs() < 1e-12);
        assert!((fgauge("test.metrics.utilization").get() - 0.837).abs() < 1e-12);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_metrics_utilization gauge"));
        assert!(text.contains("test_metrics_utilization 0.837"));
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_correct() {
        let h = Histogram::new();
        // 90 fast observations at ~1ms, 10 slow at ~100ms.
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 1090.0).abs() < 1.0, "sum ~1090, got {}", h.sum());
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.5 && p50 < 2.0, "p50 near 1.0, got {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 50.0 && p99 < 200.0, "p99 near 100, got {p99}");
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 10.9).abs() < 0.1);
        assert!(s.p95 > 50.0, "p95 lands in the slow mode, got {}", s.p95);
    }

    #[test]
    fn histogram_handles_degenerate_values() {
        let h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(1e-30);
        h.observe(1e30);
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.5) > 0.0);
    }

    #[test]
    fn prometheus_text_includes_all_kinds() {
        counter("test.prom.requests").add(3);
        gauge("test.prom.depth").set(2);
        histogram("test.prom.latency_ms").observe(5.0);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_prom_requests counter"));
        assert!(text.contains("test_prom_requests 3"));
        assert!(text.contains("# TYPE test_prom_depth gauge"));
        assert!(text.contains("# TYPE test_prom_latency_ms summary"));
        assert!(text.contains("test_prom_latency_ms_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }
}
