//! Metrics: counters, gauges and log-bucketed histograms, plus a global
//! name-keyed registry exportable as Prometheus-style text.
//!
//! All metric types are plain atomics — updates are lock-free and safe
//! from any thread, independent of whether tracing is enabled. Callers on
//! hot paths should resolve a metric once ([`counter`]/[`histogram`]
//! return `Arc`s) and cache the handle; the registry lock is only taken
//! at resolution and export time.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (standalone, not registered).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (standalone, not registered).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge (e.g. a utilization ratio in `[0, 1]`), stored
/// as f64 bits in an atomic so updates stay lock-free.
#[derive(Default)]
pub struct FGauge(AtomicU64);

impl FGauge {
    /// A zeroed gauge (standalone, not registered).
    pub fn new() -> FGauge {
        FGauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: 4 per octave over 2^-16 .. 2^16, giving
/// ~19% relative resolution across nine decades — plenty for latency
/// quantiles.
const BUCKETS: usize = 128;
const BUCKETS_PER_OCTAVE: f64 = 4.0;
const BUCKET_BIAS: i64 = 64;

/// A lock-free log-bucketed histogram. `observe` is two relaxed
/// `fetch_add`s plus one `log2`; quantiles are approximate to one bucket
/// (~19% relative error bound).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Sum scaled by 2^20 so fractional observations accumulate without
    /// floating-point atomics.
    sum_scaled: AtomicU64,
}

const SUM_SCALE: f64 = (1u64 << 20) as f64;

impl Histogram {
    /// An empty histogram (standalone, not registered — useful for
    /// per-instance stats like a server's queue-wait distribution).
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([(); BUCKETS].map(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_scaled: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_index(v: f64) -> usize {
        // NaN fails `is_finite`, so non-positive and non-finite values
        // (including NaN) all land in the underflow bucket.
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        ((v.log2() * BUCKETS_PER_OCTAVE).floor() as i64 + BUCKET_BIAS).clamp(0, BUCKETS as i64 - 1)
            as usize
    }

    /// The representative (geometric-center) value of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5 - BUCKET_BIAS as f64) / BUCKETS_PER_OCTAVE)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = Histogram::bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let scaled = (v.max(0.0) * SUM_SCALE) as u64;
        self.sum_scaled.fetch_add(scaled, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_scaled.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket representative
    /// value), or `None` on a never-observed histogram. The `None` makes
    /// "no data" distinguishable from a genuine 0-valued quantile —
    /// callers that want a number use [`Histogram::quantile`].
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(Histogram::bucket_value(i));
            }
        }
        Some(Histogram::bucket_value(BUCKETS - 1))
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket representative
    /// value). Returns 0.0 on an empty histogram — consistently 0.0, never
    /// a bucket-edge artifact like `bucket_value(0)` (~6.9e-5).
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// A point-in-time summary (count, mean, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            mean: if count == 0 { 0.0 } else { self.sum() / count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A snapshot of a [`Histogram`]: count, mean and headline quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (approximate, log-bucketed).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FGauge(Arc<FGauge>),
    Histogram(Arc<Histogram>),
}

/// Registry key: the metric's base name plus its raw (unescaped) label
/// pairs. Labels are stored structured — never pre-rendered into the name
/// — so escaping happens exactly once, at exposition time.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    base: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(base: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            base: base.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<MetricKey, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<MetricKey, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get or create the registered counter `name`. Cache the returned `Arc`
/// on hot paths.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    counter_labeled(name, &[])
}

/// Get or create a counter series `base{labels...}`. Label values are
/// stored raw and escaped only when rendered by [`prometheus_text`].
///
/// # Panics
/// If the same series is already registered as a different metric kind.
pub fn counter_labeled(base: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    let mut reg = registry().lock();
    match reg
        .entry(MetricKey::new(base, labels))
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {base:?} already registered as a non-counter"),
    }
}

/// Get or create the registered gauge `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry().lock();
    match reg
        .entry(MetricKey::new(name, &[]))
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered as a non-gauge"),
    }
}

/// Get or create the registered floating-point gauge `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn fgauge(name: &str) -> Arc<FGauge> {
    let mut reg = registry().lock();
    match reg
        .entry(MetricKey::new(name, &[]))
        .or_insert_with(|| Metric::FGauge(Arc::new(FGauge::new())))
    {
        Metric::FGauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered as a non-fgauge"),
    }
}

/// Get or create the registered histogram `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    histogram_labeled(name, &[])
}

/// Get or create a histogram series `base{labels...}` (e.g. per-model
/// per-phase latency in the attribution layer).
///
/// # Panics
/// If the same series is already registered as a different metric kind.
pub fn histogram_labeled(base: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    let mut reg = registry().lock();
    match reg
        .entry(MetricKey::new(base, labels))
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {base:?} already registered as a non-histogram"),
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// A metric (or label) name is representable in the exposition format only
/// if, after sanitizing, it is non-empty and does not start with a digit.
fn valid_name(sanitized: &str) -> bool {
    match sanitized.chars().next() {
        Some(c) => !c.is_ascii_digit(),
        None => false,
    }
}

/// Escape a label *value* per the Prometheus exposition format: backslash,
/// double-quote and newline must be escaped inside the quoted value.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `{k="v",...}` for a label set (plus an optional extra pair,
/// used for histogram quantile series). Empty label sets render as "".
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render every registered metric as Prometheus-style exposition text.
/// Histograms are rendered as summaries (`{quantile="..."}` series plus
/// `_sum`/`_count`); a never-observed histogram renders `NaN` quantiles
/// (the format's "no value", rather than a misleading 0). Label values
/// are escaped; metrics whose sanitized name is still invalid (empty or
/// digit-leading) are skipped and counted in a trailing comment instead
/// of corrupting the output.
pub fn prometheus_text() -> String {
    let reg = registry().lock();
    let mut out = String::new();
    let mut skipped = 0usize;
    let mut last_typed: Option<(String, &'static str)> = None;
    for (key, metric) in reg.iter() {
        let pname = sanitize(&key.base);
        if !valid_name(&pname) {
            skipped += 1;
            continue;
        }
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) | Metric::FGauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        };
        // One # TYPE header per base name even when many label sets share
        // it (BTreeMap ordering groups them).
        if last_typed.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((pname.as_str(), kind)) {
            out.push_str(&format!("# TYPE {pname} {kind}\n"));
            last_typed = Some((pname.clone(), kind));
        }
        let labels = render_labels(&key.labels, None);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("{pname}{labels} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{pname}{labels} {}\n", g.get()));
            }
            Metric::FGauge(g) => {
                out.push_str(&format!("{pname}{labels} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                for (q, qlabel) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    let qlabels = render_labels(&key.labels, Some(("quantile", qlabel)));
                    match h.try_quantile(q) {
                        Some(v) => out.push_str(&format!("{pname}{qlabels} {v}\n")),
                        None => out.push_str(&format!("{pname}{qlabels} NaN\n")),
                    }
                }
                out.push_str(&format!("{pname}_sum{labels} {}\n", h.sum()));
                out.push_str(&format!("{pname}_count{labels} {}\n", h.count()));
            }
        }
    }
    if skipped > 0 {
        out.push_str(&format!("# webml: skipped {skipped} metric(s) with invalid names\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test.metrics.counter").get(), 5, "registry returns same instance");
        let g = gauge("test.metrics.gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn fgauge_stores_floats_and_renders_as_gauge() {
        let g = fgauge("test.metrics.utilization");
        g.set(0.837);
        assert!((g.get() - 0.837).abs() < 1e-12);
        assert!((fgauge("test.metrics.utilization").get() - 0.837).abs() < 1e-12);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_metrics_utilization gauge"));
        assert!(text.contains("test_metrics_utilization 0.837"));
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_correct() {
        let h = Histogram::new();
        // 90 fast observations at ~1ms, 10 slow at ~100ms.
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(100.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 1090.0).abs() < 1.0, "sum ~1090, got {}", h.sum());
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.5 && p50 < 2.0, "p50 near 1.0, got {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 50.0 && p99 < 200.0, "p99 near 100, got {p99}");
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 10.9).abs() < 0.1);
        assert!(s.p95 > 50.0, "p95 lands in the slow mode, got {}", s.p95);
    }

    #[test]
    fn histogram_handles_degenerate_values() {
        let h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(1e-30);
        h.observe(1e30);
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.5) > 0.0);
    }

    #[test]
    fn prometheus_text_includes_all_kinds() {
        counter("test.prom.requests").add(3);
        gauge("test.prom.depth").set(2);
        histogram("test.prom.latency_ms").observe(5.0);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_prom_requests counter"));
        assert!(text.contains("test_prom_requests 3"));
        assert!(text.contains("# TYPE test_prom_depth gauge"));
        assert!(text.contains("# TYPE test_prom_latency_ms summary"));
        assert!(text.contains("test_prom_latency_ms_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }

    #[test]
    fn empty_histogram_quantiles_are_consistently_absent() {
        let h = Histogram::new();
        assert_eq!(h.try_quantile(0.5), None);
        assert_eq!(h.try_quantile(0.95), None);
        assert_eq!(h.try_quantile(0.99), None);
        // The f64 API returns exactly 0.0 — not bucket_value(0) (~6.9e-5)
        // or the top bucket edge.
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!((s.count, s.mean, s.p50, s.p95, s.p99), (0, 0.0, 0.0, 0.0, 0.0));
        // After one observation the quantiles come alive.
        h.observe(5.0);
        assert!(h.try_quantile(0.5).unwrap() > 0.0);
        assert!(h.summary().p99 > 0.0);
    }

    #[test]
    fn empty_registered_histogram_renders_nan_quantiles() {
        histogram("test.prom.empty_hist");
        let text = prometheus_text();
        assert!(text.contains("test_prom_empty_hist{quantile=\"0.99\"} NaN"));
        assert!(text.contains("test_prom_empty_hist_count 0"));
    }

    #[test]
    fn labeled_series_escape_values_at_render() {
        counter_labeled("test.prom.labeled", &[("model", "mlp\"v1\"\\tiny\nx")]).add(2);
        counter_labeled("test.prom.labeled", &[("model", "plain")]).inc();
        let text = prometheus_text();
        assert!(
            text.contains("test_prom_labeled{model=\"mlp\\\"v1\\\"\\\\tiny\\nx\"} 2"),
            "backslash, quote and newline escaped: {text}"
        );
        assert!(text.contains("test_prom_labeled{model=\"plain\"} 1"));
        // One TYPE header covers both series of the base name.
        assert_eq!(text.matches("# TYPE test_prom_labeled counter").count(), 1);
        // The raw newline in the label value must not split a sample line:
        // every non-comment line is a complete `name{...} value` sample.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(), "torn line: {line}");
        }
    }

    #[test]
    fn labeled_histogram_merges_quantile_label() {
        histogram_labeled("test.prom.lat_by_model", &[("model", "m1")]).observe(4.0);
        let text = prometheus_text();
        assert!(text.contains("test_prom_lat_by_model{model=\"m1\",quantile=\"0.5\"}"));
        assert!(text.contains("test_prom_lat_by_model_count{model=\"m1\"} 1"));
    }

    #[test]
    fn invalid_metric_names_are_rejected_not_emitted() {
        counter("9starts.with.digit").inc();
        counter("!!!").inc();
        counter("test.prom.valid_neighbor").inc();
        let text = prometheus_text();
        // `9starts...` sanitizes to a digit-leading name, `!!!` to `___`
        // which is technically valid; so only the digit-leading one is
        // rejected. Assert no malformed sample line survives.
        assert!(!text.contains("9starts_with_digit"), "digit-leading name skipped: {text}");
        assert!(text.contains("skipped 1 metric(s) with invalid names"));
        assert!(text.contains("test_prom_valid_neighbor 1"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap_or("");
            assert!(
                !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()),
                "every emitted sample has a valid name: {line}"
            );
        }
    }
}
