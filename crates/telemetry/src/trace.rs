//! Chrome trace-event JSON export.
//!
//! Produces the "JSON Object Format" understood by `chrome://tracing`
//! and Perfetto: a `traceEvents` array of complete spans (`ph: "X"`,
//! microsecond `ts`/`dur`) and instants (`ph: "i"`), with `ph: "M"`
//! metadata events naming one track per recording thread plus a virtual
//! **GPU** track for simulated-device work.

use crate::{drain, dropped_events, thread_names, Phase, Track};
use serde_json::json;
use std::path::Path;

/// The `tid` used for the virtual GPU track. Real thread ids start at 1,
/// so 0 is free; chrome://tracing sorts it to the top.
pub const GPU_TID: u64 = 0;

/// Drain all buffered events and render them as a Chrome trace-event
/// JSON document (see module docs). Consumes the buffered events.
pub fn chrome_trace_json() -> String {
    let events = drain();
    let mut out: Vec<serde_json::Value> = Vec::with_capacity(events.len() + 16);

    // Track-naming metadata. The GPU track is always declared so an
    // empty-GPU trace still shows where device work would land.
    out.push(json!({
        "name": "thread_name", "ph": "M", "pid": 1, "tid": GPU_TID,
        "args": {"name": "GPU (simulated device)"},
    }));
    for (tid, name) in thread_names() {
        out.push(json!({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        }));
    }

    for ev in &events {
        let tid = match ev.track {
            Track::Gpu => GPU_TID,
            Track::Thread => ev.tid,
        };
        let ts = ev.start_ns as f64 / 1e3;
        let mut arg_entries: Vec<(String, serde_json::Value)> = Vec::new();
        if !ev.arg_name.is_empty() {
            arg_entries.push((ev.arg_name.to_owned(), json!(ev.arg)));
        }
        if ev.trace_id != 0 {
            arg_entries.push(("trace_id".to_owned(), json!(ev.trace_id)));
        }
        let args = serde_json::Value::Object(arg_entries);
        out.push(match ev.phase {
            Phase::Span => json!({
                "name": ev.name, "cat": ev.cat, "ph": "X",
                "ts": ts, "dur": ev.dur_ns as f64 / 1e3,
                "pid": 1, "tid": tid, "args": args,
            }),
            Phase::Instant => json!({
                "name": ev.name, "cat": ev.cat, "ph": "i", "s": "t",
                "ts": ts, "pid": 1, "tid": tid, "args": args,
            }),
        });
    }

    let doc = json!({
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "webml-telemetry",
            "dropped_events": dropped_events(),
        },
    });
    serde_json::to_string_pretty(&doc).expect("trace JSON serializes")
}

/// [`chrome_trace_json`] written to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clear, gpu_span, now_ns, set_enabled, span};

    #[test]
    fn exported_json_has_tracks_and_spans() {
        let _g = crate::test_lock();
        clear();
        set_enabled(true);
        {
            let _s = span("trace.unit_span", "test").with_arg("k", 2.0);
            let t0 = now_ns();
            gpu_span("trace.unit_gpu", t0, t0 + 5_000, "modeled_device_ns", 4_000.0);
        }
        set_enabled(false);
        let text = chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let gpu_meta = events.iter().any(|e| {
            e["ph"] == "M" && e["tid"] == json!(GPU_TID)
                && e["args"]["name"].as_str().unwrap_or("").contains("GPU")
        });
        assert!(gpu_meta, "GPU track metadata present");
        let gpu_ev = events
            .iter()
            .find(|e| e["name"] == "trace.unit_gpu")
            .expect("gpu span exported");
        assert_eq!(gpu_ev["tid"], json!(GPU_TID));
        assert_eq!(gpu_ev["ph"], "X");
        assert_eq!(gpu_ev["args"]["modeled_device_ns"], json!(4_000.0));
        let sp = events
            .iter()
            .find(|e| e["name"] == "trace.unit_span")
            .expect("thread span exported");
        assert_ne!(sp["tid"], json!(GPU_TID), "thread spans stay off the GPU track");
        assert!(sp["dur"].as_f64().unwrap() >= 0.0);
        assert_eq!(sp["args"]["k"], json!(2.0));
    }

    #[test]
    fn trace_id_exported_as_arg_when_present() {
        let _g = crate::test_lock();
        clear();
        set_enabled(true);
        let ctx = crate::RequestCtx::mint();
        {
            let _scope = crate::trace_scope(ctx.trace_id);
            let t0 = now_ns();
            crate::record_span("trace.traced_span", "serve", t0, t0 + 1_000);
            let t1 = now_ns();
            crate::gpu_span_traced("trace.traced_gpu", t1, t1 + 500, "modeled_device_ns", 400.0, ctx.trace_id);
        }
        crate::instant("trace.untraced", "test");
        set_enabled(false);
        let text = chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let traced = events.iter().find(|e| e["name"] == "trace.traced_span").unwrap();
        assert_eq!(traced["args"]["trace_id"], json!(ctx.trace_id));
        let gpu = events.iter().find(|e| e["name"] == "trace.traced_gpu").unwrap();
        assert_eq!(gpu["args"]["trace_id"], json!(ctx.trace_id), "GPU span keeps the id");
        assert_eq!(gpu["args"]["modeled_device_ns"], json!(400.0), "both args coexist");
        let untraced = events.iter().find(|e| e["name"] == "trace.untraced").unwrap();
        assert!(untraced["args"].get("trace_id").is_none(), "no id arg when untraced");
    }
}
