//! Deterministic synthetic datasets for examples, tests and benchmarks.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The XOR problem (4 examples, optionally jittered copies).
pub fn xor(copies: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = [([0.0f32, 0.0], 0.0f32), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..copies.max(1) {
        for (x, y) in base {
            xs.push(x[0] + rng.gen::<f32>() * 0.05);
            xs.push(x[1] + rng.gen::<f32>() * 0.05);
            ys.push(y);
        }
    }
    Dataset::new(xs, vec![2], ys, vec![1]).expect("consistent construction")
}

/// Noisy samples of `y = slope * x + intercept`.
pub fn linear(n: usize, slope: f32, intercept: f32, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let x = i as f32 / n.max(1) as f32 * 10.0;
        xs.push(x);
        ys.push(slope * x + intercept + (rng.gen::<f32>() - 0.5) * 2.0 * noise);
    }
    Dataset::new(xs, vec![1], ys, vec![1]).expect("consistent construction")
}

/// Two interleaved spirals, one-hot labels — the classic playground task.
pub fn spiral(n_per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for class in 0..2 {
        for i in 0..n_per_class {
            let r = i as f32 / n_per_class as f32 * 4.0;
            let t = 1.75 * r + class as f32 * std::f32::consts::PI;
            xs.push(r * t.sin() + rng.gen::<f32>() * 0.1);
            xs.push(r * t.cos() + rng.gen::<f32>() * 0.1);
            ys.push(if class == 0 { 1.0 } else { 0.0 });
            ys.push(if class == 1 { 1.0 } else { 0.0 });
        }
    }
    Dataset::new(xs, vec![2], ys, vec![2]).expect("consistent construction")
}

/// MNIST-like synthetic digits: each class has a random prototype image;
/// samples are prototypes plus pixel noise. Labels are one-hot.
///
/// This preserves what matters for runtime/learning-behaviour experiments —
/// image-shaped inputs, class structure, learnable signal — without
/// shipping the real dataset.
pub fn mnist_like(n: usize, classes: usize, side: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pixels = side * side;
    // Class prototypes.
    let prototypes: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..pixels).map(|_| if rng.gen::<f32>() < 0.25 { 1.0 } else { 0.0 }).collect())
        .collect();
    let mut xs = Vec::with_capacity(n * pixels);
    let mut ys = Vec::with_capacity(n * classes);
    for i in 0..n {
        let class = i % classes;
        for &p in &prototypes[class] {
            let noise = (rng.gen::<f32>() - 0.5) * 0.4;
            xs.push((p + noise).clamp(0.0, 1.0));
        }
        for c in 0..classes {
            ys.push(if c == class { 1.0 } else { 0.0 });
        }
    }
    Dataset::new(xs, vec![side, side, 1], ys, vec![classes]).expect("consistent construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_has_four_examples_per_copy() {
        let d = xor(3, 1);
        assert_eq!(d.len(), 12);
        assert_eq!(d.x_shape(), &[2]);
    }

    #[test]
    fn linear_tracks_slope() {
        let d = linear(100, 2.0, 1.0, 0.0, 1);
        assert_eq!(d.len(), 100);
        let (xs, ys) = {
            use std::sync::Arc;
            let e = webml_core::Engine::new();
            e.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
            let (x, y) = d.to_tensors(&e).unwrap();
            (x.to_f32_vec().unwrap(), y.to_f32_vec().unwrap())
        };
        for (x, y) in xs.iter().zip(&ys) {
            assert!((y - (2.0 * x + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn spiral_one_hot_labels() {
        let d = spiral(10, 2);
        assert_eq!(d.len(), 20);
        assert_eq!(d.y_shape(), &[2]);
    }

    #[test]
    fn mnist_like_shapes_and_determinism() {
        let a = mnist_like(20, 10, 8, 5);
        let b = mnist_like(20, 10, 8, 5);
        assert_eq!(a.len(), 20);
        assert_eq!(a.x_shape(), &[8, 8, 1]);
        assert_eq!(a.y_shape(), &[10]);
        let e = {
            use std::sync::Arc;
            let e = webml_core::Engine::new();
            e.register_backend("cpu", Arc::new(webml_core::cpu::CpuBackend::new()), 1);
            e
        };
        let (xa, _) = a.to_tensors(&e).unwrap();
        let (xb, _) = b.to_tensors(&e).unwrap();
        assert_eq!(xa.to_f32_vec().unwrap(), xb.to_f32_vec().unwrap());
    }
}
