//! # webml-data
//!
//! Data utilities for the full ML workflow the paper's future-work section
//! calls for: in-memory datasets with batching, deterministic synthetic
//! dataset generators, and simulated browser sensors (webcam, microphone) —
//! the on-device data sources of paper Sec 2.2.

#![warn(missing_docs)]

pub mod dataset;
pub mod sensors;
pub mod synthetic;

pub use dataset::Dataset;
pub use sensors::{Microphone, Webcam};
