//! Simulated browser sensors (paper Sec 2.2: "standardized access to
//! various components of device hardware such as the web camera and
//! microphone ... allow easy integration between ML models and sensor
//! data").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webml_core::{Engine, Result, Tensor};

/// A simulated webcam producing RGB frames with a moving bright blob over a
/// noisy background — enough structure to exercise image models end to end.
pub struct Webcam {
    width: usize,
    height: usize,
    frame_index: u64,
    rng: StdRng,
}

impl Webcam {
    /// A webcam with the given frame size.
    pub fn new(width: usize, height: usize, seed: u64) -> Webcam {
        Webcam { width, height, frame_index: 0, rng: StdRng::seed_from_u64(seed) }
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Capture the next frame as interleaved RGB bytes (`h * w * 3`).
    pub fn capture(&mut self) -> Vec<u8> {
        let t = self.frame_index as f32 * 0.2;
        self.frame_index += 1;
        // The blob orbits the frame center.
        let cx = self.width as f32 * (0.5 + 0.3 * t.cos());
        let cy = self.height as f32 * (0.5 + 0.3 * t.sin());
        let radius = (self.width.min(self.height) as f32) * 0.15;
        let mut frame = Vec::with_capacity(self.width * self.height * 3);
        for y in 0..self.height {
            for x in 0..self.width {
                let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                let blob = ((1.0 - d / radius).max(0.0) * 255.0) as u8;
                let noise = self.rng.gen_range(0..30u8);
                frame.push(blob.saturating_add(noise));
                frame.push(blob / 2 + noise);
                frame.push(noise);
            }
        }
        frame
    }

    /// Capture straight into a `[1, h, w, 3]` float tensor
    /// (`tf.browser.fromPixels(webcam)`).
    ///
    /// # Errors
    /// Propagates tensor-creation errors.
    pub fn capture_tensor(&mut self, engine: &Engine) -> Result<Tensor> {
        let (h, w) = (self.height, self.width);
        let frame = self.capture();
        engine.from_pixels(&frame, h, w, 3)
    }
}

/// A simulated microphone producing labelled waveforms: each "command"
/// class is a distinct fundamental frequency plus noise — the structure a
/// speech-commands model needs.
pub struct Microphone {
    sample_rate: usize,
    rng: StdRng,
}

impl Microphone {
    /// A microphone at the given sample rate.
    pub fn new(sample_rate: usize, seed: u64) -> Microphone {
        Microphone { sample_rate, rng: StdRng::seed_from_u64(seed) }
    }

    /// Record `samples` of a given command class (0-based). Classes map to
    /// fundamentals 200 Hz, 400 Hz, 600 Hz, ...
    pub fn record_command(&mut self, class: usize, samples: usize) -> Vec<f32> {
        let freq = 200.0 * (class + 1) as f32;
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = i as f32 / self.sample_rate as f32;
            let tone = (2.0 * std::f32::consts::PI * freq * t).sin();
            let harmonic = 0.3 * (4.0 * std::f32::consts::PI * freq * t).sin();
            let noise = (self.rng.gen::<f32>() - 0.5) * 0.1;
            out.push(tone + harmonic + noise);
        }
        out
    }

    /// A crude magnitude "spectrogram": energies of `bins` frequency probes
    /// over `frames` windows — enough for a tiny audio classifier.
    pub fn spectrogram(&mut self, class: usize, frames: usize, bins: usize) -> Vec<f32> {
        let window = 128;
        let wave = self.record_command(class, frames * window);
        let mut spec = Vec::with_capacity(frames * bins);
        for f in 0..frames {
            let chunk = &wave[f * window..(f + 1) * window];
            for b in 0..bins {
                let probe = 100.0 * (b + 1) as f32;
                let (mut re, mut im) = (0.0f32, 0.0f32);
                for (i, &s) in chunk.iter().enumerate() {
                    let t = i as f32 / self.sample_rate as f32;
                    let phase = 2.0 * std::f32::consts::PI * probe * t;
                    re += s * phase.cos();
                    im += s * phase.sin();
                }
                spec.push((re * re + im * im).sqrt() / window as f32);
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    #[test]
    fn webcam_frames_have_right_size_and_vary() {
        let mut cam = Webcam::new(32, 24, 1);
        let a = cam.capture();
        let b = cam.capture();
        assert_eq!(a.len(), 32 * 24 * 3);
        assert_ne!(a, b, "the blob moves between frames");
    }

    #[test]
    fn webcam_tensor_shape() {
        let e = webml_core::Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        let mut cam = Webcam::new(16, 8, 2);
        let t = cam.capture_tensor(&e).unwrap();
        assert_eq!(t.dims(), &[1, 8, 16, 3]);
    }

    #[test]
    fn microphone_classes_differ_spectrally() {
        let mut mic = Microphone::new(16_000, 3);
        let a = mic.spectrogram(0, 4, 8);
        let b = mic.spectrogram(2, 4, 8);
        assert_eq!(a.len(), 32);
        // Different fundamentals concentrate energy in different bins.
        let peak = |s: &[f32]| {
            s[..8].iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1)).map(|(i, _)| i).unwrap()
        };
        assert_ne!(peak(&a), peak(&b));
    }
}
