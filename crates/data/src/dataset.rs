//! An in-memory dataset with shuffling and batching.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use webml_core::{Engine, Error, Result, Shape, Tensor};

/// Feature/label pairs held on the host, materialized into tensors batch by
/// batch.
#[derive(Debug, Clone)]
pub struct Dataset {
    xs: Vec<f32>,
    ys: Vec<f32>,
    x_shape: Vec<usize>,
    y_shape: Vec<usize>,
    len: usize,
}

impl Dataset {
    /// Create a dataset; `x_shape`/`y_shape` are per-example shapes.
    ///
    /// # Errors
    /// Fails when buffer lengths are inconsistent.
    pub fn new(xs: Vec<f32>, x_shape: Vec<usize>, ys: Vec<f32>, y_shape: Vec<usize>) -> Result<Dataset> {
        let x_size: usize = x_shape.iter().product();
        let y_size: usize = y_shape.iter().product();
        if x_size == 0 || y_size == 0 {
            return Err(Error::invalid("Dataset", "per-example shapes must be non-empty"));
        }
        if !xs.len().is_multiple_of(x_size) || !ys.len().is_multiple_of(y_size) {
            return Err(Error::invalid("Dataset", "buffer lengths do not divide example sizes"));
        }
        let len = xs.len() / x_size;
        if ys.len() / y_size != len {
            return Err(Error::invalid("Dataset", "xs and ys disagree on example count"));
        }
        Ok(Dataset { xs, ys, x_shape, y_shape, len })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-example feature shape.
    pub fn x_shape(&self) -> &[usize] {
        &self.x_shape
    }

    /// Per-example label shape.
    pub fn y_shape(&self) -> &[usize] {
        &self.y_shape
    }

    /// Shuffle examples in place, deterministically.
    pub fn shuffle(&mut self, seed: u64) {
        let mut order: Vec<usize> = (0..self.len).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let x_size: usize = self.x_shape.iter().product();
        let y_size: usize = self.y_shape.iter().product();
        let mut xs = Vec::with_capacity(self.xs.len());
        let mut ys = Vec::with_capacity(self.ys.len());
        for &i in &order {
            xs.extend_from_slice(&self.xs[i * x_size..(i + 1) * x_size]);
            ys.extend_from_slice(&self.ys[i * y_size..(i + 1) * y_size]);
        }
        self.xs = xs;
        self.ys = ys;
    }

    /// Materialize the whole dataset as `(x, y)` tensors.
    ///
    /// # Errors
    /// Propagates tensor-creation errors.
    pub fn to_tensors(&self, engine: &Engine) -> Result<(Tensor, Tensor)> {
        let mut xd = vec![self.len];
        xd.extend_from_slice(&self.x_shape);
        let mut yd = vec![self.len];
        yd.extend_from_slice(&self.y_shape);
        Ok((
            engine.tensor(self.xs.clone(), Shape::new(xd))?,
            engine.tensor(self.ys.clone(), Shape::new(yd))?,
        ))
    }

    /// Materialize one batch `[start, start+size)` as tensors.
    ///
    /// # Errors
    /// Fails when the range exceeds the dataset.
    pub fn batch(&self, engine: &Engine, start: usize, size: usize) -> Result<(Tensor, Tensor)> {
        // checked: `start + size` (and the element offsets below) can wrap
        // on adversarial inputs, turning the bounds check into a slice panic.
        let end = start
            .checked_add(size)
            .filter(|&end| end <= self.len)
            .ok_or_else(|| Error::invalid("Dataset.batch", "batch exceeds dataset length"))?;
        let x_size: usize = self.x_shape.iter().product();
        let y_size: usize = self.y_shape.iter().product();
        let (x_lo, x_hi, y_lo, y_hi) = (|| {
            Some((
                start.checked_mul(x_size)?,
                end.checked_mul(x_size)?,
                start.checked_mul(y_size)?,
                end.checked_mul(y_size)?,
            ))
        })()
        .ok_or_else(|| Error::invalid("Dataset.batch", "batch element range overflows"))?;
        let mut xd = vec![size];
        xd.extend_from_slice(&self.x_shape);
        let mut yd = vec![size];
        yd.extend_from_slice(&self.y_shape);
        Ok((
            engine.tensor(self.xs[x_lo..x_hi].to_vec(), Shape::new(xd))?,
            engine.tensor(self.ys[y_lo..y_hi].to_vec(), Shape::new(yd))?,
        ))
    }

    /// Split off the last `fraction` of examples as a validation set.
    /// `fraction` is clamped to `[0, 1]` (NaN behaves as 0).
    pub fn split(mut self, fraction: f64) -> (Dataset, Dataset) {
        let fraction = if fraction.is_nan() { 0.0 } else { fraction.clamp(0.0, 1.0) };
        let n_val = (((self.len as f64) * fraction).round() as usize).min(self.len);
        let n_train = self.len - n_val;
        let x_size: usize = self.x_shape.iter().product();
        let y_size: usize = self.y_shape.iter().product();
        let val = Dataset {
            xs: self.xs.split_off(n_train * x_size),
            ys: self.ys.split_off(n_train * y_size),
            x_shape: self.x_shape.clone(),
            y_shape: self.y_shape.clone(),
            len: n_val,
        };
        self.len = n_train;
        (self, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn tiny() -> Dataset {
        Dataset::new(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![2],
            vec![0.0, 1.0, 2.0],
            vec![1],
        )
        .unwrap()
    }

    #[test]
    fn length_and_shapes() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.x_shape(), &[2]);
    }

    #[test]
    fn inconsistent_lengths_error() {
        assert!(Dataset::new(vec![1.0; 5], vec![2], vec![0.0; 2], vec![1]).is_err());
        assert!(Dataset::new(vec![1.0; 4], vec![2], vec![0.0; 3], vec![1]).is_err());
    }

    #[test]
    fn batch_extracts_rows() {
        let e = engine();
        let d = tiny();
        let (x, y) = d.batch(&e, 1, 2).unwrap();
        assert_eq!(x.to_f32_vec().unwrap(), vec![3.0, 4.0, 5.0, 6.0]);
        assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 2.0]);
        assert!(d.batch(&e, 2, 2).is_err());
    }

    #[test]
    fn shuffle_is_deterministic_and_pairs_stay_aligned() {
        let mut a = tiny();
        let mut b = tiny();
        a.shuffle(9);
        b.shuffle(9);
        assert_eq!(a.xs, b.xs);
        // Each y must still follow its x (x = [2k+1, 2k+2] ↔ y = k).
        for i in 0..a.len() {
            let x0 = a.xs[i * 2];
            let y = a.ys[i];
            assert_eq!(y, (x0 - 1.0) / 2.0);
        }
    }

    #[test]
    fn split_fractions() {
        let d = tiny();
        let (train, val) = d.split(1.0 / 3.0);
        assert_eq!(train.len(), 2);
        assert_eq!(val.len(), 1);
        assert_eq!(val.xs, vec![5.0, 6.0]);
    }

    #[test]
    fn split_zero_and_one() {
        let (train, val) = tiny().split(0.0);
        assert_eq!((train.len(), val.len()), (3, 0));
        let (train, val) = tiny().split(1.0);
        assert_eq!((train.len(), val.len()), (0, 3));
        assert_eq!(val.xs.len(), 6);
    }

    #[test]
    fn split_out_of_range_fractions_clamp_instead_of_panicking() {
        let (train, val) = tiny().split(2.5);
        assert_eq!((train.len(), val.len()), (0, 3));
        let (train, val) = tiny().split(-0.5);
        assert_eq!((train.len(), val.len()), (3, 0));
        let (train, val) = tiny().split(f64::INFINITY);
        assert_eq!((train.len(), val.len()), (0, 3));
    }

    #[test]
    fn split_nan_fraction_keeps_everything_in_train() {
        let (train, val) = tiny().split(f64::NAN);
        assert_eq!((train.len(), val.len()), (3, 0));
        assert_eq!(train.xs.len(), 6);
    }

    #[test]
    fn batch_adversarial_bounds_error_instead_of_panicking() {
        let e = engine();
        let d = tiny();
        // start + size wraps usize: must be an error, not a slice panic.
        assert!(d.batch(&e, usize::MAX, 2).is_err());
        assert!(d.batch(&e, 2, usize::MAX).is_err());
        assert!(d.batch(&e, usize::MAX / 2 + 1, usize::MAX / 2 + 1).is_err());
        // Healthy full-range batch still works.
        let (x, _) = d.batch(&e, 0, 3).unwrap();
        assert_eq!(x.to_f32_vec().unwrap().len(), 6);
    }
}
