//! # webml-webgpu-sim
//!
//! A software simulation of the WebGPU-class compute API the paper's
//! future-work section (Sec 4.3) predicts: "general purpose parallel
//! programming" in the browser — compute shaders with workgroups, shared
//! memory and storage buffers — closing the gap WebGL's fragment-shader
//! contortions leave open.
//!
//! The simulator mirrors [`webml_webgl_sim`]'s architecture (command queue
//! on a dedicated device thread, fences, seedable fault plans) but models
//! the compute API's distinguishing capabilities:
//!
//! - **Storage buffers** ([`buffer`]) replace float textures: linear,
//!   read-write, no 2-D layout compilation, no texel packing. Quantized
//!   weights live as one-byte codes, like the WebGL `R8` path.
//! - **Compute pipelines** ([`pipeline`]) replace fragment shaders: a
//!   kernel dispatches workgroups whose invocations cooperate through
//!   shared memory. The simulated-time model rewards that cooperation
//!   explicitly: a pipeline declaring `shared_reuse = r` (each loaded
//!   value serves `r` invocations from workgroup shared memory, e.g. a
//!   16×16-tiled matmul) earns `r`-times-higher effective occupancy than
//!   an uncooperative kernel on the same device.
//! - A **command queue** ([`queue`], [`context`]) with the same enqueue/
//!   fence/async-readback discipline as the WebGL simulator, so the
//!   pipelined executor and the serving dispatcher run unchanged on top.
//! - The **same fault vocabulary** as WebGL: [`FaultPlan`] seeds inject
//!   device loss (`device.lost`), pipeline-compile rejection, allocation
//!   OOM and transient readback failures — one seed schedules the same
//!   faults on either rung of the degradation ladder.
//!
//! Dispatch overhead is modeled far below WebGL's draw-call overhead
//! (command encoding without framebuffer binds) and buffer allocation far
//! below texture allocation, which is where most of the measured
//! webgpu-vs-webgl win on small kernels comes from — exactly the paper's
//! prediction for what a compute API buys the browser.

#![warn(missing_docs)]

pub mod buffer;
pub mod context;
pub mod pipeline;
pub mod queue;

pub use buffer::{BufferFormat, StorageBuffer};
pub use context::{
    BufHandle, GpuFenceHandle, GpuMemoryStats, WebGpuConfig, WebGpuContext, WebGpuError,
};
pub use pipeline::ComputePipeline;
pub use queue::WebGpuQueueStats;
// One fault vocabulary across both simulated devices: plans, stats and the
// loss event are the webgl-sim types, so a seed injects the same schedule
// on either rung of the degradation ladder.
pub use webml_webgl_sim::fault::{ContextLossEvent, FaultPlan, FaultState, FaultStats};
pub use webml_webgl_sim::future::ReadFuture;
