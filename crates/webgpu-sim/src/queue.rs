//! The compute command queue and device thread.
//!
//! Same discipline as the WebGL simulator (commands execute strictly in
//! order on a dedicated device thread; fences and readbacks are commands),
//! different cost model: dispatch overhead is a fraction of a draw call's
//! (command encoding, no framebuffer bind), buffer allocation is a
//! fraction of texture allocation, and a pipeline's *shared-memory reuse*
//! multiplies its effective occupancy — the reward real hardware pays for
//! tiling.

use crate::buffer::{BufferFormat, StorageBuffer};
use crate::pipeline::ComputePipeline;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use webml_webgl_sim::future::ReadPromise;

/// Identifier of a device storage buffer.
pub type BufId = u64;

/// Fixed per-dispatch device overhead (command decode, bind groups). A
/// quarter of the WebGL simulator's 8 µs draw-call overhead: compute
/// dispatches skip rasterizer, viewport, and framebuffer state entirely,
/// and bind groups are baked once at pipeline creation rather than
/// re-validated per draw.
pub const DISPATCH_OVERHEAD_NANOS: u64 = 2_000;

/// Simulated driver cost of allocating a fresh storage buffer — far below
/// the 60 µs WebGL texture allocation (no image layout, no sampler state),
/// and avoided entirely when the recycler supplies a buffer.
pub const BUFFER_ALLOC_OVERHEAD_NANOS: u64 = 20_000;

/// Work-granularity divisor of the occupancy model: a dispatch needs about
/// this many element-ops per occupancy unit before it can fill the device.
const OCCUPANCY_WORK_GRAIN: u64 = 2_048;

/// Commands accepted by the device thread, executed strictly in order.
// Dispatch dominates real queues; boxing its fields would cost an
// allocation per dispatch on the hot path.
#[allow(clippy::large_enum_variant)]
pub enum Command {
    /// Upload host values into a new storage buffer.
    Upload {
        /// Destination buffer id.
        buf: BufId,
        /// Values to upload (U8 codes arrive widened).
        data: Vec<f32>,
        /// Element format for byte accounting.
        format: BufferFormat,
    },
    /// Execute a compute pipeline into a fresh output buffer.
    Dispatch {
        /// The pipeline.
        pipeline: ComputePipeline,
        /// Input buffer ids.
        inputs: Vec<BufId>,
        /// Output buffer id (fresh).
        output: BufId,
        /// Injected straggler stall (device ns, also slept). 0 = none.
        stall_ns: u64,
        /// Request trace id active on the submitting thread at enqueue
        /// time (0 = untraced), carried across the thread hop so the GPU
        /// span lands in the issuing request's causal lane.
        trace_id: u64,
    },
    /// Map a buffer for reading (`buffer.mapAsync`), resolving the promise
    /// with the first `len` values.
    MapRead {
        /// Buffer to read.
        buf: BufId,
        /// Number of values wanted.
        len: usize,
        /// Simulated driver pipeline-drain cost for a synchronous map
        /// issued against a busy queue; slept as wall-clock, never device
        /// time, never busy.
        drain_ns: u64,
        /// Completion promise.
        promise: ReadPromise,
    },
    /// Mark a fence as passed once all prior commands completed.
    Fence {
        /// Fence id.
        id: u64,
    },
    /// Release a buffer (returned to the recycler).
    Dispose {
        /// Buffer to release.
        buf: BufId,
    },
    /// The device was lost (`device.lost` resolved): every storage buffer
    /// drops to a host shadow. GPU residency falls to zero; contents stay
    /// readable, and recovery re-uploads lazily.
    LoseDevice,
    /// Stop the device thread.
    Shutdown,
}

/// A free-list of disposed buffers keyed by (length, format), so steady-
/// state inference re-binds buffers instead of re-allocating them — the
/// storage-buffer analogue of the WebGL texture recycler.
#[derive(Default)]
pub struct BufferRecycler {
    enabled: bool,
    free: HashMap<(usize, BufferFormat), Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl BufferRecycler {
    /// A recycler; when disabled every acquire is a miss.
    pub fn new(enabled: bool) -> BufferRecycler {
        BufferRecycler { enabled, ..Default::default() }
    }

    /// Acquire backing storage of `len` elements; `true` when recycled.
    pub fn acquire(&mut self, len: usize, format: BufferFormat) -> (Vec<f32>, bool) {
        if self.enabled {
            if let Some(data) = self.free.get_mut(&(len, format)).and_then(|v| v.pop()) {
                self.hits += 1;
                return (data, true);
            }
        }
        self.misses += 1;
        (vec![0.0; len], false)
    }

    /// Return a buffer's storage to the free list.
    pub fn release(&mut self, data: Vec<f32>, format: BufferFormat) {
        if self.enabled {
            self.free.entry((data.len(), format)).or_default().push(data);
        }
    }

    /// Drop the free pool (device loss, memory pressure).
    pub fn clear(&mut self) {
        self.free.clear();
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// State shared between the host-side context and the device thread.
pub struct DeviceShared {
    /// Buffer registry.
    pub buffers: Mutex<HashMap<BufId, StorageBuffer>>,
    /// Highest fence id that has passed (lock-free poll; also published
    /// under `fence_lock` + `fence_cond` for blocking waits).
    pub last_fence: AtomicU64,
    /// Guards fence-passing notification.
    pub fence_lock: Mutex<()>,
    /// Signalled as each fence passes.
    pub fence_cond: Condvar,
    /// Total modeled device time (the timestamp-query counter).
    pub gpu_nanos: AtomicU64,
    /// Wall-clock ns the device thread spent executing commands (the
    /// utilization numerator; injected drains are idle, not busy).
    pub busy_ns: AtomicU64,
    /// Blocking `wait_fence` calls that actually slept.
    pub fence_waits: AtomicU64,
    /// Total ns hosts spent blocked in `wait_fence`.
    pub fence_wait_ns: AtomicU64,
    /// Synchronous reads that forced a pipeline drain.
    pub drains: AtomicU64,
    /// Total wall-clock ns lost to those drains.
    pub drain_ns: AtomicU64,
    /// Upload/dispatch commands enqueued but not yet executed.
    pub pending: AtomicU64,
    /// Pipelines dispatched.
    pub dispatch_count: AtomicU64,
    /// Bytes resident in device memory.
    pub bytes_gpu: AtomicUsize,
    /// The buffer recycler.
    pub recycler: Mutex<BufferRecycler>,
}

/// Counters of device-queue behaviour, snapshotted without flushing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WebGpuQueueStats {
    /// Wall-clock ns the device thread spent executing commands.
    pub busy_ns: u64,
    /// Blocking `wait_fence` calls that actually slept.
    pub fence_waits: u64,
    /// Total ns hosts spent blocked in `wait_fence`.
    pub fence_wait_ns: u64,
    /// Synchronous reads that forced a pipeline drain.
    pub drains: u64,
    /// Total ns lost to those drains.
    pub drain_ns: u64,
    /// Upload/dispatch commands enqueued but not yet executed.
    pub pending: u64,
}

impl DeviceShared {
    /// Fresh shared state.
    pub fn new(recycling_enabled: bool) -> DeviceShared {
        DeviceShared {
            buffers: Mutex::new(HashMap::new()),
            last_fence: AtomicU64::new(0),
            fence_lock: Mutex::new(()),
            fence_cond: Condvar::new(),
            gpu_nanos: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            fence_waits: AtomicU64::new(0),
            fence_wait_ns: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            drain_ns: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            dispatch_count: AtomicU64::new(0),
            bytes_gpu: AtomicUsize::new(0),
            recycler: Mutex::new(BufferRecycler::new(recycling_enabled)),
        }
    }

    /// Snapshot of queue counters.
    pub fn queue_stats(&self) -> WebGpuQueueStats {
        WebGpuQueueStats {
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            fence_waits: self.fence_waits.load(Ordering::Relaxed),
            fence_wait_ns: self.fence_wait_ns.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            drain_ns: self.drain_ns.load(Ordering::Relaxed),
            pending: self.pending.load(Ordering::SeqCst),
        }
    }
}

/// Effective occupancy of one dispatch on a device with `parallelism`
/// modeled cores: shared-memory reuse multiplies the core count (each
/// staged load feeds `shared_reuse` invocations, so the same bandwidth
/// sustains that many more lanes), bounded below by 1 and above by how
/// much work the dispatch actually has to hand out.
pub fn dispatch_occupancy(parallelism: usize, pipeline: &ComputePipeline) -> u64 {
    let effective = (parallelism as u64).saturating_mul(pipeline.shared_reuse as u64).max(1);
    let work =
        (pipeline.out_len as u64).saturating_mul(pipeline.cost_per_element as u64);
    effective.min((work / OCCUPANCY_WORK_GRAIN).max(1))
}

/// Run the device loop until [`Command::Shutdown`]. Executed on the device
/// thread spawned by [`crate::context::WebGpuContext`].
pub fn device_loop(
    rx: crossbeam::channel::Receiver<Command>,
    shared: Arc<DeviceShared>,
    parallelism: usize,
) {
    // Device-thread utilization window, closed at each fence — the same
    // telemetry contract as the WebGL device thread, so dashboards and the
    // pipelined executor see one gauge regardless of rung.
    let mut window_wall = webml_telemetry::now_ns();
    let mut window_busy = 0u64;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Upload { buf, data, format } => {
                let t0 = webml_telemetry::now_ns();
                let (mut storage, recycled) = shared.recycler.lock().acquire(data.len(), format);
                if !recycled {
                    shared.gpu_nanos.fetch_add(BUFFER_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
                }
                storage.copy_from_slice(&data);
                let b = StorageBuffer { data: storage, format, on_device: true };
                shared.bytes_gpu.fetch_add(b.byte_size(), Ordering::Relaxed);
                shared.buffers.lock().insert(buf, b);
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Command::Dispatch { pipeline, inputs, output, stall_ns, trace_id } => {
                let t0 = webml_telemetry::now_ns();
                if stall_ns > 0 {
                    // An injected straggler: the device clock advances and
                    // the thread really stalls, so the spike shows up in
                    // modeled time and in wall-clock latency alike.
                    shared.gpu_nanos.fetch_add(stall_ns, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_nanos(stall_ns));
                }
                run_pipeline(&shared, pipeline, &inputs, output, parallelism, trace_id);
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Command::MapRead { buf, len, drain_ns, promise } => {
                if drain_ns > 0 {
                    // A blocking map against a busy queue stalls until the
                    // driver drains — caller-visible latency, device idle.
                    shared.drains.fetch_add(1, Ordering::Relaxed);
                    shared.drain_ns.fetch_add(drain_ns, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_nanos(drain_ns));
                }
                let t0 = webml_telemetry::now_ns();
                let buffers = shared.buffers.lock();
                match buffers.get(&buf) {
                    Some(b) => {
                        let data = b.data[..len.min(b.data.len())].to_vec();
                        drop(buffers);
                        promise.complete(Ok(data));
                    }
                    None => {
                        drop(buffers);
                        promise.complete(Err(format!("buffer {buf} does not exist")));
                    }
                }
                shared
                    .busy_ns
                    .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
            }
            Command::Fence { id } => {
                let now = webml_telemetry::now_ns();
                let busy_total = shared.busy_ns.load(Ordering::Relaxed);
                let wall = now.saturating_sub(window_wall);
                if wall > 0 {
                    let util = ((busy_total.saturating_sub(window_busy)) as f64 / wall as f64)
                        .clamp(0.0, 1.0);
                    webml_telemetry::fgauge("webml_device_utilization").set(util);
                    if webml_telemetry::enabled() {
                        webml_telemetry::gpu_instant("device_utilization", "utilization", util);
                    }
                }
                window_wall = now;
                window_busy = busy_total;
                // Publish under the lock so a blocked `wait_fence` cannot
                // miss the store and sleep past the notification.
                let _guard = shared.fence_lock.lock();
                shared.last_fence.store(id, Ordering::SeqCst);
                shared.fence_cond.notify_all();
            }
            Command::Dispose { buf } => {
                // Queue order makes disposal fence-safe: every consumer of
                // this buffer executed before the Dispose.
                let slot = shared.buffers.lock().remove(&buf);
                if let Some(b) = slot {
                    if b.on_device {
                        shared.bytes_gpu.fetch_sub(b.byte_size(), Ordering::Relaxed);
                        shared.recycler.lock().release(b.data, b.format);
                    }
                }
            }
            Command::LoseDevice => {
                // Every resident buffer drops to a host shadow: contents
                // stay readable, device residency falls to zero, and the
                // recycler's free pool is gone with the device.
                shared.recycler.lock().clear();
                let mut buffers = shared.buffers.lock();
                let mut freed = 0usize;
                for b in buffers.values_mut() {
                    if b.on_device {
                        freed += b.byte_size();
                        b.on_device = false;
                    }
                }
                drop(buffers);
                shared.bytes_gpu.fetch_sub(freed, Ordering::Relaxed);
            }
            Command::Shutdown => break,
        }
    }
}

fn run_pipeline(
    shared: &Arc<DeviceShared>,
    pipeline: ComputePipeline,
    inputs: &[BufId],
    output: BufId,
    parallelism: usize,
    trace_id: u64,
) {
    let t0 = Instant::now();
    let tracing = webml_telemetry::enabled();
    let trace_t0 = if tracing { webml_telemetry::now_ns() } else { 0 };
    // Take the inputs out of the registry so the body can borrow them with
    // the lock released; re-upload any host shadows (post-loss recovery).
    let mut taken: Vec<(BufId, StorageBuffer)> = Vec::new();
    {
        let mut buffers = shared.buffers.lock();
        let mut seen = Vec::new();
        for &id in inputs {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            let mut b = buffers.remove(&id).expect("input buffer exists (queue order)");
            if !b.on_device {
                // Lazy re-upload of a shadow: pay the allocation.
                shared.gpu_nanos.fetch_add(BUFFER_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
                b.on_device = true;
                shared.bytes_gpu.fetch_add(b.byte_size(), Ordering::Relaxed);
            }
            taken.push((id, b));
        }
    }

    // Allocate the output (possibly recycled).
    let (mut storage, recycled) =
        shared.recycler.lock().acquire(pipeline.out_len, BufferFormat::F32);
    if !recycled {
        shared.gpu_nanos.fetch_add(BUFFER_ALLOC_OVERHEAD_NANOS, Ordering::Relaxed);
    }
    if tracing {
        webml_telemetry::instant(
            if recycled { "buffer_recycle" } else { "buffer_alloc" },
            "buffer-pool",
        );
    }

    let result = {
        let taken_index: HashMap<BufId, &StorageBuffer> =
            taken.iter().map(|(bid, b)| (*bid, b)).collect();
        let bound: Vec<&[f32]> = inputs
            .iter()
            .map(|id| taken_index.get(id).expect("taken above").data.as_slice())
            .collect();
        (pipeline.body)(&bound)
    };
    assert_eq!(result.len(), pipeline.out_len, "pipeline {} out_len mismatch", pipeline.name);
    storage.copy_from_slice(&result);

    // Return inputs and publish the output.
    let out = StorageBuffer { data: storage, format: BufferFormat::F32, on_device: true };
    let out_bytes = out.byte_size();
    {
        let mut buffers = shared.buffers.lock();
        for (id, b) in taken {
            buffers.insert(id, b);
        }
        buffers.insert(output, out);
    }
    shared.bytes_gpu.fetch_add(out_bytes, Ordering::Relaxed);
    shared.dispatch_count.fetch_add(1, Ordering::Relaxed);
    // Simulated device time: the body runs serially on the device thread,
    // so the measurement is the serial time; divide by the occupancy the
    // dispatch achieves on the modeled device (cores × shared-memory
    // reuse, bounded by available work), plus fixed dispatch overhead.
    let elapsed = t0.elapsed().as_nanos() as u64;
    let occupancy = dispatch_occupancy(parallelism, &pipeline);
    let device_ns = elapsed / occupancy + DISPATCH_OVERHEAD_NANOS;
    shared.gpu_nanos.fetch_add(device_ns, Ordering::Relaxed);
    if tracing {
        webml_telemetry::gpu_span_traced(
            pipeline.name,
            trace_t0,
            webml_telemetry::now_ns(),
            "modeled_device_ns",
            device_ns as f64,
            trace_id,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pipe(out_len: usize, reuse: usize, cost: usize) -> ComputePipeline {
        ComputePipeline::cooperative("T", out_len, 256, reuse, cost, |_| vec![])
    }

    #[test]
    fn occupancy_rewards_shared_reuse() {
        // Large dispatch: tiled kernel gets reuse× the cores.
        let big = 1 << 20;
        assert_eq!(dispatch_occupancy(8, &pipe(big, 1, 64)), 8);
        assert_eq!(dispatch_occupancy(8, &pipe(big, 16, 64)), 128);
    }

    #[test]
    fn occupancy_is_bounded_by_available_work() {
        // A tiny dispatch cannot fill the device no matter the reuse.
        assert_eq!(dispatch_occupancy(64, &pipe(16, 16, 1)), 1);
        // Work bound sits between 1 and the effective core count.
        let o = dispatch_occupancy(64, &pipe(4_096, 16, 2));
        assert!((1..=1_024).contains(&o));
    }

    #[test]
    fn recycler_hits_on_matching_len_and_format() {
        let mut r = BufferRecycler::new(true);
        let (a, hit) = r.acquire(64, BufferFormat::F32);
        assert!(!hit);
        r.release(a, BufferFormat::F32);
        let (_, hit) = r.acquire(64, BufferFormat::F32);
        assert!(hit);
        // Format is part of the key: a U8 request must not get F32 storage.
        let (_, hit) = r.acquire(64, BufferFormat::U8);
        assert!(!hit);
        assert_eq!(r.stats(), (1, 2));
    }

    #[test]
    fn device_loop_runs_a_dispatch() {
        let shared = Arc::new(DeviceShared::new(true));
        let (tx, rx) = crossbeam::channel::unbounded();
        let s2 = shared.clone();
        let t = std::thread::spawn(move || device_loop(rx, s2, 8));
        shared.pending.fetch_add(1, Ordering::SeqCst);
        tx.send(Command::Upload { buf: 1, data: vec![1.0, 2.0, 3.0], format: BufferFormat::F32 })
            .unwrap();
        let double = ComputePipeline::elementwise("Double", 3, 1, |inp| {
            inp[0].iter().map(|v| v * 2.0).collect()
        });
        shared.pending.fetch_add(1, Ordering::SeqCst);
        tx.send(Command::Dispatch {
            pipeline: double,
            inputs: vec![1],
            output: 2,
            stall_ns: 0,
            trace_id: 0,
        })
        .unwrap();
        let (future, promise) = webml_webgl_sim::future::ReadFuture::pending();
        tx.send(Command::MapRead { buf: 2, len: 3, drain_ns: 0, promise }).unwrap();
        assert_eq!(future.wait().unwrap(), vec![2.0, 4.0, 6.0]);
        assert_eq!(shared.dispatch_count.load(Ordering::Relaxed), 1);
        assert!(shared.gpu_nanos.load(Ordering::Relaxed) >= DISPATCH_OVERHEAD_NANOS);
        tx.send(Command::Shutdown).unwrap();
        t.join().unwrap();
    }
}
