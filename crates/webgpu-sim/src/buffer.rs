//! Storage buffers: the linear, read-write device memory of the compute
//! API. No 2-D texture layout, no texel packing — a tensor is just its
//! flattened values, and shape stays a host-side concern.

/// Element format of a storage buffer, for byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferFormat {
    /// 32-bit float values (4 bytes per element).
    F32,
    /// 8-bit quantization codes (1 byte per element). The simulator holds
    /// the codes widened to f32 for uniform kernel access — like texels
    /// sampled from an `R8` texture — but the allocator, the byte limit
    /// and the injected OOM fault all see one byte per code.
    U8,
}

impl BufferFormat {
    /// Bytes per element in device memory.
    pub fn bytes_per_element(self) -> usize {
        match self {
            BufferFormat::F32 => 4,
            BufferFormat::U8 => 1,
        }
    }
}

/// A device storage buffer (simulated).
pub struct StorageBuffer {
    /// The values. `U8` buffers hold integer codes widened to f32.
    pub data: Vec<f32>,
    /// Element format (drives byte accounting).
    pub format: BufferFormat,
    /// Whether the buffer is resident on the device. After a device loss
    /// the data survives as a host shadow (`on_device = false`) so
    /// readback keeps working and recovery can re-upload lazily.
    pub on_device: bool,
}

impl StorageBuffer {
    /// Device bytes this buffer occupies when resident.
    pub fn byte_size(&self) -> usize {
        self.data.len() * self.format.bytes_per_element()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_by_format() {
        let f = StorageBuffer { data: vec![0.0; 256], format: BufferFormat::F32, on_device: true };
        let q = StorageBuffer { data: vec![0.0; 256], format: BufferFormat::U8, on_device: true };
        assert_eq!(f.byte_size(), 1024);
        assert_eq!(q.byte_size(), 256, "codes cost one byte each");
    }
}
