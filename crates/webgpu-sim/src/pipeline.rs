//! Compute pipelines: the kernel abstraction of the compute API.
//!
//! A fragment shader runs one isolated `main()` per output texel — no
//! shared memory, no scatter. A compute pipeline dispatches *workgroups*
//! whose invocations cooperate: they stage input tiles into workgroup
//! shared memory once and then each invocation reads the staged values
//! many times. The simulator captures that difference in one number,
//! [`ComputePipeline::shared_reuse`]: how many invocations each
//! shared-memory load serves. An uncooperative (elementwise) kernel has
//! reuse 1; a 16×16-tiled matmul has reuse 16 (each staged `a` and `b`
//! value feeds a whole tile row/column). The device's simulated-time
//! model multiplies effective occupancy by this factor, so tiling is
//! rewarded exactly where real hardware rewards it — memory bandwidth.

use std::sync::Arc;

/// Body of a compute pipeline: consumes the (widened-f32) contents of the
/// bound input buffers and produces the output buffer's contents. Runs on
/// the device thread.
pub type PipelineBody = Arc<dyn Fn(&[&[f32]]) -> Vec<f32> + Send + Sync>;

/// A compute pipeline plus its dispatch geometry and cost declaration.
#[derive(Clone)]
pub struct ComputePipeline {
    /// Pipeline name (compile cache key, telemetry span label).
    pub name: &'static str,
    /// Output element count (the output buffer's length).
    pub out_len: usize,
    /// Invocations per workgroup (typically tile area, e.g. 256 for a
    /// 16×16 tile). Purely descriptive in the simulator; the cost model
    /// keys off `shared_reuse`.
    pub workgroup_size: usize,
    /// How many invocations each workgroup-shared-memory load serves.
    /// 1 = no cooperation (elementwise); 16 = a 16-wide tiled kernel.
    pub shared_reuse: usize,
    /// Approximate arithmetic operations per output element, used by the
    /// occupancy model to distinguish tiny dispatches (which cannot fill
    /// the device) from large ones.
    pub cost_per_element: usize,
    /// The kernel body.
    pub body: PipelineBody,
}

impl ComputePipeline {
    /// A cooperative (tiled / shared-memory) pipeline.
    pub fn cooperative(
        name: &'static str,
        out_len: usize,
        workgroup_size: usize,
        shared_reuse: usize,
        cost_per_element: usize,
        body: impl Fn(&[&[f32]]) -> Vec<f32> + Send + Sync + 'static,
    ) -> ComputePipeline {
        ComputePipeline {
            name,
            out_len,
            workgroup_size,
            shared_reuse: shared_reuse.max(1),
            cost_per_element: cost_per_element.max(1),
            body: Arc::new(body),
        }
    }

    /// An uncooperative pipeline: one invocation per output element, no
    /// shared-memory staging (reuse 1) — the compute-API equivalent of a
    /// fragment shader.
    pub fn elementwise(
        name: &'static str,
        out_len: usize,
        cost_per_element: usize,
        body: impl Fn(&[&[f32]]) -> Vec<f32> + Send + Sync + 'static,
    ) -> ComputePipeline {
        ComputePipeline::cooperative(name, out_len, 64, 1, cost_per_element, body)
    }
}

impl std::fmt::Debug for ComputePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePipeline")
            .field("name", &self.name)
            .field("out_len", &self.out_len)
            .field("workgroup_size", &self.workgroup_size)
            .field("shared_reuse", &self.shared_reuse)
            .field("cost_per_element", &self.cost_per_element)
            .finish()
    }
}
