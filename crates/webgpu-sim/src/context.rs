//! The host-side context over the simulated WebGPU device: buffer upload
//! and mapping, pipeline dispatch, fences, timestamp queries, and the
//! seeded fault surface (device loss, pipeline-compile rejection,
//! allocation OOM, transient readbacks).

use crate::buffer::BufferFormat;
use crate::pipeline::ComputePipeline;
use crate::queue::{device_loop, BufId, Command, DeviceShared, WebGpuQueueStats};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::fault::{ContextLossEvent, FaultPlan, FaultState, FaultStats};
use webml_webgl_sim::future::ReadFuture;

/// Context configuration. The compute API needs far fewer knobs than the
/// WebGL substrate: no texel packing, no 2-D layout squeezing, no paging
/// (storage buffers page at driver level; the simulator models OOM via
/// fault plans instead).
#[derive(Debug, Clone, Copy)]
pub struct WebGpuConfig {
    /// Recycle disposed storage buffers by (length, format).
    pub recycling: bool,
}

impl Default for WebGpuConfig {
    fn default() -> Self {
        WebGpuConfig { recycling: true }
    }
}

/// Memory/diagnostic gauges of the device.
#[derive(Debug, Clone, Default)]
pub struct GpuMemoryStats {
    /// Bytes resident in device storage buffers.
    pub bytes_in_gpu: usize,
    /// Live buffer handles (excluding the recycler's free pool).
    pub num_buffers: usize,
    /// Pipelines dispatched so far.
    pub dispatches_run: u64,
    /// Buffer-recycler hits.
    pub recycler_hits: u64,
    /// Buffer-recycler misses.
    pub recycler_misses: u64,
    /// Buffers surviving only as host shadows (post-device-loss).
    pub host_shadow_buffers: usize,
}

/// Errors from context operations — the compute-API analogue of the WebGL
/// simulator's `GlError`, with the same transient/permanent split so the
/// engine's degradation ladder classifies both rungs identically.
#[derive(Debug, Clone, PartialEq)]
pub enum WebGpuError {
    /// The device does not expose a WebGPU-class compute API at all
    /// (older iOS/Android profiles) — callers fall down the ladder.
    Unsupported {
        /// Device name.
        device: String,
    },
    /// Readback failed.
    Read(String),
    /// The device was lost (`device.lost` resolved). All storage buffers
    /// are invalidated; uploads and dispatches fail until the device is
    /// recovered, but host-side shadows remain readable.
    DeviceLost,
    /// Buffer allocation failed against the device's byte budget.
    Oom {
        /// Bytes the allocation asked for.
        requested: usize,
        /// The device's byte budget.
        limit: usize,
    },
    /// The driver rejected a compute pipeline at creation time.
    PipelineCompile {
        /// Name of the rejected pipeline.
        pipeline: String,
    },
    /// A readback failed transiently; retrying is expected to succeed.
    TransientReadback {
        /// 1-based count of injected readback failures so far.
        attempt: u32,
    },
}

impl WebGpuError {
    /// Whether retrying the same operation on the same context can succeed
    /// without intervention (only transient readbacks qualify).
    pub fn is_transient(&self) -> bool {
        matches!(self, WebGpuError::TransientReadback { .. })
    }
}

impl std::fmt::Display for WebGpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WebGpuError::Unsupported { device } => {
                write!(f, "device {device} exposes no WebGPU-class compute API")
            }
            WebGpuError::Read(e) => write!(f, "readback failed: {e}"),
            WebGpuError::DeviceLost => write!(f, "webgpu device lost"),
            WebGpuError::Oom { requested, limit } => {
                write!(f, "buffer allocation of {requested} bytes failed (limit {limit} bytes)")
            }
            WebGpuError::PipelineCompile { pipeline } => {
                write!(f, "pipeline creation failed for {pipeline}")
            }
            WebGpuError::TransientReadback { attempt } => {
                write!(f, "transient readback failure (injected failure #{attempt})")
            }
        }
    }
}

impl std::error::Error for WebGpuError {}

/// A handle to a device storage buffer holding one logical tensor.
/// Linear memory: no layout, just the element count and format.
#[derive(Debug, Clone, PartialEq)]
pub struct BufHandle {
    /// Device buffer id.
    pub id: BufId,
    /// Logical element count.
    pub len: usize,
    /// Element format.
    pub format: BufferFormat,
}

/// A fence inserted into the command queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuFenceHandle(u64);

impl GpuFenceHandle {
    /// The raw fence id, for embedding in backend-neutral tokens.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`GpuFenceHandle::raw`].
    pub fn from_raw(id: u64) -> GpuFenceHandle {
        GpuFenceHandle(id)
    }
}

/// The host-side context over a simulated WebGPU device.
pub struct WebGpuContext {
    profile: DeviceProfile,
    config: WebGpuConfig,
    shared: Arc<DeviceShared>,
    sender: Sender<Command>,
    next_buf: AtomicU64,
    next_fence: AtomicU64,
    timing_mark: AtomicU64,
    faults: FaultState,
    /// Created-pipeline cache by name: creation is attempted on first
    /// dispatch of each pipeline and the result cached, so an injected
    /// compile failure repeats deterministically and a device loss forces
    /// re-creation.
    compiled: Mutex<HashSet<&'static str>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl WebGpuContext {
    /// Create a context on `profile`.
    ///
    /// # Errors
    /// [`WebGpuError::Unsupported`] when the profile exposes no compute
    /// API — callers should fall down the ladder to webgl or cpu.
    pub fn new(profile: DeviceProfile, config: WebGpuConfig) -> Result<WebGpuContext, WebGpuError> {
        WebGpuContext::with_faults(profile, config, FaultPlan::none())
    }

    /// Create a context that injects faults according to `plan` — the same
    /// seedable [`FaultPlan`] vocabulary as the WebGL simulator, evaluated
    /// by the same [`FaultState`] runtime, so one soak seed exercises the
    /// same schedule on either rung.
    ///
    /// # Errors
    /// [`WebGpuError::Unsupported`] when the profile lacks the compute API.
    pub fn with_faults(
        profile: DeviceProfile,
        config: WebGpuConfig,
        plan: FaultPlan,
    ) -> Result<WebGpuContext, WebGpuError> {
        if !profile.has_webgpu {
            return Err(WebGpuError::Unsupported { device: profile.name.clone() });
        }
        let shared = Arc::new(DeviceShared::new(config.recycling));
        let (tx, rx) = crossbeam::channel::unbounded();
        let worker_shared = shared.clone();
        let parallelism = profile.parallelism;
        let worker = std::thread::Builder::new()
            .name("webgpu-device".into())
            .spawn(move || device_loop(rx, worker_shared, parallelism))
            .expect("spawn device thread");
        Ok(WebGpuContext {
            profile,
            config,
            shared,
            sender: tx,
            next_buf: AtomicU64::new(1),
            next_fence: AtomicU64::new(1),
            timing_mark: AtomicU64::new(0),
            faults: FaultState::new(plan),
            compiled: Mutex::new(HashSet::new()),
            worker: Some(worker),
        })
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The context configuration.
    pub fn config(&self) -> &WebGpuConfig {
        &self.config
    }

    /// Per-device epsilon. WebGPU-capable profiles are full-precision, so
    /// this is the standard 1e-7.
    pub fn epsilon(&self) -> f32 {
        self.profile.epsilon()
    }

    /// Upload host values as a new storage buffer.
    ///
    /// # Errors
    /// [`WebGpuError::DeviceLost`] / [`WebGpuError::Oom`] under injected
    /// faults.
    pub fn upload(&self, data: Vec<f32>) -> Result<BufHandle, WebGpuError> {
        self.try_upload(data).map_err(|(e, _)| e)
    }

    /// Like [`upload`](Self::upload), but returns the data on failure so
    /// callers keep a host-side copy instead of losing the values — the
    /// basis of graceful degradation in the backend above.
    ///
    /// # Errors
    /// As [`upload`](Self::upload), with the rejected data attached.
    pub fn try_upload(&self, data: Vec<f32>) -> Result<BufHandle, (WebGpuError, Vec<f32>)> {
        if self.faults.is_lost() {
            return Err((WebGpuError::DeviceLost, data));
        }
        let len = data.len();
        if let Err(e) = self.check_alloc(len * BufferFormat::F32.bytes_per_element()) {
            return Err((e, data));
        }
        let id = self.next_buf.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Upload { buf: id, data, format: BufferFormat::F32 })
            .expect("device thread alive");
        Ok(BufHandle { id, len, format: BufferFormat::F32 })
    }

    /// Upload u8 quantization codes as a one-byte-per-code storage buffer
    /// (4x less device memory than f32), which is what the allocator and
    /// the injected OOM fault see. Pipelines read the codes widened to
    /// f32; the affine dequantization stays in the consuming kernel's
    /// epilogue.
    ///
    /// # Errors
    /// [`WebGpuError::DeviceLost`] / [`WebGpuError::Oom`] under injected
    /// faults.
    pub fn upload_quantized(&self, codes: &[u8]) -> Result<BufHandle, WebGpuError> {
        if self.faults.is_lost() {
            return Err(WebGpuError::DeviceLost);
        }
        self.check_alloc(codes.len() * BufferFormat::U8.bytes_per_element())?;
        let id = self.next_buf.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Upload {
                buf: id,
                data: codes.iter().map(|&c| c as f32).collect(),
                format: BufferFormat::U8,
            })
            .expect("device thread alive");
        Ok(BufHandle { id, len: codes.len(), format: BufferFormat::U8 })
    }

    /// Host-side allocation gate for the injected OOM fault (a real
    /// driver reports buffer-creation failure synchronously). Only runs —
    /// and only drains the queue, for an accurate residency figure — when
    /// the fault plan sets a byte limit. Storage buffers have no paging
    /// tier, so cumulative pressure over the limit always fails.
    fn check_alloc(&self, requested: usize) -> Result<(), WebGpuError> {
        if self.faults.plan().texture_byte_limit.is_none() {
            return Ok(());
        }
        self.flush();
        let resident = self.shared.bytes_gpu.load(Ordering::Relaxed);
        match self.faults.alloc_blocked(requested, resident, false) {
            Some(limit) => Err(WebGpuError::Oom { requested, limit }),
            None => Ok(()),
        }
    }

    /// Enqueue a compute pipeline over `inputs`, returning the output
    /// handle immediately (sub-millisecond) while the device computes.
    ///
    /// # Errors
    /// [`WebGpuError::DeviceLost`], [`WebGpuError::PipelineCompile`] or
    /// [`WebGpuError::Oom`] under injected faults.
    pub fn dispatch(
        &self,
        pipeline: ComputePipeline,
        inputs: &[&BufHandle],
    ) -> Result<BufHandle, WebGpuError> {
        if self.faults.is_lost() {
            return Err(WebGpuError::DeviceLost);
        }
        self.create_pipeline(&pipeline)?;
        let out_len = pipeline.out_len;
        self.check_alloc(out_len * BufferFormat::F32.bytes_per_element())?;
        if let Some(event) = self.faults.before_draw() {
            // The dispatch itself loses the device: invalidate every
            // buffer (the device keeps host shadows) and fire observers.
            self.sender.send(Command::LoseDevice).expect("device thread alive");
            self.compiled.lock().clear();
            self.faults.notify_loss(&event);
            return Err(WebGpuError::DeviceLost);
        }
        let id = self.next_buf.fetch_add(1, Ordering::Relaxed);
        // Straggler injection: decided host-side (seeded, synchronous),
        // paid on the device thread where a throttled GPU would pay it.
        let stall_ns = self.faults.draw_stall().unwrap_or(0);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .send(Command::Dispatch {
                pipeline,
                inputs: inputs.iter().map(|h| h.id).collect(),
                output: id,
                stall_ns,
                trace_id: webml_telemetry::current_trace_id(),
            })
            .expect("device thread alive");
        Ok(BufHandle { id, len: out_len, format: BufferFormat::F32 })
    }

    /// Attempt to create (or fetch from the cache) a compute pipeline.
    fn create_pipeline(&self, pipeline: &ComputePipeline) -> Result<(), WebGpuError> {
        let mut cache = self.compiled.lock();
        if cache.contains(pipeline.name) {
            return Ok(());
        }
        if self.faults.compile_blocked(pipeline.name, self.profile.half_precision_only) {
            return Err(WebGpuError::PipelineCompile { pipeline: pipeline.name.to_string() });
        }
        cache.insert(pipeline.name);
        Ok(())
    }

    /// Blocking readback (`mapAsync` + spin on the queue) — the
    /// `dataSync()` path. When the command queue still has unexecuted
    /// uploads or dispatches, the simulated driver charges the profile's
    /// pipeline-drain penalty as wall-clock latency; synchronize with
    /// [`WebGpuContext::wait_fence`] first to read for free.
    ///
    /// Readback keeps working after a device loss: host shadows of
    /// invalidated buffers remain readable.
    ///
    /// # Errors
    /// [`WebGpuError::Read`] when the buffer does not exist;
    /// [`WebGpuError::TransientReadback`] under injected faults.
    pub fn read_sync(&self, h: &BufHandle) -> Result<Vec<f32>, WebGpuError> {
        let drain_ns = if self.shared.pending.load(Ordering::SeqCst) > 0 {
            self.profile.readback_sync_penalty_ns
        } else {
            0
        };
        self.enqueue_read(h, drain_ns)?.wait().map_err(WebGpuError::Read)
    }

    /// Asynchronous readback — the `data()` path. The future resolves once
    /// the device has executed all prior commands and copied the values.
    pub fn read_async(&self, h: &BufHandle) -> ReadFuture {
        match self.read_async_checked(h) {
            Ok(f) => f,
            Err(e) => {
                let (future, promise) = ReadFuture::pending();
                promise.complete(Err(e.to_string()));
                future
            }
        }
    }

    /// Fallible asynchronous readback: transient faults are reported
    /// synchronously as structured errors so callers can classify and
    /// retry. Asynchronous reads never pay the pipeline drain.
    ///
    /// # Errors
    /// [`WebGpuError::TransientReadback`] under injected faults.
    pub fn read_async_checked(&self, h: &BufHandle) -> Result<ReadFuture, WebGpuError> {
        self.enqueue_read(h, 0)
    }

    fn enqueue_read(&self, h: &BufHandle, drain_ns: u64) -> Result<ReadFuture, WebGpuError> {
        if let Some(attempt) = self.faults.readback_blocked() {
            return Err(WebGpuError::TransientReadback { attempt });
        }
        let (future, promise) = ReadFuture::pending();
        self.sender
            .send(Command::MapRead { buf: h.id, len: h.len, drain_ns, promise })
            .expect("device thread alive");
        Ok(future)
    }

    /// Whether the device is currently lost.
    pub fn is_device_lost(&self) -> bool {
        self.faults.is_lost()
    }

    /// Attempt to recover a lost device (request a new device from the
    /// adapter). Returns whether the device is usable: `true` when it was
    /// not lost, or when the fault plan allows recovery. The pipeline
    /// cache stays cleared after a loss; invalidated buffers re-upload
    /// lazily from their host shadows.
    pub fn restore_device(&self) -> bool {
        if !self.faults.is_lost() {
            return true;
        }
        self.faults.try_restore()
    }

    /// Register an observer for device-loss events — the simulator's
    /// `device.lost` listener.
    pub fn on_device_lost(&self, f: impl Fn(&ContextLossEvent) + Send + Sync + 'static) {
        self.faults.add_observer(Box::new(f));
    }

    /// The fault plan this context was created with.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Number of pipelines in the created-pipeline cache.
    pub fn pipelines_compiled(&self) -> usize {
        self.compiled.lock().len()
    }

    /// Release a buffer back to the recycler.
    pub fn dispose(&self, h: &BufHandle) {
        let _ = self.sender.send(Command::Dispose { buf: h.id });
    }

    /// Insert a fence into the command queue.
    pub fn fence(&self) -> GpuFenceHandle {
        let id = self.next_fence.fetch_add(1, Ordering::Relaxed);
        self.sender.send(Command::Fence { id }).expect("device thread alive");
        GpuFenceHandle(id)
    }

    /// Poll whether a fence has passed.
    pub fn fence_passed(&self, f: GpuFenceHandle) -> bool {
        self.shared.last_fence.load(Ordering::SeqCst) >= f.0
    }

    /// Block until a fence passes. A condvar sleep, not a spin; only
    /// genuine sleeps count in the queue stats.
    pub fn wait_fence(&self, f: GpuFenceHandle) {
        if self.fence_passed(f) {
            return;
        }
        let t0 = webml_telemetry::now_ns();
        let mut guard = self.shared.fence_lock.lock();
        while self.shared.last_fence.load(Ordering::SeqCst) < f.0 {
            self.shared.fence_cond.wait(&mut guard);
        }
        drop(guard);
        self.shared.fence_waits.fetch_add(1, Ordering::Relaxed);
        self.shared
            .fence_wait_ns
            .fetch_add(webml_telemetry::now_ns().saturating_sub(t0), Ordering::Relaxed);
    }

    /// Block until every queued command has executed.
    pub fn flush(&self) {
        self.wait_fence(self.fence());
    }

    /// Snapshot of device-queue counters. Does not flush.
    pub fn queue_stats(&self) -> WebGpuQueueStats {
        self.shared.queue_stats()
    }

    /// Begin a timestamp-query window measuring pure device time.
    pub fn begin_timing(&self) {
        self.flush();
        self.timing_mark.store(self.shared.gpu_nanos.load(Ordering::Relaxed), Ordering::SeqCst);
    }

    /// End the timing window, returning modeled device milliseconds spent
    /// in pipelines (excluding upload/download).
    pub fn end_timing(&self) -> f64 {
        self.flush();
        let now = self.shared.gpu_nanos.load(Ordering::Relaxed);
        (now - self.timing_mark.load(Ordering::SeqCst)) as f64 / 1e6
    }

    /// The cumulative timestamp-query counter: modeled device nanoseconds
    /// since context creation. Does *not* flush.
    pub fn device_nanos(&self) -> u64 {
        self.shared.gpu_nanos.load(Ordering::Relaxed)
    }

    /// Memory and diagnostics snapshot (flushes first for stable numbers).
    pub fn memory(&self) -> GpuMemoryStats {
        self.flush();
        let (recycler_hits, recycler_misses) = self.shared.recycler.lock().stats();
        let buffers = self.shared.buffers.lock();
        GpuMemoryStats {
            bytes_in_gpu: self.shared.bytes_gpu.load(Ordering::Relaxed),
            num_buffers: buffers.len(),
            dispatches_run: self.shared.dispatch_count.load(Ordering::Relaxed),
            recycler_hits,
            recycler_misses,
            host_shadow_buffers: buffers.values().filter(|b| !b.on_device).count(),
        }
    }
}

impl Drop for WebGpuContext {
    fn drop(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ComputePipeline;

    fn ctx() -> WebGpuContext {
        WebGpuContext::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default()).unwrap()
    }

    #[test]
    fn upload_read_round_trip() {
        let c = ctx();
        let h = c.upload(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.read_sync(&h).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn unsupported_profile_is_rejected() {
        for p in [DeviceProfile::ios_safari(), DeviceProfile::android_legacy()] {
            let e = WebGpuContext::new(p, WebGpuConfig::default());
            assert!(matches!(e, Err(WebGpuError::Unsupported { .. })));
        }
    }

    #[test]
    fn dispatch_runs_a_pipeline() {
        let c = ctx();
        let a = c.upload(vec![1.0, 2.0]).unwrap();
        let b = c.upload(vec![10.0, 20.0]).unwrap();
        let add = ComputePipeline::elementwise("Add", 2, 1, |inp| {
            inp[0].iter().zip(inp[1]).map(|(x, y)| x + y).collect()
        });
        let out = c.dispatch(add, &[&a, &b]).unwrap();
        assert_eq!(c.read_sync(&out).unwrap(), vec![11.0, 22.0]);
    }

    #[test]
    fn quantized_upload_is_one_byte_per_code() {
        let c = ctx();
        let codes: Vec<u8> = (0..=255).collect();
        let h = c.upload_quantized(&codes).unwrap();
        assert_eq!(h.format, BufferFormat::U8);
        let vals = c.read_sync(&h).unwrap();
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[255], 255.0);
        c.flush();
        // 256 codes = 256 bytes; an f32 buffer of the same length is 1024.
        let m = c.memory();
        assert_eq!(m.bytes_in_gpu, 256);
    }

    #[test]
    fn shared_memory_model_rewards_tiling() {
        // Two pipelines with identical serial bodies; the cooperative one
        // must be modeled meaningfully faster on the device clock.
        let c = ctx();
        let n = 1usize << 16;
        let a = c.upload(vec![1.0; n]).unwrap();
        let work = |inp: &[&[f32]]| -> Vec<f32> {
            inp[0]
                .iter()
                .map(|&v| {
                    let mut x = v;
                    for _ in 0..64 {
                        x = x * 1.000_1 + 0.1;
                    }
                    x
                })
                .collect()
        };
        c.begin_timing();
        let naive = ComputePipeline::cooperative("Naive", n, 256, 1, 64, work);
        let _ = c.read_sync(&c.dispatch(naive, &[&a]).unwrap()).unwrap();
        let naive_ms = c.end_timing();
        c.begin_timing();
        let tiled = ComputePipeline::cooperative("Tiled", n, 256, 16, 64, work);
        let _ = c.read_sync(&c.dispatch(tiled, &[&a]).unwrap()).unwrap();
        let tiled_ms = c.end_timing();
        assert!(
            tiled_ms * 2.0 < naive_ms,
            "tiled {tiled_ms} ms must be well under naive {naive_ms} ms"
        );
    }

    #[test]
    fn enqueue_returns_before_completion() {
        let c = ctx();
        let a = c.upload(vec![1.0; 256]).unwrap();
        let slow = ComputePipeline::elementwise("Slow", 256, 20_000, |inp| {
            inp[0]
                .iter()
                .map(|&v| {
                    let mut x = v;
                    for _ in 0..20_000 {
                        x = (x * 1.000_001).sin() + 1.0;
                    }
                    x
                })
                .collect()
        });
        let t0 = std::time::Instant::now();
        let out = c.dispatch(slow, &[&a]).unwrap();
        let fence = c.fence();
        let enqueue_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(enqueue_ms < 50.0, "enqueue took {enqueue_ms} ms");
        let vals = c.read_sync(&out).unwrap();
        assert_eq!(vals.len(), 256);
        assert!(c.fence_passed(fence));
    }

    #[test]
    fn device_loss_invalidates_buffers_but_preserves_shadows() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c = WebGpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan::none().lose_context_at(2),
        )
        .unwrap();
        let events = Arc::new(AtomicU64::new(0));
        let ev = events.clone();
        c.on_device_lost(move |e| {
            assert_eq!(e.draws_completed, 1);
            assert!(e.restorable);
            ev.fetch_add(1, Ordering::SeqCst);
        });
        let a = c.upload(vec![1.0, 2.0]).unwrap();
        let double = || {
            ComputePipeline::elementwise("Double", 2, 1, |inp| {
                inp[0].iter().map(|v| v * 2.0).collect()
            })
        };
        let out = c.dispatch(double(), &[&a]).unwrap();
        assert_eq!(c.dispatch(double(), &[&out]), Err(WebGpuError::DeviceLost));
        assert!(c.is_device_lost());
        assert_eq!(events.load(Ordering::SeqCst), 1);
        // Uploads and dispatches fail while lost; reads serve shadows.
        assert!(matches!(c.upload(vec![0.0]), Err(WebGpuError::DeviceLost)));
        assert_eq!(c.read_sync(&a).unwrap(), vec![1.0, 2.0]);
        assert_eq!(c.read_sync(&out).unwrap(), vec![2.0, 4.0]);
        let m = c.memory();
        assert_eq!(m.bytes_in_gpu, 0, "all buffers invalidated");
        assert!(m.host_shadow_buffers >= 2);
        // Recovery: pipelines re-create, shadows re-upload lazily.
        assert_eq!(c.pipelines_compiled(), 0, "pipeline cache cleared on loss");
        assert!(c.restore_device());
        let out2 = c.dispatch(double(), &[&out]).unwrap();
        assert_eq!(c.read_sync(&out2).unwrap(), vec![4.0, 8.0]);
        assert_eq!(c.fault_stats().context_losses, 1);
    }

    #[test]
    fn unrestorable_loss_stays_lost() {
        let c = WebGpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan::none().lose_context_at(1).unrestorable(),
        )
        .unwrap();
        let a = c.upload(vec![1.0]).unwrap();
        let id = ComputePipeline::elementwise("Id", 1, 1, |inp| inp[0].to_vec());
        assert_eq!(c.dispatch(id, &[&a]), Err(WebGpuError::DeviceLost));
        assert!(!c.restore_device());
        assert!(c.is_device_lost());
    }

    #[test]
    fn blocked_pipeline_fails_creation_deterministically() {
        let c = WebGpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan::none().block_shader("Square"),
        )
        .unwrap();
        let a = c.upload(vec![3.0]).unwrap();
        let square = || {
            ComputePipeline::elementwise("Square", 1, 1, |inp| {
                inp[0].iter().map(|v| v * v).collect()
            })
        };
        let cube =
            ComputePipeline::elementwise("Cube", 1, 1, |inp| inp[0].iter().map(|v| v * v * v).collect());
        for _ in 0..3 {
            assert!(matches!(
                c.dispatch(square(), &[&a]),
                Err(WebGpuError::PipelineCompile { ref pipeline }) if pipeline == "Square"
            ));
        }
        assert_eq!(c.read_sync(&c.dispatch(cube, &[&a]).unwrap()).unwrap(), vec![27.0]);
        assert_eq!(c.fault_stats().compile_failures, 3);
        assert_eq!(c.pipelines_compiled(), 1);
    }

    #[test]
    fn buffer_byte_limit_injects_oom() {
        let c = WebGpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan::none().with_texture_byte_limit(32 * 1024),
        )
        .unwrap();
        let _a = c.upload(vec![0.0; 4096]).unwrap(); // 16 KB
        let _b = c.upload(vec![0.0; 4096]).unwrap(); // 32 KB
        let err = c.upload(vec![0.0; 4096]).unwrap_err();
        assert!(matches!(err, WebGpuError::Oom { limit, .. } if limit == 32 * 1024));
        assert_eq!(c.fault_stats().oom_failures, 1);
    }

    #[test]
    fn transient_readback_errors_then_succeeds() {
        let c = WebGpuContext::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGpuConfig::default(),
            FaultPlan::none().with_readback_failures(1.0, 2),
        )
        .unwrap();
        let h = c.upload(vec![5.0]).unwrap();
        assert!(matches!(c.read_sync(&h), Err(WebGpuError::TransientReadback { attempt: 1 })));
        assert!(c.read_sync(&h).unwrap_err().is_transient());
        assert_eq!(c.read_sync(&h).unwrap(), vec![5.0]);
        assert_eq!(c.fault_stats().transient_read_failures, 2);
    }

    #[test]
    fn dispose_recycles_buffers() {
        let c = ctx();
        let h = c.upload(vec![0.0; 64]).unwrap();
        c.flush();
        c.dispose(&h);
        let h2 = c.upload(vec![1.0; 64]).unwrap();
        let m = c.memory();
        assert_eq!(m.recycler_hits, 1, "second same-length upload must recycle");
        assert_eq!(c.read_sync(&h2).unwrap()[0], 1.0);
    }

    #[test]
    fn dispatch_overhead_is_below_webgl_draw_overhead() {
        // The headline claim of the compute API: cheaper command encode.
        const { assert!(crate::queue::DISPATCH_OVERHEAD_NANOS * 2 < 8_000) };
        const { assert!(crate::queue::BUFFER_ALLOC_OVERHEAD_NANOS < 60_000) };
    }
}
