//! Cross-backend fusion integration tests: bitwise equivalence of fused and
//! unfused execution, the MobileNet program-count win, and graceful fallback
//! to unfused kernels under injected shader-compile faults.

use std::sync::Arc;
use webml_backend_cpu::PlainJsBackend;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_bench::harness::{mobilenet_workload, tiny_mobilenet_config};
use webml_core::backend::{BinaryOp, UnaryOp};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine, FusedStep, Tensor};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::FaultPlan;

/// Deterministic pseudo-random values in roughly [-2, 2] (xorshift).
fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0) as f32
        })
        .collect()
}

/// One engine per registered backend family. The webgl profile must be an
/// f32 one (Intel Iris Pro): half-precision-only devices round per texture
/// write, so fused-vs-unfused is only bitwise on float32 textures.
fn engines() -> Vec<(&'static str, Engine)> {
    let cpu = Engine::new();
    cpu.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 1);
    let native = Engine::new();
    native.register_backend("native", Arc::new(NativeBackend::new()), 1);
    let webgl = Engine::new();
    let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default())
        .expect("f32 profile");
    webgl.register_backend("webgl", Arc::new(b), 1);
    vec![("plainjs", cpu), ("native", native), ("webgl", webgl)]
}

const ACTIVATIONS: [Option<UnaryOp>; 6] = [
    None,
    Some(UnaryOp::Relu),
    Some(UnaryOp::Relu6),
    Some(UnaryOp::Sigmoid),
    Some(UnaryOp::Tanh),
    Some(UnaryOp::LeakyRelu(0.2)),
];

/// Run `f` twice on `e` — fused, then with fusion disabled — and assert the
/// two results are bit-identical.
fn assert_fused_bitwise(e: &Engine, label: &str, f: &dyn Fn() -> Tensor) {
    e.set_fusion_enabled(true);
    let fused = f();
    e.set_fusion_enabled(false);
    let unfused = f();
    e.set_fusion_enabled(true);
    assert_eq!(fused.shape(), unfused.shape(), "{label}: shape");
    assert_eq!(
        fused.to_f32_vec().unwrap(),
        unfused.to_f32_vec().unwrap(),
        "{label}: fused output must be bit-identical to the unfused composition"
    );
    fused.dispose();
    unfused.dispose();
}

#[test]
fn fused_matmul_bitwise_across_backends_shapes_activations() {
    for (name, e) in engines() {
        for (ti, &(m, k, n)) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)].iter().enumerate() {
            let a = e.tensor(data(m * k, 11 + ti as u64), vec![m, k]).unwrap();
            let b = e.tensor(data(k * n, 23 + ti as u64), vec![k, n]).unwrap();
            let bias = e.tensor_1d(&data(n, 37 + ti as u64)).unwrap();
            for (ai, act) in ACTIVATIONS.iter().enumerate() {
                for with_bias in [false, true] {
                    let bias_opt = with_bias.then_some(&bias);
                    let label = format!("{name} matmul {m}x{k}x{n} act#{ai} bias={with_bias}");
                    assert_fused_bitwise(&e, &label, &|| {
                        ops::fused_matmul(&a, &b, bias_opt, *act, false, false).unwrap()
                    });
                }
            }
        }
        // Batched rank-3 and transposed operands take distinct shader paths.
        let a = e.tensor(data(2 * 3 * 4, 41), vec![2, 3, 4]).unwrap();
        let b = e.tensor(data(2 * 4 * 5, 43), vec![2, 4, 5]).unwrap();
        let bias = e.tensor_1d(&data(5, 47)).unwrap();
        assert_fused_bitwise(&e, &format!("{name} batched matmul"), &|| {
            ops::fused_matmul(&a, &b, Some(&bias), Some(UnaryOp::Relu6), false, false).unwrap()
        });
        let at = e.tensor(data(4 * 3, 53), vec![4, 3]).unwrap();
        let bt = e.tensor(data(5 * 4, 59), vec![5, 4]).unwrap();
        let bias = e.tensor_1d(&data(5, 61)).unwrap();
        assert_fused_bitwise(&e, &format!("{name} transposed matmul"), &|| {
            ops::fused_matmul(&at, &bt, Some(&bias), Some(UnaryOp::Sigmoid), true, true).unwrap()
        });
    }
}

#[test]
fn fused_conv2d_bitwise_across_backends() {
    for (name, e) in engines() {
        let x = e.tensor(data(5 * 5 * 3, 71), vec![1, 5, 5, 3]).unwrap();
        let w = e.tensor(data(3 * 3 * 3 * 4, 73), vec![3, 3, 3, 4]).unwrap();
        let bias = e.tensor_1d(&data(4, 79)).unwrap();
        for padding in [Padding::Same, Padding::Valid] {
            for strides in [(1, 1), (2, 2)] {
                for act in ACTIVATIONS {
                    for with_bias in [false, true] {
                        let bias_opt = with_bias.then_some(&bias);
                        let label = format!(
                            "{name} conv2d {padding:?} strides={strides:?} bias={with_bias}"
                        );
                        assert_fused_bitwise(&e, &label, &|| {
                            ops::fused_conv2d(&x, &w, bias_opt, act, strides, padding, (1, 1))
                                .unwrap()
                        });
                    }
                }
            }
        }
    }
}

#[test]
fn fused_depthwise_conv2d_bitwise_across_backends() {
    for (name, e) in engines() {
        let x = e.tensor(data(5 * 5 * 2, 83), vec![1, 5, 5, 2]).unwrap();
        let w = e.tensor(data(3 * 3 * 2 * 2, 89), vec![3, 3, 2, 2]).unwrap();
        let bias = e.tensor_1d(&data(4, 97)).unwrap();
        for padding in [Padding::Same, Padding::Valid] {
            for strides in [(1, 1), (2, 2)] {
                for act in ACTIVATIONS {
                    let label = format!("{name} dwconv {padding:?} strides={strides:?}");
                    assert_fused_bitwise(&e, &label, &|| {
                        ops::fused_depthwise_conv2d(
                            &x,
                            &w,
                            Some(&bias),
                            act,
                            strides,
                            padding,
                            (1, 1),
                        )
                        .unwrap()
                    });
                }
            }
        }
    }
}

#[test]
fn fused_elementwise_bitwise_across_backends() {
    for (name, e) in engines() {
        let x = e.tensor(data(2 * 3 * 4, 101), vec![2, 3, 4]).unwrap();
        let row = e.tensor(data(4, 103), vec![4]).unwrap();
        let col = e.tensor(data(3, 107), vec![1, 3, 1]).unwrap();
        let chains: Vec<(&str, Vec<FusedStep>)> = vec![
            ("scale-shift-relu", vec![
                FusedStep::Binary(BinaryOp::Mul, 0),
                FusedStep::Binary(BinaryOp::Add, 1),
                FusedStep::Unary(UnaryOp::Relu),
            ]),
            ("long-unary", vec![
                FusedStep::Unary(UnaryOp::Square),
                FusedStep::Unary(UnaryOp::Sqrt),
                FusedStep::Unary(UnaryOp::Tanh),
                FusedStep::Unary(UnaryOp::Neg),
            ]),
            ("broadcast-mix", vec![
                FusedStep::Binary(BinaryOp::Sub, 1),
                FusedStep::Unary(UnaryOp::Abs),
                FusedStep::Binary(BinaryOp::Maximum, 0),
                FusedStep::Binary(BinaryOp::Mul, 0),
                FusedStep::Unary(UnaryOp::Sigmoid),
            ]),
        ];
        for (cname, steps) in &chains {
            assert_fused_bitwise(&e, &format!("{name} elementwise {cname}"), &|| {
                ops::fused_elementwise(&x, &[&row, &col], steps).unwrap()
            });
        }
    }
}

/// The headline fusion claim: a fused MobileNet inference on the webgl
/// backend issues at least 25% fewer device programs than the unfused
/// composition, with a bit-identical result.
#[test]
fn fused_mobilenet_issues_fewer_webgl_programs() {
    let e = Engine::new();
    let backend = Arc::new(
        WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default())
            .expect("f32 profile"),
    );
    e.register_backend("webgl", backend.clone(), 1);
    let (mut net, input) = mobilenet_workload(&e, tiny_mobilenet_config());

    // Warm inference + program-count delta on a second run, per mode.
    let mut run = |fused: bool| -> (Vec<f32>, u64) {
        e.set_fusion_enabled(fused);
        let warm = net.infer(&input).unwrap();
        let vals = warm.to_f32_vec().unwrap();
        warm.dispose();
        let before = backend.context().memory().programs_run;
        let out = net.infer(&input).unwrap();
        let _ = out.data_sync().unwrap();
        out.dispose();
        (vals, backend.context().memory().programs_run - before)
    };
    let (unfused_vals, unfused_programs) = run(false);
    let (fused_vals, fused_programs) = run(true);

    assert!(
        fused_programs * 4 <= unfused_programs * 3,
        "fused MobileNet must issue >=25% fewer programs: fused={fused_programs} \
         unfused={unfused_programs}"
    );
    assert_eq!(
        fused_vals, unfused_vals,
        "fused MobileNet output must be bit-identical to unfused"
    );
}

/// Blocked fused-shader compilation must degrade to the unfused composition
/// on the same backend — correct results, no surfaced error, and no entry in
/// the engine's degradation ledger (this is a kernel-level fallback, not a
/// backend-level one).
#[test]
fn fused_kernels_fall_back_when_shader_compile_is_blocked() {
    let plan = FaultPlan::none()
        .block_shader("FusedMatMul")
        .block_shader("FusedConv2D")
        .block_shader("FusedDepthwiseConv2D")
        .block_shader("FusedElementwise");
    let e = Engine::new();
    let b = WebGlBackend::with_faults(DeviceProfile::intel_iris_pro(), WebGlConfig::default(), plan)
        .expect("f32 profile");
    e.register_backend("webgl", Arc::new(b), 1);

    let a = e.tensor(data(4 * 6, 211), vec![4, 6]).unwrap();
    let w = e.tensor(data(6 * 5, 223), vec![6, 5]).unwrap();
    let bias = e.tensor_1d(&data(5, 227)).unwrap();
    assert_fused_bitwise(&e, "faulted matmul", &|| {
        ops::fused_matmul(&a, &w, Some(&bias), Some(UnaryOp::Relu), false, false).unwrap()
    });

    let x = e.tensor(data(6 * 6 * 3, 229), vec![1, 6, 6, 3]).unwrap();
    let f = e.tensor(data(3 * 3 * 3 * 4, 233), vec![3, 3, 3, 4]).unwrap();
    let cbias = e.tensor_1d(&data(4, 239)).unwrap();
    assert_fused_bitwise(&e, "faulted conv2d", &|| {
        ops::fused_conv2d(&x, &f, Some(&cbias), Some(UnaryOp::Relu6), (1, 1), Padding::Same, (1, 1))
            .unwrap()
    });

    let dw = e.tensor(data(3 * 3 * 3, 241), vec![3, 3, 3, 1]).unwrap();
    let dbias = e.tensor_1d(&data(3, 251)).unwrap();
    assert_fused_bitwise(&e, "faulted depthwise", &|| {
        ops::fused_depthwise_conv2d(
            &x,
            &dw,
            Some(&dbias),
            Some(UnaryOp::Relu),
            (1, 1),
            Padding::Same,
            (1, 1),
        )
        .unwrap()
    });

    let scale = e.tensor_1d(&data(3, 257)).unwrap();
    assert_fused_bitwise(&e, "faulted elementwise", &|| {
        ops::fused_elementwise(
            &x,
            &[&scale],
            &[FusedStep::Binary(BinaryOp::Mul, 0), FusedStep::Unary(UnaryOp::Relu)],
        )
        .unwrap()
    });

    // A whole model still runs correctly on the faulted device.
    let (mut net, input) = mobilenet_workload(&e, tiny_mobilenet_config());
    let out = net.infer(&input).unwrap();
    e.set_fusion_enabled(false);
    let reference = net.infer(&input).unwrap();
    e.set_fusion_enabled(true);
    assert_eq!(out.to_f32_vec().unwrap(), reference.to_f32_vec().unwrap());

    assert_eq!(e.degradations(), 0, "kernel-level fallback must not log a degradation");
}
