//! **E-gap** (paper Sec 3.9): "we observed a 3-10x gap in performance
//! between WebGL and CUDA. We believe the gap to be due to WebGL's lack of
//! work groups and shared memory access." The simulator reproduces the
//! mechanism: the webgl matmul recomputes every dot product per output
//! (Listing 2), while the native backend's blocked kernel reuses operands
//! through cache/registers. Measured per-thread (both serial on this host),
//! the ratio isolates the algorithmic handicap.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::{ops, Engine};
use webml_webgl_sim::devices::DeviceProfile;

fn webgl_engine() -> Engine {
    let e = Engine::new();
    // A single modeled core: isolates per-thread kernel efficiency.
    let mut profile = DeviceProfile::intel_iris_pro();
    profile.parallelism = 1;
    let backend = WebGlBackend::new(profile, WebGlConfig::default()).unwrap();
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

fn native_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("native", Arc::new(NativeBackend::with_threads("native", 1)), 1);
    e
}

fn matmul_pass(e: &Engine, n: usize) -> usize {
    e.tidy(|| {
        let a = e.rand_uniform([n, n], -1.0, 1.0, 1).unwrap();
        let b = e.rand_uniform([n, n], -1.0, 1.0, 2).unwrap();
        let y = ops::matmul(&a, &b, false, false).unwrap();
        y.data_sync().unwrap().len()
    })
}

fn conv_pass(e: &Engine, side: usize) -> usize {
    e.tidy(|| {
        let x = e.rand_uniform([1, side, side, 16], -1.0, 1.0, 1).unwrap();
        let w = e.rand_uniform([3, 3, 16, 16], -0.5, 0.5, 2).unwrap();
        let y = ops::conv2d(&x, &w, (1, 1), webml_core::conv_util::Padding::Same, (1, 1)).unwrap();
        y.data_sync().unwrap().len()
    })
}

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap_webgl_vs_native_per_thread");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    let gl = webgl_engine();
    let nt = native_engine();
    for &n in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::new("webgl_no_shared_memory", n), &n, |b, &n| {
            b.iter(|| matmul_pass(&gl, n))
        });
        group.bench_with_input(BenchmarkId::new("native_blocked", n), &n, |b, &n| {
            b.iter(|| matmul_pass(&nt, n))
        });
    }
    group.bench_function("conv_webgl_32", |b| b.iter(|| conv_pass(&gl, 32)));
    group.bench_function("conv_native_32", |b| b.iter(|| conv_pass(&nt, 32)));
    group.finish();
}

criterion_group!(benches, bench_gap);
criterion_main!(benches);
