//! **Figures 2 and 3**: the cost of the two readback styles on the webgl
//! backend. `dataSync` blocks the caller for the whole device computation;
//! `data` returns a promise the caller polls while staying responsive. The
//! end-to-end latency is the same; what differs is main-thread availability
//! — quantified by the `async_timeline` binary. This bench tracks the
//! round-trip latencies of both paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use webml_bench::harness::TableBackend;
use webml_core::ops;

fn bench_read_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_fig3_read_styles");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    let engine = TableBackend::WebGlIntegrated.engine();
    let a = engine.rand_uniform([96, 96], -1.0, 1.0, 1).unwrap();

    group.bench_function("dataSync (Figure 2)", |b| {
        b.iter(|| {
            engine.tidy(|| {
                let y = ops::matmul(&a, &a, false, false).unwrap();
                let v = y.data_sync().unwrap();
                v.len()
            })
        })
    });

    group.bench_function("data + poll (Figure 3)", |b| {
        b.iter(|| {
            engine.tidy(|| {
                let y = ops::matmul(&a, &a, false, false).unwrap();
                let fut = y.data().unwrap();
                // The main thread is free here: simulate doing other work
                // until the promise resolves.
                let mut spins = 0u64;
                loop {
                    if let Some(v) = fut.poll() {
                        break v.unwrap().len() + spins as usize;
                    }
                    spins += 1;
                    std::hint::spin_loop();
                }
            })
        })
    });

    // The enqueue itself (no read): sub-millisecond per the paper.
    group.bench_function("op enqueue only", |b| {
        b.iter(|| {
            engine.tidy(|| {
                let y = ops::matmul(&a, &a, false, false).unwrap();
                // Synchronize outside the timed region conceptually; the
                // tidy disposal of a pending tensor is still queue-cheap.
                y.id()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_read_styles);
criterion_main!(benches);
