//! **Table 1** (criterion form): MobileNet v1 single-inference wall time per
//! backend. The `table1` binary prints the paper-style table including the
//! simulated-device-time rows; this bench tracks the measured wall times
//! over code changes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use webml_bench::harness::{mobilenet_workload, time_inference, tiny_mobilenet_config, TableBackend};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_mobilenet_wall");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for backend in TableBackend::all() {
        // The CUDA-class row shares the native backend; skip the duplicate.
        if backend == TableBackend::NativeCudaClass {
            continue;
        }
        let engine = backend.engine();
        let (mut net, input) = mobilenet_workload(&engine, tiny_mobilenet_config());
        group.bench_function(backend.label(), |b| {
            b.iter(|| time_inference(&mut net, &input));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
