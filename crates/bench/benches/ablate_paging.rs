//! **E-page ablation** (paper Sec 4.1.2): automatic paging keeps a leaky
//! application alive past the GPU budget, at the cost of page-in/page-out
//! copies. Measures the throughput cost of running under a tight threshold
//! versus an unconstrained device, and the cost of touching paged tensors.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::{ops, Engine, Tensor};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::pager::PagingPolicy;

fn engine(paging: PagingPolicy) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    config.paging = paging;
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

/// A working set larger than the tight threshold, touched round-robin so
/// the pager keeps moving textures both ways.
fn working_set_pass(_e: &Engine, set: &[Tensor]) -> f32 {
    let mut acc = 0.0;
    for t in set {
        let y = ops::sum(t, None, false).unwrap();
        acc += y.to_scalar().unwrap();
        y.dispose();
    }
    acc
}

fn bench_paging(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_paging");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    let scenarios = [
        ("paging_off_fits", PagingPolicy::disabled()),
        ("paging_on_tight_budget", PagingPolicy { enabled: true, threshold_bytes: 96 * 1024 }),
    ];
    for (label, policy) in scenarios {
        let e = engine(policy);
        // ~512 KB working set (8 tensors x 16K floats).
        let set: Vec<Tensor> =
            (0..8).map(|i| e.fill([16_384], i as f32, webml_core::DType::F32).unwrap()).collect();
        group.bench_function(label, |b| b.iter(|| working_set_pass(&e, &set)));
    }
    group.finish();
}

criterion_group!(benches, bench_paging);
criterion_main!(benches);
