//! **E-map ablation** (paper Sec 4.1): the logical→physical layout
//! optimization — squeezing unit dimensions out of the generated accessors
//! (`getA(a,b,c,d)` ignoring `a` and `c` for a 1x3x1x2 tensor) — which the
//! paper credits with a 1.3x average speedup. Squeezed vs naive accessor
//! math on unit-dim-heavy broadcast workloads.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::{ops, Engine};
use webml_webgl_sim::devices::DeviceProfile;

fn engine(squeeze: bool) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    config.squeeze_layout = squeeze;
    // Broadcast programs use the coordinate accessors this ablation
    // targets; packing is orthogonal, leave it default.
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

/// Broadcast-heavy workload over shapes with unit dims (the paper's
/// 1x3x1x2 pattern, scaled up): every sample goes through the layout's
/// accessor math.
fn unit_dim_pass(e: &Engine) -> usize {
    e.tidy(|| {
        let x = e.rand_uniform([1, 96, 1, 64], -1.0, 1.0, 1).unwrap();
        let scale = e.rand_uniform([1, 96, 1, 1], 0.5, 1.5, 2).unwrap();
        let bias = e.rand_uniform([1, 1, 1, 64], -0.5, 0.5, 3).unwrap();
        let y = ops::add(&ops::mul(&x, &scale).unwrap(), &bias).unwrap();
        let z = ops::mul(&y, &scale).unwrap();
        let w = ops::add(&z, &bias).unwrap();
        w.data_sync().unwrap().len()
    })
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_layout_squeeze");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    for squeeze in [false, true] {
        let label = if squeeze { "squeezed_logical_map" } else { "naive_full_rank_map" };
        let e = engine(squeeze);
        group.bench_function(label, |b| b.iter(|| unit_dim_pass(&e)));
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
