//! **E-pack ablation** (paper Sec 3.9): texel packing — storing floats in
//! all 4 RGBA channels instead of only R — gave TensorFlow.js a 1.3–1.4x
//! speedup on PoseNet. Here: a PoseNet-style conv stack plus a matmul chain
//! on the webgl backend, packing on vs off.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine};
use webml_webgl_sim::devices::DeviceProfile;

fn engine(packing: bool) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    config.packing = packing;
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

/// A PoseNet-ish stack: strided convs + element-wise activations.
fn posenet_like_pass(e: &Engine) -> usize {
    e.tidy(|| {
        let x = e.rand_uniform([1, 64, 64, 3], -1.0, 1.0, 1).unwrap();
        let w1 = e.rand_uniform([3, 3, 3, 8], -0.5, 0.5, 2).unwrap();
        let w2 = e.rand_uniform([3, 3, 8, 16], -0.5, 0.5, 3).unwrap();
        let y = ops::conv2d(&x, &w1, (2, 2), Padding::Same, (1, 1)).unwrap();
        let y = ops::relu6(&y).unwrap();
        let y = ops::conv2d(&y, &w2, (2, 2), Padding::Same, (1, 1)).unwrap();
        let y = ops::relu6(&y).unwrap();
        let y = ops::add(&y, &y).unwrap();
        y.data_sync().unwrap().len()
    })
}

fn matmul_chain_pass(e: &Engine) -> usize {
    e.tidy(|| {
        let a = e.rand_uniform([96, 96], -1.0, 1.0, 4).unwrap();
        let mut y = ops::matmul(&a, &a, false, false).unwrap();
        for _ in 0..3 {
            y = ops::matmul(&y, &a, false, false).unwrap();
        }
        y.data_sync().unwrap().len()
    })
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_packing");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    for packing in [false, true] {
        let label = if packing { "packed_rgba" } else { "unpacked_r_only" };
        let e = engine(packing);
        group.bench_function(format!("posenet_like/{label}"), |b| {
            b.iter(|| posenet_like_pass(&e))
        });
        group.bench_function(format!("matmul_chain/{label}"), |b| {
            b.iter(|| matmul_chain_pass(&e))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
