//! **E-quant / E-shard** (paper Sec 5.1): converter throughput — weight
//! quantization (4x/2x size reduction), dequantization on load, and 4 MB
//! sharding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use webml_converter::{quantize::Quantization, shard};

fn bench_converter(c: &mut Criterion) {
    let mut group = c.benchmark_group("converter");
    group.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));

    // A MobileNet-α0.25-scale weight buffer (~470K floats).
    let weights: Vec<f32> = (0..470_000).map(|i| ((i as f32) * 0.137).sin()).collect();

    group.bench_function("quantize_u8", |b| {
        b.iter(|| Quantization::U8.quantize("bench", &weights).unwrap().0.len())
    });
    group.bench_function("quantize_u16", |b| {
        b.iter(|| Quantization::U16.quantize("bench", &weights).unwrap().0.len())
    });
    let (q8, scale, min) = Quantization::U8.quantize("bench", &weights).unwrap();
    group.bench_function("dequantize_u8", |b| {
        b.iter(|| Quantization::U8.dequantize(&q8, scale, min).unwrap().len())
    });

    // Sharding a full-precision MobileNet-1.0-scale buffer (~17 MB).
    let big = vec![0x5Au8; 17 * 1024 * 1024];
    group.bench_function("shard_4mb_17mb_model", |b| {
        b.iter(|| shard::split(&big, shard::SHARD_BYTES).len())
    });
    let shards = shard::split(&big, shard::SHARD_BYTES);
    group.bench_function("join_shards", |b| b.iter(|| shard::join(&shards).len()));
    group.finish();
}

criterion_group!(benches, bench_converter);
criterion_main!(benches);
