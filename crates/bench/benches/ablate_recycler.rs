//! **E-recycle ablation** (paper Sec 4.1.2): "the texture recycler gives us
//! significant performance wins since multiple passes through the same ML
//! model often generate tensors of the same shapes." Repeated model passes
//! with the recycler on vs off.

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::{ops, Engine};
use webml_webgl_sim::devices::DeviceProfile;

fn engine(recycling: bool) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    config.recycling = recycling;
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).unwrap();
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

/// One "model pass": same shapes every time (the recycler's best case),
/// allocation-heavy and compute-light so the texture-allocation cost the
/// recycler avoids dominates.
fn model_pass(e: &Engine, x: &webml_core::Tensor) -> usize {
    e.tidy(|| {
        let mut y = ops::relu(x).unwrap();
        for _ in 0..7 {
            y = ops::add(&y, x).unwrap();
        }
        y.data_sync().unwrap().len()
    })
}

fn bench_recycler(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_texture_recycler");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    for recycling in [false, true] {
        let label = if recycling { "recycler_on" } else { "recycler_off" };
        let e = engine(recycling);
        let x = e.rand_uniform([1024 * 1024], -1.0, 1.0, 1).unwrap();
        // Prime: first pass allocates either way.
        model_pass(&e, &x);
        group.bench_function(label, |b| b.iter(|| model_pass(&e, &x)));
    }
    group.finish();
}

criterion_group!(benches, bench_recycler);
criterion_main!(benches);
