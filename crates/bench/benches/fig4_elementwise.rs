//! **Figure 4**: element-wise addition of two equally shaped matrices as a
//! fragment-shader program — one `main()` per output value, sampling both
//! inputs and writing via `setOutput`. Benchmarked directly against the
//! substrate (no engine overhead), across sizes, packed and unpacked, plus
//! the Listing 2 matmul shader.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use webml_webgl_sim::context::{ContextConfig, GpgpuContext};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::shader::Program;

fn add_program(n: usize, packed: bool) -> Program {
    if packed {
        Program::packed("AddPacked", vec![n], move |s, base| {
            let mut quad = [0.0f32; 4];
            for (i, q) in quad.iter_mut().enumerate() {
                if base + i < n {
                    *q = s.get_flat(0, base + i) + s.get_flat(1, base + i);
                }
            }
            quad
        })
    } else {
        Program::per_element("Add", vec![n], |s, flat, _| s.get_flat(0, flat) + s.get_flat(1, flat))
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_elementwise_add");
    group.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    let ctx = GpgpuContext::new(DeviceProfile::intel_iris_pro(), ContextConfig::default())
        .expect("supported device");
    for &side in &[64usize, 256] {
        let n = side * side;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
        let ta = ctx.upload(a, &[n]).unwrap();
        let tb = ctx.upload(bv, &[n]).unwrap();
        for packed in [false, true] {
            let label = if packed { "packed" } else { "unpacked" };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{side}x{side}")),
                &n,
                |b, _| {
                    b.iter(|| {
                        let out = ctx.run(add_program(n, packed), &[&ta, &tb]).unwrap();
                        let v = ctx.read_sync(&out).unwrap();
                        ctx.dispose(&out);
                        v.len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_listing2_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("listing2_matmul_shader");
    group.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    let ctx = GpgpuContext::new(DeviceProfile::intel_iris_pro(), ContextConfig::default())
        .expect("supported device");
    let n = 128usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.001).sin()).collect();
    let bv: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.002).cos()).collect();
    let ta = ctx.upload(a, &[n, n]).unwrap();
    let tb = ctx.upload(bv, &[n, n]).unwrap();
    // Listing 2: per-output dot product with a 4-wide inner step.
    let prog = Program::per_element("MatMulListing2", vec![n, n], move |s, _, coords| {
        let (row, col) = (coords[0], coords[1]);
        let mut acc = 0.0f32;
        let mut i = 0;
        while i + 4 <= n {
            acc += s.get(0, &[row, i]) * s.get(1, &[i, col])
                + s.get(0, &[row, i + 1]) * s.get(1, &[i + 1, col])
                + s.get(0, &[row, i + 2]) * s.get(1, &[i + 2, col])
                + s.get(0, &[row, i + 3]) * s.get(1, &[i + 3, col]);
            i += 4;
        }
        acc
    })
    .with_cost(n * 2);
    group.bench_function("matmul_128_vec4_dot", |b| {
        b.iter(|| {
            let out = ctx.run(prog.clone(), &[&ta, &tb]).unwrap();
            let v = ctx.read_sync(&out).unwrap();
            ctx.dispose(&out);
            v.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_listing2_matmul);
criterion_main!(benches);
