//! The three matmul kernel styles of paper Sec 3.9 / 4.3, measured on one
//! host thread so the ratio isolates the *algorithmic* handicap of each
//! GPU programming model rather than device parallelism:
//!
//! 1. **WebGL fragment shader** (Listing 2): one output per invocation,
//!    every dot product re-fetches its whole row and column — no reuse.
//! 2. **WebGL + packing** (Sec 3.9): 4 outputs per invocation; each A
//!    element is reused across the RGBA quad.
//! 3. **WebGPU compute shader** (Sec 4.3): a work group computes a 16x16
//!    output tile, staging A/B sub-tiles in shared memory — each fetched
//!    element is reused 16 times.
//!
//! The `webgpu_preview` bin prints these rows standalone; `table1 --json`
//! folds them into `BENCH_TABLE1.json` next to the backend gap rows.

use std::time::Instant;

/// Shared-memory tile edge of the compute-shader style (the workgroup
/// computes a `TILE`x`TILE` output block).
pub const TILE: usize = 16;

/// Style 1: per-output dot product, Listing 2.
pub fn fragment_shader_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {
    for row in 0..n {
        for col in 0..n {
            let mut acc = 0.0f32;
            for i in 0..n {
                // Each invocation independently samples A and B: no reuse
                // across outputs (no shared memory in WebGL).
                acc += a[row * n + i] * b[i * n + col];
            }
            out[row * n + col] = acc;
        }
    }
}

/// Style 2: packed RGBA — 4 adjacent outputs per invocation share A loads.
pub fn packed_fragment_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {
    for row in 0..n {
        let mut col = 0;
        while col < n {
            let mut acc = [0.0f32; 4];
            for i in 0..n {
                let av = a[row * n + i];
                for (q, slot) in acc.iter_mut().enumerate() {
                    *slot += av * b[i * n + col + q];
                }
            }
            out[row * n + col..row * n + col + 4].copy_from_slice(&acc);
            col += 4;
        }
    }
}

/// Style 3: WebGPU-style work group with shared-memory tiles.
pub fn compute_shader_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize) {
    let mut a_tile = [[0.0f32; TILE]; TILE];
    let mut b_tile = [[0.0f32; TILE]; TILE];
    for tile_row in (0..n).step_by(TILE) {
        for tile_col in (0..n).step_by(TILE) {
            let mut acc = [[0.0f32; TILE]; TILE];
            for tile_k in (0..n).step_by(TILE) {
                // "workgroupBarrier(): stage the sub-tiles in shared memory."
                for r in 0..TILE {
                    for c in 0..TILE {
                        a_tile[r][c] = a[(tile_row + r) * n + tile_k + c];
                        b_tile[r][c] = b[(tile_k + r) * n + tile_col + c];
                    }
                }
                // Every staged element is reused TILE times.
                for r in 0..TILE {
                    for k in 0..TILE {
                        let av = a_tile[r][k];
                        for c in 0..TILE {
                            acc[r][c] += av * b_tile[k][c];
                        }
                    }
                }
            }
            for r in 0..TILE {
                for c in 0..TILE {
                    out[(tile_row + r) * n + tile_col + c] = acc[r][c];
                }
            }
        }
    }
}

/// One measured kernel-style row.
#[derive(Debug, Clone)]
pub struct StyleMeasurement {
    /// Stable row key (`fragment` / `packed` / `tiled_compute`).
    pub key: &'static str,
    /// Human-readable label with the paper section.
    pub label: &'static str,
    /// Mean per-pass milliseconds over the measured runs.
    pub ms: f64,
    /// Effective GFLOP/s of the 2·n³ matmul.
    pub gflops: f64,
}

fn time_style(key: &'static str, label: &'static str, n: usize, runs: usize, mut f: impl FnMut()) -> StyleMeasurement {
    f(); // warmup
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    let secs = t0.elapsed().as_secs_f64() / runs as f64;
    let flops = 2.0 * (n * n * n) as f64;
    StyleMeasurement { key, label, ms: secs * 1e3, gflops: flops / secs / 1e9 }
}

/// Run all three styles on an `n`x`n` matmul (requires `n` to be a multiple
/// of [`TILE`]), checking the packed and tiled results against the fragment
/// reference, and return the measured rows in style order.
pub fn measure_styles(n: usize, runs: usize) -> Vec<StyleMeasurement> {
    assert_eq!(n % TILE, 0, "n must be a multiple of the {TILE}-wide tile");
    let a: Vec<f32> = (0..n * n).map(|i| ((i as f32) * 0.001).sin()).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i as f32) * 0.002).cos()).collect();
    let mut out = vec![0.0f32; n * n];

    let fragment = time_style("fragment", "WebGL fragment shader (Listing 2, no reuse)", n, runs, || {
        fragment_shader_matmul(&a, &b, &mut out, n);
        std::hint::black_box(out[1]);
    });
    let reference = out.clone();
    let packed = time_style("packed", "WebGL + RGBA packing (Sec 3.9)", n, runs, || {
        packed_fragment_matmul(&a, &b, &mut out, n);
        std::hint::black_box(out[1]);
    });
    assert_eq!(out, reference, "packed kernel must agree");
    let tiled = time_style("tiled_compute", "WebGPU compute shader (Sec 4.3, shared memory)", n, runs, || {
        compute_shader_matmul(&a, &b, &mut out, n);
        std::hint::black_box(out[1]);
    });
    for (x, y) in out.iter().zip(&reference) {
        assert!((x - y).abs() < 1e-2, "tiled kernel must agree");
    }
    vec![fragment, packed, tiled]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_agree_and_measure() {
        let rows = measure_styles(64, 1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].key, "fragment");
        assert_eq!(rows[2].key, "tiled_compute");
        for row in rows {
            assert!(row.ms > 0.0 && row.gflops > 0.0, "{}", row.key);
        }
    }
}
