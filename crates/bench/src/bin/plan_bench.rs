//! Execution-plan benchmark: ahead-of-time planned vs per-call interpreted
//! `GraphModel` inference.
//!
//! ```text
//! cargo run --release -p webml-bench --bin plan_bench
//!     [-- --tiny] [-- --iters N] [-- --json] [-- --assert-speedup X]
//!     [-- --assert-peak-reduction Y] [-- --trace out.json]
//! ```
//!
//! Two scenarios, both comparing `GraphModel::execute` (plan-compiled:
//! typed ops, dense value slots, liveness-driven eager disposal) against
//! `GraphModel::execute_interpreted` (per-call graph walk, intermediates
//! live until scope end):
//!
//! - **MLP on cpu** — a dense classifier with no memory pressure: a
//!   sanity cell showing walltime parity (the interpreter is already
//!   cheap on cpu — it too borrows weights in place) while eager disposal
//!   cuts the activation working set to exactly the planner's
//!   `predicted_peak_bytes`.
//! - **MobileNet on simulated WebGL under a texture byte budget** — the
//!   memory-planning story. The budget sits between the planned peak and
//!   the interpreted peak, so interpreted execution trips the automatic
//!   texture pager (paper Sec 4.1.2) every pass — page-outs, re-uploads
//!   and fresh-texture allocations — while planned execution stays
//!   resident under the budget.
//!
//! `--json` writes `BENCH_PLAN.json`; `--assert-speedup X` and
//! `--assert-peak-reduction Y` exit non-zero unless the MobileNet cell
//! shows planned ≥ X× interpreted walltime and ≥ Y lower peak engine
//! bytes (the CI plan-smoke gate uses 1.5 / 0.30).

use serde_json::json;
use std::sync::Arc;
use std::time::Instant;
use webml_core::cpu::CpuBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::Engine;
use webml_models::{graph_mlp, graph_mobilenet, GraphSpec, MobileNetConfig};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::fault::FaultPlan;
use webml_webgl_sim::pager::PagingPolicy;

struct Cell {
    interpreted_ms: f64,
    planned_ms: f64,
    /// Modeled device milliseconds (disjoint-timer-query clock), when the
    /// backend has one. This clock charges the simulated driver costs —
    /// draw calls, fresh-texture allocation, page-ins — that dominate the
    /// memory-pressure story but are only counters on the host clock.
    interpreted_device_ms: Option<f64>,
    planned_device_ms: Option<f64>,
    interpreted_peak_bytes: usize,
    planned_peak_bytes: usize,
    predicted_peak_bytes: usize,
    page_outs: (f64, f64),
}

impl Cell {
    /// Device-clock speedup when available (webgl), walltime otherwise.
    fn speedup(&self) -> f64 {
        match (self.interpreted_device_ms, self.planned_device_ms) {
            (Some(i), Some(p)) => i / p,
            _ => self.interpreted_ms / self.planned_ms,
        }
    }

    /// Host walltime ratio — the right clock for plan-overhead questions
    /// (the device clock only sees kernel time, not dispatch bookkeeping).
    fn wall_speedup(&self) -> f64 {
        self.interpreted_ms / self.planned_ms
    }

    fn peak_reduction(&self) -> f64 {
        1.0 - self.planned_peak_bytes as f64 / self.interpreted_peak_bytes as f64
    }
}

fn page_outs(engine: &Engine) -> f64 {
    engine
        .memory()
        .backend
        .details
        .iter()
        .find(|(k, _)| k == "page_outs")
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

/// One forward pass including a blocking readback of every fetch, so
/// walltime covers the whole pass — enqueue through pipeline drain — like
/// a real synchronous client.
fn one_pass(
    spec: &GraphSpec,
    model: &webml_converter::GraphModel,
    x: &webml_core::Tensor,
    planned: bool,
) {
    let outs = if planned {
        model.execute(&[(&spec.input, x)], &[&spec.output]).expect("planned pass")
    } else {
        model.execute_interpreted(&[(&spec.input, x)], &[&spec.output]).expect("interpreted pass")
    };
    for t in outs {
        let _ = t.to_f32_vec().expect("readback");
        t.dispose();
    }
}

/// Run `iters` forward passes in `mode`, returning
/// (ms/iter, device-ms/iter, peak bytes).
fn run_mode(
    engine: &Engine,
    spec: &GraphSpec,
    model: &webml_converter::GraphModel,
    planned: bool,
    iters: usize,
) -> (f64, Option<f64>, usize, usize) {
    let (vals, shape) = spec.example(1, 0);
    let x = engine.tensor(vals, webml_core::Shape::new(shape)).expect("input upload");
    x.keep();
    // Warm up: compile the plan (planned mode) and fill texture pools.
    one_pass(spec, model, &x, planned);
    engine.reset_peak_bytes();
    // Bytes resident before the timed loop (weights + the kept input):
    // identical in both modes, so peaks are reported relative to it — the
    // working set the two execution strategies actually contest.
    let baseline = engine.memory().num_bytes;
    let dev0 = engine.backend().device_timer_ns();
    let t0 = Instant::now();
    for _ in 0..iters {
        one_pass(spec, model, &x, planned);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let device_ms = match (dev0, engine.backend().device_timer_ns()) {
        (Some(a), Some(b)) => Some((b - a) as f64 / 1e6 / iters as f64),
        _ => None,
    };
    let peak = engine.peak_bytes().saturating_sub(baseline);
    x.dispose();
    (ms, device_ms, peak, baseline)
}

/// Per-mode benchmark state: its own engine so texture pools, pager state
/// and peak counters never bleed into the other mode's measurement.
struct ModeState {
    engine: Engine,
    model: webml_converter::GraphModel,
    x: webml_core::Tensor,
    planned: bool,
    best_ms: f64,
    dev0: Option<u64>,
}

impl ModeState {
    fn new(make_engine: &dyn Fn() -> Engine, spec: &GraphSpec, planned: bool) -> ModeState {
        let engine = make_engine();
        let model = spec.build(&engine).expect("build model");
        let (vals, shape) = spec.example(1, 0);
        let x = engine.tensor(vals, webml_core::Shape::new(shape)).expect("input upload");
        x.keep();
        ModeState { engine, model, x, planned, best_ms: f64::INFINITY, dev0: None }
    }
}

fn run_cell(make_engine: &dyn Fn() -> Engine, spec: &GraphSpec, iters: usize) -> Cell {
    let mut modes = [
        ModeState::new(make_engine, spec, false),
        ModeState::new(make_engine, spec, true),
    ];
    // Warm up both: compile the plan, fill texture pools.
    for m in &modes {
        one_pass(spec, &m.model, &m.x, m.planned);
    }
    for m in &mut modes {
        m.engine.reset_peak_bytes();
        m.dev0 = m.engine.backend().device_timer_ns();
    }
    // Weights + kept input resident before the timed loop: identical in
    // both modes, so peaks are reported relative to it.
    let baselines: Vec<usize> = modes.iter().map(|m| m.engine.memory().num_bytes).collect();

    // Time the two modes in *interleaved* chunks and keep each mode's
    // fastest chunk. Interleaving makes both modes sample the same
    // frequency-scaling / scheduler conditions so slow drift cancels out
    // of the ratio, and the minimum discards jitter (noise only ever adds
    // time) — both essential for the sub-0.1ms MLP parity gate.
    let chunks = 8usize.min(iters);
    let per_chunk = (iters / chunks).max(1);
    for _ in 0..chunks {
        for m in &mut modes {
            let t0 = Instant::now();
            for _ in 0..per_chunk {
                one_pass(spec, &m.model, &m.x, m.planned);
            }
            m.best_ms = m.best_ms.min(t0.elapsed().as_secs_f64() * 1e3 / per_chunk as f64);
        }
    }
    let timed = chunks * per_chunk;
    let device_ms = |m: &ModeState| match (m.dev0, m.engine.backend().device_timer_ns()) {
        (Some(a), Some(b)) => Some((b - a) as f64 / 1e6 / timed as f64),
        _ => None,
    };
    let interpreted_ms = modes[0].best_ms;
    let planned_ms = modes[1].best_ms;
    let interpreted_device_ms = device_ms(&modes[0]);
    let planned_device_ms = device_ms(&modes[1]);
    let interpreted_peak = modes[0].engine.peak_bytes().saturating_sub(baselines[0]);
    let planned_peak = modes[1].engine.peak_bytes().saturating_sub(baselines[1]);
    let interp_pages = page_outs(&modes[0].engine);
    let plan_pages = page_outs(&modes[1].engine);

    let stats = modes[1].model.plan_stats();
    assert!(stats.hits >= timed as u64, "planned passes must ride the plan cache: {stats:?}");
    assert_eq!(stats.fallbacks, 0, "no interpreter fallbacks in the planned cell: {stats:?}");
    let plan_model = &modes[1].model;
    let predicted = plan_model
        .plan_for_shapes(
            &[(spec.input.clone(), {
                let mut d = spec.input_shape.clone();
                d[0] = 1;
                d
            })],
            &[&spec.output],
        )
        .map(|p| p.predicted_peak_bytes())
        .unwrap_or(0);

    Cell {
        interpreted_ms,
        planned_ms,
        interpreted_device_ms,
        planned_device_ms,
        interpreted_peak_bytes: interpreted_peak,
        planned_peak_bytes: planned_peak,
        predicted_peak_bytes: predicted,
        page_outs: (interp_pages, plan_pages),
    }
}

fn cpu_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    e
}

fn webgl_engine(budget_bytes: usize) -> Engine {
    let e = Engine::new();
    let config = WebGlConfig {
        paging: PagingPolicy { enabled: true, threshold_bytes: budget_bytes },
        ..Default::default()
    };
    let b = WebGlBackend::with_faults(DeviceProfile::intel_iris_pro(), config, FaultPlan::none())
        .expect("profile supports float textures");
    e.register_backend("webgl", Arc::new(b), 2);
    e
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let flag = |name: &str| -> Option<f64> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
    };
    let iters = flag("--iters").map(|v| v as usize).unwrap_or(if tiny { 10 } else { 40 });
    let assert_speedup = flag("--assert-speedup");
    let assert_peak_reduction = flag("--assert-peak-reduction");
    let assert_mlp_parity = flag("--assert-mlp-parity");
    let trace_path: Option<String> =
        args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
    if trace_path.is_some() {
        webml_telemetry::set_enabled(true);
    }

    println!("execution-plan benchmark: planned vs interpreted, {iters} passes per mode");

    // MLP: walltime-parity + exact-liveness sanity cell on the cpu backend.
    let mlp = graph_mlp(32, &[64, 64, 64, 64, 64, 64], 10, 11);
    // Sub-0.1ms passes need a long loop for a stable ratio — the parity
    // gate below compares two ~70µs medians, so give it thousands of
    // samples rather than dozens.
    let mlp_iters = (iters * 4).max(2000);
    let mlp_cell = run_cell(&cpu_engine, &mlp, mlp_iters);
    println!(
        "  MLP/cpu        | interpreted {:>8.3} ms | planned {:>8.3} ms | {:.2}x | \
         peak {} -> {} bytes ({:.0}% lower)",
        mlp_cell.interpreted_ms,
        mlp_cell.planned_ms,
        mlp_cell.wall_speedup(),
        mlp_cell.interpreted_peak_bytes,
        mlp_cell.planned_peak_bytes,
        mlp_cell.peak_reduction() * 100.0,
    );

    // MobileNet: memory-planning story on simulated WebGL under a byte
    // budget. A small classifier head keeps weights from dominating the
    // peak — the contested resource is activation memory.
    let config = MobileNetConfig {
        input_size: 128,
        classes: 10,
        ..MobileNetConfig::small()
    };
    let mobilenet = graph_mobilenet(&config);
    // Calibrate the texture budget empirically: measure both modes' peak
    // resident bytes on an unconstrained engine, then set the budget
    // between them (with slack for texture-packing overhead) so planned
    // execution fits and interpreted execution pages every pass.
    let budget = {
        let probe = webgl_engine(usize::MAX);
        let model = mobilenet.build(&probe).expect("build model");
        let (_, _, interp_peak, base) = run_mode(&probe, &mobilenet, &model, false, 1);
        let (_, _, plan_peak, _) = run_mode(&probe, &mobilenet, &model, true, 1);
        assert!(
            interp_peak as f64 >= plan_peak as f64 * 1.55,
            "calibration expects a clear gap: planned {plan_peak} vs interpreted {interp_peak}"
        );
        // The pager threshold is absolute resident bytes, so add the
        // weight/input baseline back onto the working-set peaks.
        base + plan_peak + (interp_peak - plan_peak) / 8
    };
    let mobilenet_cell = run_cell(&|| webgl_engine(budget), &mobilenet, iters);
    println!(
        "  MobileNet/webgl| interpreted {:>8.3} device-ms (wall {:.3}) | planned {:>8.3} \
         device-ms (wall {:.3}) | {:.2}x | peak {} -> {} bytes ({:.0}% lower) | \
         page-outs {} -> {}",
        mobilenet_cell.interpreted_device_ms.unwrap_or(f64::NAN),
        mobilenet_cell.interpreted_ms,
        mobilenet_cell.planned_device_ms.unwrap_or(f64::NAN),
        mobilenet_cell.planned_ms,
        mobilenet_cell.speedup(),
        mobilenet_cell.interpreted_peak_bytes,
        mobilenet_cell.planned_peak_bytes,
        mobilenet_cell.peak_reduction() * 100.0,
        mobilenet_cell.page_outs.0,
        mobilenet_cell.page_outs.1,
    );

    if json_mode {
        let row = |name: &str, backend: &str, cell: &Cell| {
            json!({
                "scenario": name,
                "backend": backend,
                "iters": if name == "mlp" { mlp_iters } else { iters },
                "interpreted_ms_per_pass": cell.interpreted_ms,
                "planned_ms_per_pass": cell.planned_ms,
                "interpreted_device_ms_per_pass": cell.interpreted_device_ms,
                "planned_device_ms_per_pass": cell.planned_device_ms,
                "speedup": cell.speedup(),
                "interpreted_peak_bytes": cell.interpreted_peak_bytes,
                "planned_peak_bytes": cell.planned_peak_bytes,
                "predicted_peak_bytes": cell.predicted_peak_bytes,
                "peak_reduction": cell.peak_reduction(),
                "page_outs_interpreted": cell.page_outs.0,
                "page_outs_planned": cell.page_outs.1,
            })
        };
        let doc = json!({
            "bench": "planned vs interpreted GraphModel inference",
            "rows": [
                row("mlp", "cpu", &mlp_cell),
                row("mobilenet", "webgl (integrated-GPU profile, simulated)", &mobilenet_cell),
            ],
            "mobilenet_texture_budget_bytes": budget,
            "speedup": mobilenet_cell.speedup(),
            "peak_reduction": mobilenet_cell.peak_reduction(),
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_PLAN.json", text).expect("write BENCH_PLAN.json");
        println!("\nwrote BENCH_PLAN.json");
    }
    if let Some(path) = trace_path {
        webml_telemetry::set_enabled(false);
        webml_telemetry::write_chrome_trace(std::path::Path::new(&path))
            .expect("write Chrome trace");
        println!("wrote Chrome trace to {path}");
    }
    if let Some(want) = assert_speedup {
        let got = mobilenet_cell.speedup();
        assert!(got >= want, "planned MobileNet speedup was {got:.2}x, expected >= {want}x");
        println!("speedup gate passed: {got:.2}x >= {want}x");
    }
    if let Some(want) = assert_mlp_parity {
        // Plan overhead must never regress a tiny model below the
        // interpreter: the executor's hot loop recycles its slot table and
        // skips per-op scopes for single-kernel ops precisely so that
        // dispatch bookkeeping stays under the interpreter's.
        let got = mlp_cell.wall_speedup();
        assert!(
            got >= want,
            "planned tiny-MLP walltime was {got:.2}x interpreted, expected >= {want}x"
        );
        println!("mlp-parity gate passed: {got:.2}x >= {want}x");
    }
    if let Some(want) = assert_peak_reduction {
        let got = mobilenet_cell.peak_reduction();
        assert!(
            got >= want,
            "planned MobileNet peak-bytes reduction was {:.0}%, expected >= {:.0}%",
            got * 100.0,
            want * 100.0
        );
        println!(
            "peak-reduction gate passed: {:.0}% >= {:.0}%",
            got * 100.0,
            want * 100.0
        );
    }
}

