//! Pipelined-executor benchmark: synchronous execute-then-read inference
//! vs the async pipelined path (paper Sec 4.1.1, Figs 2–3).
//!
//! ```text
//! cargo run --release -p webml-bench --bin pipeline_bench
//!     [-- --tiny] [-- --iters N] [-- --depth D] [-- --json]
//!     [-- --assert-utilization X] [-- --assert-speedup Y] [-- --trace out.json]
//! ```
//!
//! Two rows on the simulated WebGL backend (integrated-GPU profile), both
//! streaming a cycle of distinct inputs through a planned `GraphModel`:
//!
//! - **sync** — `execute` then a blocking `to_f32_vec` per request, the
//!   paper's `dataSync()` shape: every readback stalls the host *and*
//!   drains the device pipeline (simulated `readPixels` penalty), so
//!   upload, compute and readback serialize.
//! - **pipelined** — `execute_pipelined` with a depth-`D` window of
//!   [`webml_converter::PendingFetches`]: readbacks are enqueued with the
//!   ops (Fig 3's `data()` path, no drain), a fence marks each submission,
//!   and the host prepares request `n+1` while the device crunches `n`.
//!
//! Reported per row: wall ms/pass for both modes, the speedup, and
//! device-thread utilization (busy-ns / wall-ns from the device queue's
//! counters) for both modes. Outputs are asserted bitwise-equal between
//! modes before any timing is trusted. `--json` writes
//! `BENCH_PIPELINE.json`; `--assert-utilization X` gates pipelined
//! MobileNet utilization, `--assert-speedup Y` gates the speedup of every
//! row (the CI pipeline-smoke gate uses 0.8 / 1.2).

use serde_json::json;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::{Engine, Shape, Tensor};
use webml_models::{graph_mlp, graph_mobilenet, GraphSpec, MobileNetConfig};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::fault::FaultPlan;

/// Distinct inputs cycled through each mode (and compared between them).
const INPUT_CYCLE: usize = 4;

struct Row {
    name: &'static str,
    sync_ms: f64,
    pipelined_ms: f64,
    sync_utilization: f64,
    pipelined_utilization: f64,
    busy_ms_per_pass: f64,
    fence_waits: u64,
    drains_sync: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.sync_ms / self.pipelined_ms
    }
}

fn webgl_engine() -> (Engine, Arc<WebGlBackend>) {
    let e = Engine::new();
    let b = Arc::new(
        WebGlBackend::with_faults(
            DeviceProfile::intel_iris_pro(),
            WebGlConfig::default(),
            FaultPlan::none(),
        )
        .expect("profile supports float textures"),
    );
    e.register_backend("webgl", b.clone(), 2);
    (e, b)
}

fn make_inputs(engine: &Engine, spec: &GraphSpec) -> Vec<Tensor> {
    (0..INPUT_CYCLE)
        .map(|k| {
            let (vals, shape) = spec.example(1, k);
            let x = engine.tensor(vals, Shape::new(shape)).expect("input upload");
            x.keep();
            x
        })
        .collect()
}

/// Synchronous baseline: execute, then block on the fetch readback.
/// Returns (wall ms/pass, utilization, outputs of the first cycle, drains).
fn run_sync(
    spec: &GraphSpec,
    iters: usize,
) -> (f64, f64, Vec<Vec<f32>>, u64, f64) {
    let (engine, backend) = webgl_engine();
    let model = spec.build(&engine).expect("build model");
    let inputs = make_inputs(&engine, spec);
    let pass = |x: &Tensor| -> Vec<f32> {
        let outs = model.execute(&[(&spec.input, x)], &[&spec.output]).expect("sync pass");
        let vals = outs[0].to_f32_vec().expect("sync readback");
        for t in outs {
            t.dispose();
        }
        vals
    };
    let mut first_cycle = Vec::with_capacity(INPUT_CYCLE);
    for x in &inputs {
        first_cycle.push(pass(x)); // also warms the plan cache
    }
    let stats0 = backend.queue_stats();
    let t0 = Instant::now();
    for i in 0..iters {
        pass(&inputs[i % INPUT_CYCLE]);
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let stats1 = backend.queue_stats();
    let busy = (stats1.busy_ns - stats0.busy_ns) as f64;
    let util = (busy / wall_ns).clamp(0.0, 1.0);
    let drains = stats1.drains - stats0.drains;
    (wall_ns / 1e6 / iters as f64, util, first_cycle, drains, busy / 1e6 / iters as f64)
}

/// Pipelined mode: keep `depth` submissions in flight, completing the
/// oldest only when the window is full.
/// Returns (wall ms/pass, utilization, outputs of the first cycle, waits, busy ms/pass).
fn run_pipelined(
    spec: &GraphSpec,
    iters: usize,
    depth: usize,
) -> (f64, f64, Vec<Vec<f32>>, u64, f64) {
    let (engine, backend) = webgl_engine();
    let model = spec.build(&engine).expect("build model");
    let inputs = make_inputs(&engine, spec);
    let mut first_cycle: Vec<Vec<f32>> = Vec::with_capacity(INPUT_CYCLE);

    // Warm the plan cache and capture the comparison outputs through the
    // pipelined path itself.
    {
        let mut window: VecDeque<webml_converter::PendingFetches> = VecDeque::new();
        for x in &inputs {
            window.push_back(
                model
                    .execute_pipelined(&[(&spec.input, x)], &[&spec.output])
                    .expect("pipelined pass"),
            );
        }
        for pending in window {
            let data = pending.wait().expect("pipelined readback");
            first_cycle.push(data[0].to_f32_vec());
        }
    }

    let stats0 = backend.queue_stats();
    let t0 = Instant::now();
    let mut window: VecDeque<webml_converter::PendingFetches> = VecDeque::new();
    for i in 0..iters {
        window.push_back(
            model
                .execute_pipelined(&[(&spec.input, &inputs[i % INPUT_CYCLE])], &[&spec.output])
                .expect("pipelined pass"),
        );
        if window.len() >= depth {
            let pending = window.pop_front().expect("window non-empty");
            pending.wait().expect("pipelined readback");
        }
    }
    for pending in window {
        pending.wait().expect("pipelined drain");
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let stats1 = backend.queue_stats();
    let busy = (stats1.busy_ns - stats0.busy_ns) as f64;
    let util = (busy / wall_ns).clamp(0.0, 1.0);
    let waits = stats1.fence_waits - stats0.fence_waits;
    (wall_ns / 1e6 / iters as f64, util, first_cycle, waits, busy / 1e6 / iters as f64)
}

fn run_row(name: &'static str, spec: &GraphSpec, iters: usize, depth: usize) -> Row {
    let (sync_ms, sync_util, sync_outs, drains_sync, _) = run_sync(spec, iters);
    let (pipelined_ms, pipe_util, pipe_outs, fence_waits, busy_ms) =
        run_pipelined(spec, iters, depth);
    // Bitwise equality between the two modes — same plan, same kernels,
    // only the readback mechanism differs. Compared before any speedup is
    // reported so a fast-but-wrong pipeline can never pass.
    assert_eq!(sync_outs, pipe_outs, "{name}: pipelined outputs must match sync bitwise");
    Row {
        name,
        sync_ms,
        pipelined_ms,
        sync_utilization: sync_util,
        pipelined_utilization: pipe_util,
        busy_ms_per_pass: busy_ms,
        fence_waits,
        drains_sync,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let flag = |name: &str| -> Option<f64> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
    };
    let iters = flag("--iters").map(|v| v as usize).unwrap_or(if tiny { 40 } else { 120 });
    let depth = flag("--depth").map(|v| v as usize).unwrap_or(2).max(1);
    let assert_utilization = flag("--assert-utilization");
    let assert_speedup = flag("--assert-speedup");
    let trace_path: Option<String> =
        args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
    if trace_path.is_some() {
        webml_telemetry::set_enabled(true);
    }

    println!(
        "pipelined-executor benchmark: sync vs depth-{depth} pipelined, {iters} passes per mode"
    );

    let mlp = graph_mlp(32, &[64, 64, 64, 64, 64, 64], 10, 11);
    let config = MobileNetConfig { input_size: 64, classes: 10, ..MobileNetConfig::small() };
    let mobilenet = graph_mobilenet(&config);

    let rows =
        [run_row("mlp", &mlp, iters, depth), run_row("mobilenet", &mobilenet, iters, depth)];
    for row in &rows {
        println!(
            "  {:<10}/webgl | sync {:>8.3} ms (util {:>4.1}%, {} drains) | pipelined {:>8.3} ms \
             (util {:>5.1}%, {} fence waits) | {:.2}x | device busy {:.3} ms/pass",
            row.name,
            row.sync_ms,
            row.sync_utilization * 100.0,
            row.drains_sync,
            row.pipelined_ms,
            row.pipelined_utilization * 100.0,
            row.fence_waits,
            row.speedup(),
            row.busy_ms_per_pass,
        );
    }

    if json_mode {
        let doc = json!({
            "bench": "synchronous vs pipelined GraphModel inference",
            "depth": depth,
            "rows": rows.iter().map(|row| json!({
                "scenario": row.name,
                "backend": "webgl (integrated-GPU profile, simulated)",
                "iters": iters,
                "sync_ms_per_pass": row.sync_ms,
                "pipelined_ms_per_pass": row.pipelined_ms,
                "speedup": row.speedup(),
                "sync_device_utilization": row.sync_utilization,
                "pipelined_device_utilization": row.pipelined_utilization,
                "device_busy_ms_per_pass": row.busy_ms_per_pass,
                "pipelined_fence_waits": row.fence_waits,
                "sync_drains": row.drains_sync,
                "outputs_bitwise_equal": true,
            })).collect::<Vec<_>>(),
            "speedup": rows.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min),
            "utilization": rows[1].pipelined_utilization,
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_PIPELINE.json", text).expect("write BENCH_PIPELINE.json");
        println!("\nwrote BENCH_PIPELINE.json");
    }
    if let Some(path) = trace_path {
        webml_telemetry::set_enabled(false);
        webml_telemetry::write_chrome_trace(std::path::Path::new(&path))
            .expect("write Chrome trace");
        println!("wrote Chrome trace to {path}");
    }
    if let Some(want) = assert_utilization {
        let got = rows[1].pipelined_utilization;
        assert!(
            got >= want,
            "pipelined MobileNet device utilization was {:.1}%, expected >= {:.1}%",
            got * 100.0,
            want * 100.0
        );
        println!("utilization gate passed: {:.1}% >= {:.1}%", got * 100.0, want * 100.0);
    }
    if let Some(want) = assert_speedup {
        for row in &rows {
            let got = row.speedup();
            assert!(
                got >= want,
                "pipelined {} speedup was {got:.2}x, expected >= {want}x",
                row.name
            );
        }
        println!(
            "speedup gate passed: {} on both rows",
            rows.iter().map(|r| format!("{:.2}x", r.speedup())).collect::<Vec<_>>().join(" / ")
        );
    }
}
