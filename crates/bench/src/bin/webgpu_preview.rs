//! **Sec 4.3 (future backends)**: the paper predicts WebGPU — with work
//! groups and shared memory — will close the WebGL↔CUDA gap. This bin is a
//! thin wrapper over [`webml_bench::kernel_styles`], which runs the three
//! kernel styles for the same matmul on one thread; `table1 --json` folds
//! the same rows into `BENCH_TABLE1.json`, and the real WebGPU backend
//! lives in `webml-backend-webgpu` (see the `webgpu_bench` bin).
//!
//! ```text
//! cargo run --release -p webml-bench --bin webgpu_preview
//! ```

use webml_bench::kernel_styles::measure_styles;

const N: usize = 256;

fn main() {
    println!("matmul {N}x{N}, single thread — kernel styles of paper Sec 3.9 / 4.3\n");
    let rows = measure_styles(N, 5);
    for row in &rows {
        println!("{:<46} {:>8.2} ms   {:>6.2} GFLOP/s", row.label, row.ms, row.gflops);
    }
    let (gl, packed, gpu) = (rows[0].gflops, rows[1].gflops, rows[2].gflops);
    println!("\npacking speedup over plain fragment shader: {:.2}x (paper: 1.3-1.4x)", packed / gl);
    println!("compute-shader speedup over fragment shader: {:.2}x", gpu / gl);
    println!(
        "-> shared memory recovers most of the 3-10x WebGL-vs-CUDA gap the paper\n\
         attributes to WebGL's missing work groups (Sec 3.9), supporting its\n\
         Sec 4.3 prediction for WebGPU."
    );
}
