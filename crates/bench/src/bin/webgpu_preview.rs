//! **Sec 4.3 (future backends)**: the paper predicts WebGPU — with work
//! groups and shared memory — will close the WebGL↔CUDA gap. This
//! experiment runs three kernel styles for the same matmul on one thread:
//!
//! 1. **WebGL fragment shader** (Listing 2): one output per invocation,
//!    every dot product re-fetches its whole row and column — no reuse.
//! 2. **WebGL + packing** (Sec 3.9): 4 outputs per invocation; each A
//!    element is reused across the RGBA quad.
//! 3. **WebGPU compute shader** (Sec 4.3): a work group computes a 16x16
//!    output tile, staging A/B sub-tiles in shared memory — each fetched
//!    element is reused 16 times.
//!
//! ```text
//! cargo run --release -p webml-bench --bin webgpu_preview
//! ```

use std::time::Instant;

const N: usize = 256;
const TILE: usize = 16;

fn time_gflops(label: &str, mut f: impl FnMut() -> f32) -> f64 {
    f(); // warmup
    let runs = 5;
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..runs {
        sink += f();
    }
    let secs = t0.elapsed().as_secs_f64() / runs as f64;
    let flops = 2.0 * (N * N * N) as f64;
    let gflops = flops / secs / 1e9;
    println!("{label:<46} {:>8.2} ms   {gflops:>6.2} GFLOP/s", secs * 1e3);
    std::hint::black_box(sink);
    gflops
}

/// Style 1: per-output dot product, Listing 2.
fn fragment_shader_matmul(a: &[f32], b: &[f32], out: &mut [f32]) {
    for row in 0..N {
        for col in 0..N {
            let mut acc = 0.0f32;
            for i in 0..N {
                // Each invocation independently samples A and B: no reuse
                // across outputs (no shared memory in WebGL).
                acc += a[row * N + i] * b[i * N + col];
            }
            out[row * N + col] = acc;
        }
    }
}

/// Style 2: packed RGBA — 4 adjacent outputs per invocation share A loads.
fn packed_fragment_matmul(a: &[f32], b: &[f32], out: &mut [f32]) {
    for row in 0..N {
        let mut col = 0;
        while col < N {
            let mut acc = [0.0f32; 4];
            for i in 0..N {
                let av = a[row * N + i];
                for q in 0..4 {
                    acc[q] += av * b[i * N + col + q];
                }
            }
            out[row * N + col..row * N + col + 4].copy_from_slice(&acc);
            col += 4;
        }
    }
}

/// Style 3: WebGPU-style work group with shared-memory tiles.
fn compute_shader_matmul(a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut a_tile = [[0.0f32; TILE]; TILE];
    let mut b_tile = [[0.0f32; TILE]; TILE];
    for tile_row in (0..N).step_by(TILE) {
        for tile_col in (0..N).step_by(TILE) {
            let mut acc = [[0.0f32; TILE]; TILE];
            for tile_k in (0..N).step_by(TILE) {
                // "workgroupBarrier(): stage the sub-tiles in shared memory."
                for r in 0..TILE {
                    for c in 0..TILE {
                        a_tile[r][c] = a[(tile_row + r) * N + tile_k + c];
                        b_tile[r][c] = b[(tile_k + r) * N + tile_col + c];
                    }
                }
                // Every staged element is reused TILE times.
                for r in 0..TILE {
                    for k in 0..TILE {
                        let av = a_tile[r][k];
                        for c in 0..TILE {
                            acc[r][c] += av * b_tile[k][c];
                        }
                    }
                }
            }
            for r in 0..TILE {
                for c in 0..TILE {
                    out[(tile_row + r) * N + tile_col + c] = acc[r][c];
                }
            }
        }
    }
}

fn main() {
    println!("matmul {N}x{N}, single thread — kernel styles of paper Sec 3.9 / 4.3\n");
    let a: Vec<f32> = (0..N * N).map(|i| ((i as f32) * 0.001).sin()).collect();
    let b: Vec<f32> = (0..N * N).map(|i| ((i as f32) * 0.002).cos()).collect();
    let mut out = vec![0.0f32; N * N];

    let gl = time_gflops("WebGL fragment shader (Listing 2, no reuse)", || {
        fragment_shader_matmul(&a, &b, &mut out);
        out[1]
    });
    let reference = out.clone();
    let packed = time_gflops("WebGL + RGBA packing (Sec 3.9)", || {
        packed_fragment_matmul(&a, &b, &mut out);
        out[1]
    });
    assert_eq!(out, reference, "packed kernel must agree");
    let gpu = time_gflops("WebGPU compute shader (Sec 4.3, shared memory)", || {
        compute_shader_matmul(&a, &b, &mut out);
        out[1]
    });
    for (x, y) in out.iter().zip(&reference) {
        assert!((x - y).abs() < 1e-2, "tiled kernel must agree");
    }

    println!("\npacking speedup over plain fragment shader: {:.2}x (paper: 1.3-1.4x)", packed / gl);
    println!("compute-shader speedup over fragment shader: {:.2}x", gpu / gl);
    println!(
        "-> shared memory recovers most of the 3-10x WebGL-vs-CUDA gap the paper\n\
         attributes to WebGL's missing work groups (Sec 3.9), supporting its\n\
         Sec 4.3 prediction for WebGPU."
    );
}
