//! Regenerates the **device-support statistics of Sec 4.1.3** from the
//! simulated WebGLStats-style population: the fraction of each platform
//! able to run the WebGL backend (float-texture support).
//!
//! ```text
//! cargo run --release -p webml-bench --bin device_support
//! ```

use webml_webgl_sim::devices::{self, Platform};

fn main() {
    println!("WebGL-backend device support by platform (simulated population)\n");
    println!("| Platform | Supported | Paper (Sec 4.1.3) |");
    println!("|---|---|---|");
    let rows = [
        (Platform::Desktop, "Desktop", "99%"),
        (Platform::IosAndWindowsMobile, "iOS + Windows mobile", "98%"),
        (Platform::Android, "Android", "52%"),
    ];
    for (platform, name, paper) in rows {
        println!("| {name} | {:.0}% | {paper} |", devices::coverage(platform) * 100.0);
    }

    println!("\npopulation detail:");
    for entry in devices::population() {
        println!(
            "  {:<28} share {:>5.1}%  webgl backend: {}",
            entry.model,
            entry.share * 100.0,
            if entry.supports_webgl_backend { "yes" } else { "no (CPU fallback)" }
        );
    }
    println!(
        "\nthe Android gap is a long tail of older devices without GPU float-texture\n\
         support — those fall back to the plain CPU backend automatically."
    );
}
