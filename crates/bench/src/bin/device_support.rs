//! Regenerates the **device-support statistics of Sec 4.1.3** from the
//! simulated WebGLStats-style population: the fraction of each platform
//! able to run the WebGL backend (float-texture support) and, one rung
//! above it, the WebGPU compute backend (Sec 4.3's compute-API future) —
//! a strictly smaller slice of the same population, which is why the
//! degradation ladder keeps webgl underneath webgpu instead of replacing
//! it.
//!
//! ```text
//! cargo run --release -p webml-bench --bin device_support
//! ```

use webml_webgl_sim::devices::{self, Platform};

fn main() {
    println!("GPU-backend device support by platform (simulated population)\n");
    println!("| Platform | WebGL | Paper (Sec 4.1.3) | WebGPU |");
    println!("|---|---|---|---|");
    let rows = [
        (Platform::Desktop, "Desktop", "99%"),
        (Platform::IosAndWindowsMobile, "iOS + Windows mobile", "98%"),
        (Platform::Android, "Android", "52%"),
    ];
    for (platform, name, paper) in rows {
        println!(
            "| {name} | {:.0}% | {paper} | {:.0}% |",
            devices::coverage(platform) * 100.0,
            devices::webgpu_coverage(platform) * 100.0
        );
    }

    println!("\npopulation detail:");
    for entry in devices::population() {
        let rung = if entry.supports_webgpu_backend {
            "webgpu -> webgl -> cpu"
        } else if entry.supports_webgl_backend {
            "webgl -> cpu"
        } else {
            "cpu only"
        };
        println!(
            "  {:<28} share {:>5.1}%  ladder: {rung}",
            entry.model,
            entry.share * 100.0,
        );
    }
    println!(
        "\nthe Android gap is a long tail of older devices without GPU float-texture\n\
         support — those fall back to the plain CPU backend automatically. WebGPU\n\
         coverage is a subset of WebGL coverage on every platform: fleet placement\n\
         only offers the webgpu rung where the profile exposes a compute API."
    );
}
