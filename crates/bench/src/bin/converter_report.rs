//! Regenerates the **converter results of Sec 5.1**: quantization size
//! reductions (4x), 4 MB weight sharding, training-op pruning, and the
//! browser-cache benefit of shard-granular fetching.
//!
//! ```text
//! cargo run --release -p webml-bench --bin converter_report
//! ```

use webml_bench::harness::TableBackend;
use webml_converter::{prune::GraphDef, shard, to_artifacts, Quantization, SimulatedNetwork};
use webml_models::{repo, MobileNet, MobileNetConfig};

fn main() {
    let engine = TableBackend::NativeCudaClass.engine();
    let net = MobileNet::new(
        &engine,
        MobileNetConfig { alpha: 0.5, input_size: 96, classes: 100, batch_norm: true, seed: 1 },
    )
    .expect("build mobilenet");
    println!("MobileNet alpha=0.5 ({} parameters)\n", net.count_params());

    // Quantization (Sec 5.1: "reducing the model size by 4X").
    let full = to_artifacts(net.model(), None).expect("artifacts");
    let q16 = to_artifacts(net.model(), Some(Quantization::U16)).expect("artifacts");
    let q8 = to_artifacts(net.model(), Some(Quantization::U8)).expect("artifacts");
    println!("| Format | Weight bytes | Reduction |");
    println!("|---|---|---|");
    println!("| float32 | {} | 1.0x |", full.weight_bytes());
    println!(
        "| uint16 | {} | {:.1}x |",
        q16.weight_bytes(),
        full.weight_bytes() as f64 / q16.weight_bytes() as f64
    );
    println!(
        "| uint8 | {} | {:.1}x |",
        q8.weight_bytes(),
        full.weight_bytes() as f64 / q8.weight_bytes() as f64
    );

    // Sharding ("packs weights into 4MB files").
    let shards = shard::split(&full.weight_data, shard::SHARD_BYTES);
    println!(
        "\nsharding: {} bytes -> {} shard(s), all <= 4 MB: {}",
        full.weight_bytes(),
        shards.len(),
        shards.iter().all(|s| s.len() <= shard::SHARD_BYTES)
    );

    // Browser-cache benefit on reload.
    let sim = SimulatedNetwork::new();
    repo::publish(net.model(), &sim, "https://bucket/m").expect("publish");
    repo::load(&engine, &sim, "https://bucket/m").expect("first load");
    let first = sim.stats();
    repo::load(&engine, &sim, "https://bucket/m").expect("second load");
    let second = sim.stats();
    println!(
        "\nfirst load:  {} network requests, {} bytes transferred",
        first.network_requests, first.bytes_transferred
    );
    println!(
        "reload:      {} new network requests, {} bytes from cache",
        second.network_requests - first.network_requests,
        second.bytes_from_cache
    );

    // Training-op pruning.
    let graph = GraphDef::from_triples(&[
        ("input", "Placeholder", &[]),
        ("w1", "VariableV2", &[]),
        ("conv", "Conv2D", &["input", "w1"]),
        ("relu", "Relu", &["conv"]),
        ("w2", "VariableV2", &[]),
        ("logits", "MatMul", &["relu", "w2"]),
        ("softmax", "Softmax", &["logits"]),
        ("labels", "Placeholder", &[]),
        ("xent", "SoftmaxCrossEntropyWithLogits", &["logits", "labels"]),
        ("grad_w1", "Conv2DBackpropFilter", &["input", "xent"]),
        ("grad_w2", "MatMul", &["relu", "xent"]),
        ("train_w1", "ApplyGradientDescent", &["w1", "grad_w1"]),
        ("train_w2", "ApplyGradientDescent", &["w2", "grad_w2"]),
        ("save", "SaveV2", &["w1", "w2"]),
        ("restore", "RestoreV2", &[]),
        ("init", "NoOp", &[]),
    ]);
    let pruned = graph.prune(&["softmax"]).expect("prune");
    println!(
        "\npruning: training graph {} nodes -> inference graph {} nodes",
        graph.len(),
        pruned.len()
    );
    println!(
        "removed: {:?}",
        graph
            .nodes
            .iter()
            .filter(|n| !pruned.nodes.iter().any(|p| p.name == n.name))
            .map(|n| n.name.as_str())
            .collect::<Vec<_>>()
    );
}
