//! Benchmarks the **WebGPU compute backend against the WebGL rung** it
//! sits above on the degradation ladder (paper Sec 4.3: compute APIs with
//! work groups and shared memory should close most of the Sec 3.9 WebGL
//! gap). Both backends run the same MobileNet workload on the same device
//! profile; the reported metric is *simulated device time* (the `tf.time`
//! kernel metric), so the ratio isolates the programming model — tiled
//! shared-memory compute pipelines vs one-output-per-invocation fragment
//! shaders — not host parallelism.
//!
//! ```text
//! cargo run --release -p webml-bench --bin webgpu_bench [-- --tiny]
//!     [-- --runs N] [-- --json]
//! ```
//!
//! `--json` writes `BENCH_WEBGPU.json`. The bin also checks the WebGPU
//! output against the reference CPU backend **bitwise** (the backend's
//! kernels accumulate in the reference order), and exits non-zero when the
//! speedup falls under the gate: every row must clear 2x, and on the
//! default MobileNet-class workload the integrated-GPU row — the paper's
//! Table 1 WebGL comparison point, where missing shared memory hurts most
//! — must clear 3x. (A discrete profile's raw core count hides part of
//! WebGL's algorithmic handicap, exactly as Sec 3.9's 3-10x range implies.)

use serde_json::{json, Value};
use std::sync::Arc;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_backend_webgpu::WebGpuBackend;
use webml_bench::harness::{
    bench_mobilenet_config, mean_kernel_ms, mobilenet_workload, tiny_mobilenet_config,
};
use webml_core::cpu::CpuBackend;
use webml_core::Engine;
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgpu_sim::WebGpuConfig;

struct ProfileRow {
    profile: &'static str,
    webgl_ms: f64,
    webgpu_ms: f64,
    webgl_programs: u64,
    webgpu_dispatches: u64,
}

fn measure_profile(
    label: &'static str,
    profile: DeviceProfile,
    config: webml_models::MobileNetConfig,
    runs: usize,
) -> ProfileRow {
    let gl_engine = Engine::new();
    let gl = Arc::new(
        WebGlBackend::new(profile.clone(), WebGlConfig::default())
            .expect("profile supports float textures"),
    );
    gl_engine.register_backend("webgl", gl.clone(), 1);
    let (mut gl_net, gl_input) = mobilenet_workload(&gl_engine, config);
    let gl_before = gl.context().memory().programs_run;
    let webgl_ms = mean_kernel_ms(&gl_engine, &mut gl_net, &gl_input, runs);
    let webgl_programs = gl.context().memory().programs_run - gl_before;

    let gpu_engine = Engine::new();
    let gpu = Arc::new(
        WebGpuBackend::new(profile, WebGpuConfig::default())
            .expect("profile exposes a WebGPU compute API"),
    );
    gpu_engine.register_backend("webgpu", gpu.clone(), 1);
    let (mut gpu_net, gpu_input) = mobilenet_workload(&gpu_engine, config);
    let gpu_before = gpu.context().memory().dispatches_run;
    let webgpu_ms = mean_kernel_ms(&gpu_engine, &mut gpu_net, &gpu_input, runs);
    let webgpu_dispatches = gpu.context().memory().dispatches_run - gpu_before;

    ProfileRow { profile: label, webgl_ms, webgpu_ms, webgl_programs, webgpu_dispatches }
}

/// One inference on each backend from identical seeded weights; the WebGPU
/// logits must equal the CPU reference **bitwise**.
fn check_cpu_parity(config: webml_models::MobileNetConfig) -> usize {
    let cpu_engine = Engine::new();
    cpu_engine.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let (mut cpu_net, cpu_input) = mobilenet_workload(&cpu_engine, config);
    let reference = cpu_net.infer(&cpu_input).expect("cpu inference");
    let reference = reference.to_f32_vec().expect("cpu readback");

    let gpu_engine = Engine::new();
    let gpu = WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
        .expect("profile exposes a WebGPU compute API");
    gpu_engine.register_backend("webgpu", Arc::new(gpu), 1);
    let (mut gpu_net, gpu_input) = mobilenet_workload(&gpu_engine, config);
    let out = gpu_net.infer(&gpu_input).expect("webgpu inference");
    let out = out.to_f32_vec().expect("webgpu readback");

    assert_eq!(out, reference, "webgpu logits must match the cpu reference bitwise");
    reference.len()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 3 } else { 5 });
    let config = if tiny { tiny_mobilenet_config() } else { bench_mobilenet_config() };
    // Every row must clear the floor; on the full workload the integrated
    // row (first) must additionally clear the paper-gap 3x.
    let floor = 2.0;
    let integrated_gate = if tiny { 2.0 } else { 3.0 };

    println!(
        "MobileNet v1 alpha={} input={}x{}x3, simulated device ms over {} runs",
        config.alpha, config.input_size, config.input_size, runs
    );
    let logits = check_cpu_parity(config);
    println!("cpu bit-parity: OK ({logits} logits identical)\n");

    let rows = vec![
        measure_profile("integrated (Intel Iris Pro-class)", DeviceProfile::intel_iris_pro(), config, runs),
        measure_profile("discrete (GTX 1080-class)", DeviceProfile::gtx_1080(), config, runs),
    ];
    println!("| Profile | WebGL (ms) | WebGPU (ms) | Speedup | Draws -> Dispatches |");
    println!("|---|---|---|---|---|");
    let mut worst = f64::INFINITY;
    for row in &rows {
        let speedup = row.webgl_ms / row.webgpu_ms;
        worst = worst.min(speedup);
        println!(
            "| {} | {:.3} | {:.3} | {:.1}x | {} -> {} |",
            row.profile, row.webgl_ms, row.webgpu_ms, speedup, row.webgl_programs, row.webgpu_dispatches
        );
    }

    if json_mode {
        let doc = json!({
            "bench": "WebGPU compute backend vs WebGL rung, simulated device time",
            "workload": {
                "alpha": config.alpha,
                "input_size": config.input_size,
                "classes": config.classes,
                "runs": runs,
                "tiny": tiny,
            },
            "cpu_bit_parity": true,
            "gate_speedup_floor": floor,
            "gate_speedup_integrated": integrated_gate,
            "rows": rows.iter().map(|r| json!({
                "profile": r.profile,
                "webgl_simulated_ms": r.webgl_ms,
                "webgpu_simulated_ms": r.webgpu_ms,
                "speedup": r.webgl_ms / r.webgpu_ms,
                "webgl_programs": r.webgl_programs,
                "webgpu_dispatches": r.webgpu_dispatches,
            })).collect::<Vec<Value>>(),
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_WEBGPU.json", text).expect("write BENCH_WEBGPU.json");
        println!("\nwrote BENCH_WEBGPU.json");
    }

    println!(
        "\npaper Sec 3.9 attributes the 3-10x WebGL-vs-CUDA gap to missing work\n\
         groups/shared memory; Sec 4.3 predicts compute APIs recover it."
    );
    let integrated = rows[0].webgl_ms / rows[0].webgpu_ms;
    if worst < floor || integrated < integrated_gate {
        eprintln!(
            "FAIL: speedups (integrated {integrated:.2}x, worst {worst:.2}x) miss the gate \
             (integrated >= {integrated_gate:.1}x, all rows >= {floor:.1}x)"
        );
        std::process::exit(1);
    }
    println!(
        "gate: integrated {integrated:.2}x >= {integrated_gate:.1}x, worst {worst:.2}x >= {floor:.1}x — OK"
    );
}
