//! Validate a Chrome trace-event JSON file produced by
//! `serve_bench --trace` (the CI `trace-smoke` gate).
//!
//! ```text
//! cargo run --release -p webml-bench --bin trace_validate -- trace.json
//! ```
//!
//! Checks the trace-event schema (every event has `name`/`ph`/`pid`/`tid`,
//! spans carry microsecond `ts`+`dur`) and asserts the timeline actually
//! observes the stack end to end: engine kernel spans, the serve
//! dispatcher's two-phase `serve.submit`/`serve.complete` spans, and a
//! virtual GPU track whose spans carry the disjoint-timer-query
//! (`modeled_device_ns`) argument and whose `device_utilization` instants
//! carry a busy/wall gauge in `[0, 1]`.
//!
//! Request-scoped tracing contract (PR-9):
//! - every serving-layer span (`cat == "serve"`) carries a positive
//!   `trace_id` argument — no anonymous serve work;
//! - every trace id with an **envelope** span (`serve.request` for a
//!   request's submit→reply extent, `serve.batch` for a batch's
//!   exec→reply extent, `serve.dispatch` for a dispatch pass) has all of
//!   its other spans nested inside that envelope — the property that lets
//!   one id reconstruct a request's full causal lane;
//! - at least one `serve.request` envelope is present.
//!
//! Exits non-zero on any violation.

use serde_json::Value;
use std::collections::HashMap;

fn fail(msg: &str) -> ! {
    eprintln!("trace validation FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        fail("usage: trace_validate <trace.json>");
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")));

    let events = match doc.get("traceEvents").and_then(Value::as_array) {
        Some(events) if !events.is_empty() => events,
        _ => fail("traceEvents missing or empty"),
    };

    let mut spans = 0usize;
    let mut kernel_spans = 0usize;
    let mut serve_submit_spans = 0usize;
    let mut serve_complete_spans = 0usize;
    let mut gpu_spans = 0usize;
    let mut gpu_timer_ns = 0.0f64;
    let mut gpu_tid: Option<&Value> = None;
    let mut named_threads = 0usize;
    let mut utilization_instants = 0usize;
    // Request-scoped tracing: envelope extents per trace id, and the
    // non-envelope spans that must nest inside them.
    let mut envelopes: HashMap<u64, (f64, f64)> = HashMap::new();
    let mut request_envelopes = 0usize;
    let mut traced_spans: Vec<(u64, f64, f64, String)> = Vec::new();
    let mut serve_spans = 0usize;

    // Pass 1: collect envelope extents (a request's spans may be exported
    // before its envelope, so containment is checked after the scan).
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        if name != "serve.request" && name != "serve.batch" && name != "serve.dispatch" {
            continue;
        }
        let id = ev
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| fail(&format!("envelope span without trace_id: {ev:?}")));
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        if name == "serve.request" {
            request_envelopes += 1;
        }
        // A re-used id (cannot happen: ids are minted once) would widen
        // the envelope; keep the union to stay conservative.
        let entry = envelopes.entry(id).or_insert((ts, ts + dur));
        entry.0 = entry.0.min(ts);
        entry.1 = entry.1.max(ts + dur);
    }

    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or_else(|| {
            fail(&format!("event without string ph: {ev:?}"));
        });
        if ev.get("name").and_then(Value::as_str).is_none() {
            fail(&format!("event without string name: {ev:?}"));
        }
        if ev.get("pid").is_none() || ev.get("tid").is_none() {
            fail(&format!("event without pid/tid: {ev:?}"));
        }
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    named_threads += 1;
                    let is_gpu = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .is_some_and(|n| n.contains("GPU"));
                    if is_gpu {
                        gpu_tid = ev.get("tid");
                    }
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(Value::as_f64);
                let dur = ev.get("dur").and_then(Value::as_f64);
                if ts.is_none() || dur.is_none() {
                    fail(&format!("span without numeric ts/dur: {ev:?}"));
                }
                spans += 1;
                let cat = ev.get("cat").and_then(Value::as_str).unwrap_or("");
                let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
                let trace_id = ev
                    .get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                if cat == "serve" {
                    serve_spans += 1;
                    if trace_id == 0 {
                        fail(&format!("serve span without a trace_id: {ev:?}"));
                    }
                }
                let is_envelope =
                    name == "serve.request" || name == "serve.batch" || name == "serve.dispatch";
                if trace_id != 0 && !is_envelope {
                    let ts = ts.unwrap_or(0.0);
                    let dur = dur.unwrap_or(0.0);
                    traced_spans.push((trace_id, ts, ts + dur, name.to_owned()));
                }
                if cat == "kernel" {
                    kernel_spans += 1;
                }
                if name == "serve.submit" {
                    serve_submit_spans += 1;
                }
                if name == "serve.complete" {
                    serve_complete_spans += 1;
                }
                if cat == "gpu" {
                    gpu_spans += 1;
                    gpu_timer_ns += ev
                        .get("args")
                        .and_then(|a| a.get("modeled_device_ns"))
                        .and_then(Value::as_f64)
                        .unwrap_or_else(|| {
                            fail(&format!("gpu span without modeled_device_ns: {ev:?}"));
                        });
                    match gpu_tid {
                        Some(tid) if ev.get("tid") == Some(tid) => {}
                        _ => fail("gpu span not on the declared GPU track"),
                    }
                }
            }
            "i" => {
                if ev.get("ts").and_then(Value::as_f64).is_none() {
                    fail(&format!("instant without numeric ts: {ev:?}"));
                }
                if ev.get("name").and_then(Value::as_str) == Some("device_utilization") {
                    utilization_instants += 1;
                    let util = ev
                        .get("args")
                        .and_then(|a| a.get("utilization"))
                        .and_then(Value::as_f64)
                        .unwrap_or_else(|| {
                            fail(&format!(
                                "device_utilization instant without numeric utilization: {ev:?}"
                            ));
                        });
                    if !(0.0..=1.0).contains(&util) {
                        fail(&format!("device utilization {util} outside [0, 1]"));
                    }
                    match gpu_tid {
                        Some(tid) if ev.get("tid") == Some(tid) => {}
                        _ => fail("device_utilization instant not on the declared GPU track"),
                    }
                }
            }
            other => fail(&format!("unexpected event phase {other:?}")),
        }
    }

    if gpu_tid.is_none() {
        fail("no GPU thread_name metadata event");
    }
    if named_threads < 2 {
        fail("expected at least the GPU track plus one CPU thread track");
    }
    if kernel_spans == 0 {
        fail("no engine kernel spans (cat=kernel)");
    }
    if serve_submit_spans == 0 {
        fail("no serve.submit spans");
    }
    if serve_complete_spans == 0 {
        fail("no serve.complete spans (pipelined completion phase missing)");
    }
    if gpu_spans == 0 {
        fail("no spans on the GPU track");
    }
    if gpu_timer_ns <= 0.0 {
        fail("GPU track carries no positive disjoint-timer-query time");
    }
    if utilization_instants == 0 {
        fail("no device_utilization instants on the GPU track");
    }
    if request_envelopes == 0 {
        fail("no serve.request envelope spans (request-scoped tracing missing)");
    }

    // Containment: every traced span whose id has an envelope must nest
    // inside it. Exported timestamps are microsecond floats rounded from
    // nanosecond clocks, so allow half a tick of slack either side.
    const EPS_US: f64 = 0.002;
    let mut nested = 0usize;
    for (id, start, end, name) in &traced_spans {
        let Some((env_start, env_end)) = envelopes.get(id) else {
            continue; // id never grew an envelope (e.g. a probe) — skip
        };
        if *start < env_start - EPS_US || *end > env_end + EPS_US {
            fail(&format!(
                "span {name} [{start:.3}, {end:.3}] us escapes envelope \
                 [{env_start:.3}, {env_end:.3}] us of trace id {id}"
            ));
        }
        nested += 1;
    }

    println!(
        "trace OK: {} events, {spans} spans ({kernel_spans} kernel, {serve_submit_spans} \
         serve.submit, {serve_complete_spans} serve.complete, {serve_spans} serve — all \
         trace-tagged, {gpu_spans} gpu; device timer total {:.3} ms), \
         {request_envelopes} request envelopes ({} trace ids, {nested} nested spans), \
         {utilization_instants} device_utilization instants, {named_threads} tracks",
        events.len(),
        gpu_timer_ns / 1e6,
        envelopes.len(),
    );
}
