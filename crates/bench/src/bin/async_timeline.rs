//! Regenerates **Figures 2 and 3**: the main-thread timeline under a
//! blocking `dataSync()` versus an asynchronous `data()` read on the webgl
//! backend.
//!
//! ```text
//! cargo run --release -p webml-bench --bin async_timeline
//! ```

use std::time::Duration;
use webml_bench::harness::TableBackend;
use webml_core::asyncx::EventLoop;
use webml_core::{ops, Engine, Tensor};

fn heavy_chain(e: &Engine) -> Tensor {
    let a = e.rand_uniform([192, 192], -1.0, 1.0, 1).expect("input");
    let mut y = ops::matmul(&a, &a, false, false).expect("matmul");
    for _ in 0..6 {
        y = ops::matmul(&y, &a, false, false).expect("matmul");
    }
    y
}

fn render_timeline(frames: &[f64], total: f64, width: usize) -> String {
    // One cell per (total/width) ms: '|' if a frame rendered in that slice.
    let mut cells = vec!['.'; width];
    for &t in frames {
        let idx = ((t / total) * width as f64) as usize;
        cells[idx.min(width - 1)] = '|';
    }
    cells.into_iter().collect()
}

fn main() {
    let engine = TableBackend::WebGlIntegrated.engine();
    let event_loop = EventLoop::new(Duration::from_millis(4));
    let width = 72;

    println!("each '|' is a rendered UI frame; '.' is a 1-cell gap (jank)\n");

    let (result, fig2) = event_loop.run_sync(
        || heavy_chain(&engine),
        |y| y.data_sync(),
        Duration::from_millis(48),
    );
    result.expect("sync read");
    println!("Figure 2 — tensor.dataSync() blocks the main thread:");
    println!("  {}", render_timeline(&fig2.frame_times_ms, fig2.total_ms, width));
    println!(
        "  blocked {:.1} ms | frames {} | longest gap {:.1} ms\n",
        fig2.blocked_ms, fig2.frames_rendered, fig2.longest_frame_gap_ms
    );

    let (result, fig3) = event_loop.run_async(
        || {
            let y = heavy_chain(&engine);
            y.data()
        },
        Duration::from_millis(48),
    );
    result.expect("async read");
    println!("Figure 3 — tensor.data() releases the main thread:");
    println!("  {}", render_timeline(&fig3.frame_times_ms, fig3.total_ms, width));
    println!(
        "  blocked {:.1} ms | frames {} | longest gap {:.1} ms | promise resolved at {:.1} ms",
        fig3.blocked_ms, fig3.frames_rendered, fig3.longest_frame_gap_ms, fig3.data_ready_at_ms
    );

    println!(
        "\njank ratio (sync longest gap / async longest gap): {:.1}x",
        fig2.longest_frame_gap_ms / fig3.longest_frame_gap_ms.max(0.01)
    );
}
