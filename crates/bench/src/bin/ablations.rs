//! Quick text report of every design-choice ablation (the criterion
//! benches measure the same effects with statistics):
//!
//! - **E-pack**: RGBA texel packing on/off (paper: 1.3-1.4x on PoseNet)
//! - **E-map**: layout squeeze optimization on/off (paper: ~1.3x)
//! - **E-recycle**: texture recycler on/off
//! - **E-page**: paging overhead under a tight GPU budget
//! - **E-gap**: per-thread webgl (no shared memory) vs native blocked
//!
//! ```text
//! cargo run --release -p webml-bench --bin ablations
//! ```

#![allow(clippy::field_reassign_with_default)] // ablations toggle single config fields

use std::sync::Arc;
use std::time::Instant;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::conv_util::Padding;
use webml_core::{ops, Engine};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::pager::PagingPolicy;

fn webgl_engine(configure: impl FnOnce(&mut WebGlConfig)) -> Engine {
    let e = Engine::new();
    let mut config = WebGlConfig::default();
    configure(&mut config);
    let backend = WebGlBackend::new(DeviceProfile::intel_iris_pro(), config).expect("device");
    e.register_backend("webgl", Arc::new(backend), 1);
    e
}

fn time_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / runs as f64
}

fn report(name: &str, baseline_label: &str, baseline_ms: f64, variant_label: &str, variant_ms: f64) {
    println!(
        "{name}: {baseline_label} {baseline_ms:.2} ms vs {variant_label} {variant_ms:.2} ms -> {:.2}x",
        baseline_ms / variant_ms
    );
}

fn posenet_like_pass(e: &Engine) {
    e.tidy(|| {
        let x = e.rand_uniform([1, 64, 64, 3], -1.0, 1.0, 1).unwrap();
        let w1 = e.rand_uniform([3, 3, 3, 8], -0.5, 0.5, 2).unwrap();
        let w2 = e.rand_uniform([3, 3, 8, 16], -0.5, 0.5, 3).unwrap();
        let y = ops::conv2d(&x, &w1, (2, 2), Padding::Same, (1, 1)).unwrap();
        let y = ops::relu6(&y).unwrap();
        let y = ops::conv2d(&y, &w2, (2, 2), Padding::Same, (1, 1)).unwrap();
        let y = ops::relu6(&y).unwrap();
        let y = ops::add(&y, &y).unwrap();
        let _ = y.data_sync().unwrap();
    });
}

fn main() {
    let runs = 12;

    // E-pack.
    let packed = webgl_engine(|c| c.packing = true);
    let unpacked = webgl_engine(|c| c.packing = false);
    let t_packed = time_ms(runs, || posenet_like_pass(&packed));
    let t_unpacked = time_ms(runs, || posenet_like_pass(&unpacked));
    report("E-pack   texel packing (paper 1.3-1.4x)", "unpacked", t_unpacked, "packed", t_packed);

    // E-map.
    let squeezed = webgl_engine(|c| c.squeeze_layout = true);
    let naive = webgl_engine(|c| c.squeeze_layout = false);
    let unit_dim_pass = |e: &Engine| {
        e.tidy(|| {
            let x = e.rand_uniform([1, 96, 1, 64], -1.0, 1.0, 1).unwrap();
            let s = e.rand_uniform([1, 96, 1, 1], 0.5, 1.5, 2).unwrap();
            let b = e.rand_uniform([1, 1, 1, 64], -0.5, 0.5, 3).unwrap();
            let y = ops::add(&ops::mul(&x, &s).unwrap(), &b).unwrap();
            let z = ops::mul(&y, &s).unwrap();
            let _ = z.data_sync().unwrap();
        });
    };
    let t_squeezed = time_ms(runs, || unit_dim_pass(&squeezed));
    let t_naive = time_ms(runs, || unit_dim_pass(&naive));
    report("E-map    layout squeeze (paper ~1.3x)", "naive map", t_naive, "squeezed", t_squeezed);

    // E-recycle.
    let recycle_on = webgl_engine(|c| c.recycling = true);
    let recycle_off = webgl_engine(|c| c.recycling = false);
    // Repeated same-shape passes; the avoided cost is the driver-side
    // texture allocation, which the simulator charges to *device time*
    // (paper: "disposing and re-allocating WebGL textures is relatively
    // expensive"). Reported in simulated device ms, like Table 1's GPU rows.
    let model_pass = |e: &Engine, x: &webml_core::Tensor| {
        e.tidy(|| {
            let mut y = ops::relu(x).unwrap();
            for _ in 0..7 {
                y = ops::add(&y, x).unwrap();
            }
            let _ = y.data_sync().unwrap();
        });
    };
    let device_ms = |e: &Engine, x: &webml_core::Tensor| -> f64 {
        model_pass(e, x); // warmup
        let mut total = 0.0;
        for _ in 0..runs {
            let (_, t) = e.time(|| model_pass(e, x));
            total += t.kernel_ms;
        }
        total / runs as f64
    };
    let x_on = recycle_on.rand_uniform([64 * 64 * 16], -1.0, 1.0, 1).unwrap();
    let x_off = recycle_off.rand_uniform([64 * 64 * 16], -1.0, 1.0, 1).unwrap();
    let t_on = device_ms(&recycle_on, &x_on);
    let t_off = device_ms(&recycle_off, &x_off);
    report("E-recycle texture recycler (device time)", "recycler off", t_off, "recycler on", t_on);

    // E-page.
    let no_page = webgl_engine(|c| c.paging = PagingPolicy::disabled());
    let tight = webgl_engine(|c| {
        c.paging = PagingPolicy { enabled: true, threshold_bytes: 96 * 1024 };
    });
    let working_set = |e: &Engine| {
        let set: Vec<_> =
            (0..8).map(|i| e.fill([16_384], i as f32, webml_core::DType::F32).unwrap()).collect();
        let t = time_ms(6, || {
            for t in &set {
                let y = ops::sum(t, None, false).unwrap();
                let _ = y.to_scalar().unwrap();
                y.dispose();
            }
        });
        for t in &set {
            t.dispose();
        }
        t
    };
    let t_free = working_set(&no_page);
    let t_tight = working_set(&tight);
    report("E-page   paging under tight budget", "unconstrained", t_free, "tight budget", t_tight);
    println!("         (ratios < 1x are the cost of staying alive past the GPU budget)");

    // E-gap: per-thread matmul, no shared memory vs blocked.
    let gl1 = {
        let e = Engine::new();
        let mut p = DeviceProfile::intel_iris_pro();
        p.parallelism = 1;
        e.register_backend("webgl", Arc::new(WebGlBackend::new(p, WebGlConfig::default()).unwrap()), 1);
        e
    };
    let nt1 = {
        let e = Engine::new();
        e.register_backend("native", Arc::new(NativeBackend::with_threads("native", 1)), 1);
        e
    };
    let matmul_pass = |e: &Engine| {
        e.tidy(|| {
            let a = e.rand_uniform([128, 128], -1.0, 1.0, 1).unwrap();
            let b = e.rand_uniform([128, 128], -1.0, 1.0, 2).unwrap();
            let y = ops::matmul(&a, &b, false, false).unwrap();
            let _ = y.data_sync().unwrap();
        });
    };
    let t_gl = time_ms(runs, || matmul_pass(&gl1));
    let t_nt = time_ms(runs, || matmul_pass(&nt1));
    report(
        "E-gap    per-thread matmul 128 (paper 3-10x)",
        "webgl (no shared mem)",
        t_gl,
        "native (blocked)",
        t_nt,
    );
}
