//! SLO-aware fleet serving harness: admission control, deadlines, load
//! shedding, and circuit-breaking across a heterogeneous 4-engine fleet.
//!
//! ```text
//! cargo run --release -p webml-bench --bin slo_bench
//!     [-- --tiny] [-- --json] [-- --seed N] [-- --clients N] [-- --requests N]
//! ```
//!
//! Three phases against a [`FleetServer`] spanning four engines on distinct
//! device profiles (GTX 1080, Intel Iris Pro, modern Android — each with a
//! CPU fallback rung — plus a CPU-only straggler):
//!
//! 1. **Steady**: mixed closed-loop clients (3:1 light:heavy model split)
//!    under per-model SLOs. Gates: zero caller-visible errors, and admitted
//!    p99 within the SLO envelope (deadline + one service quantum — the
//!    deadline check happens at dequeue, so an admitted request can still
//!    pay one batch execution beyond it).
//! 2. **Overload**: a queue-saturating burst with a 5 ms deadline. Gates:
//!    at least one request shed *explicitly* (admission/queue-full/deadline
//!    refusal, never a hang or a silent drop) and exact outcome accounting.
//! 3. **Seeded faults** (`--seed N`): a fresh fleet where one engine loses
//!    its WebGL context mid-traffic (restorable, with a recover hook) and
//!    another suffers seeded draw stalls (a straggler, not a failure).
//!    Gates: zero caller-visible errors — the degradation ladder, re-route,
//!    and breaker absorb every fault — and the tripped engine is re-admitted
//!    (breaker re-closed) by the end of the run.
//!
//! `--attribution` additionally gates the PR-9 observability contract:
//! per-model timeline completeness ≥ 99% (every completed request's six
//! phases reconstruct from its one trace id), a non-empty dominant-p99
//! phase per model, exact flight-recorder trigger accounting (phase-2 shed
//! triggers equal the observed sheds; phase 3 produces a breaker-trip
//! snapshot), and writes the attribution report into `BENCH_SLO.json` plus
//! the flight snapshots to `FLIGHT_SNAPSHOT.json`.
//!
//! `--assert-overhead-pct N` measures the per-request instrumentation cost
//! with tracing disabled (context mint + scope swap + seven timestamps +
//! attribution fold + flight-ring push) and fails unless it is ≤ N% of the
//! steady-phase light-model p50.
//!
//! `--json` writes `BENCH_SLO.json`. The CI `slo-smoke` job runs
//! `--tiny --json` across an 8-seed fault matrix; the `obs-smoke` job adds
//! `--attribution --assert-overhead-pct 5`.

// The nested `json!` report overflows the default macro recursion limit.
#![recursion_limit = "256"]

use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webml_telemetry as telemetry;
use webml_telemetry::attribution;
use webml_telemetry::flight;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::cpu::CpuBackend;
use webml_core::Engine;
use webml_models::serving::{classifier_artifacts, synthetic_example};
use webml_serve::{
    BreakerState, EngineSpec, FleetConfig, FleetServer, FleetStats, ModelSlo, ModelSource,
    ServeError,
};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgl_sim::fault::FaultPlan;

const LIGHT_IN: usize = 32;
const LIGHT_HIDDEN: usize = 64;
const HEAVY_IN: usize = 64;
const HEAVY_HIDDEN: usize = 256;
const CLASSES: usize = 10;
/// Latency slack beyond the SLO deadline an admitted request may pay: the
/// deadline check happens at dequeue, so one batch execution (plus reply
/// plumbing) can land after it.
const SERVICE_MARGIN_MS: f64 = 10.0;

/// An engine with a WebGL backend on `profile` (optionally faulted) over a
/// CPU fallback rung. Returns the backend too so a recover hook can reach
/// `recover_context`.
fn webgl_engine(profile: DeviceProfile, plan: Option<FaultPlan>) -> (Engine, Arc<WebGlBackend>) {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    let backend = match plan {
        Some(plan) => WebGlBackend::with_faults(profile, WebGlConfig::default(), plan),
        None => WebGlBackend::new(profile, WebGlConfig::default()),
    }
    .expect("profile supports float textures");
    let backend = Arc::new(backend);
    e.register_backend("webgl", backend.clone(), 2);
    (e, backend)
}

fn cpu_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    e
}

struct Fleet {
    server: Arc<FleetServer>,
    light: webml_serve::ModelKey,
    heavy: webml_serve::ModelKey,
}

/// The heterogeneous fleet: a fast discrete GPU (heavy models prefer it),
/// two mid-tier profiles, and a CPU-only straggler. `iris_plan` /
/// `android_plan` inject faults for phase 3.
fn build_fleet(
    iris_plan: Option<FaultPlan>,
    android_plan: Option<FaultPlan>,
    light_slo: ModelSlo,
    heavy_slo: ModelSlo,
) -> Fleet {
    let (gtx, _) = webgl_engine(DeviceProfile::gtx_1080(), None);
    let (iris, iris_backend) = webgl_engine(DeviceProfile::intel_iris_pro(), iris_plan);
    let (android, _) = webgl_engine(DeviceProfile::android_modern(), android_plan);
    let cpu = cpu_engine();
    let specs = vec![
        EngineSpec::new("gtx", &gtx, 16),
        EngineSpec::new("iris", &iris, 4)
            .with_recover_hook(Arc::new(move || iris_backend.recover_context())),
        EngineSpec::new("android", &android, 2),
        EngineSpec::new("cpu", &cpu, 1),
    ];
    let server = Arc::new(FleetServer::new(specs, FleetConfig::default()));

    let build = cpu_engine();
    let light_artifacts = classifier_artifacts(&build, LIGHT_IN, LIGHT_HIDDEN, CLASSES, 11)
        .expect("build light model");
    let heavy_artifacts = classifier_artifacts(&build, HEAVY_IN, HEAVY_HIDDEN, CLASSES, 13)
        .expect("build heavy model");
    assert!(
        heavy_artifacts.weight_bytes() >= FleetConfig::default().heavy_model_bytes,
        "heavy model must cross the placement threshold"
    );
    let light = server.register(ModelSource::Artifacts(light_artifacts), light_slo);
    let heavy = server.register(ModelSource::Artifacts(heavy_artifacts), heavy_slo);
    // Warm every engine's cache so phase measurements exclude model builds.
    server.warm(light, synthetic_example(LIGHT_IN, 0), vec![LIGHT_IN]);
    server.warm(heavy, synthetic_example(HEAVY_IN, 0), vec![HEAVY_IN]);
    Fleet { server, light, heavy }
}

#[derive(Default, Clone)]
struct Outcomes {
    latencies_ms: Vec<f64>,
    shed: u64,
    deadline: u64,
    errors: u64,
}

impl Outcomes {
    fn absorb(&mut self, other: Outcomes) {
        self.latencies_ms.extend(other.latencies_ms);
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.errors += other.errors;
    }

    fn record(&mut self, result: Result<webml_serve::InferResponse, ServeError>, ms: f64) {
        match result {
            Ok(resp) => {
                assert_eq!(resp.dims, vec![CLASSES]);
                self.latencies_ms.push(ms);
            }
            Err(ServeError::DeadlineExceeded { .. }) => self.deadline += 1,
            Err(ref e) if e.is_shed() => self.shed += 1,
            Err(_) => self.errors += 1,
        }
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[((sorted.len() - 1) as f64 * p).round() as usize]
    }

    fn to_json(&self, name: &str) -> serde_json::Value {
        json!({
            "model": name,
            "completed": self.latencies_ms.len(),
            "shed": self.shed,
            "deadline_rejected": self.deadline,
            "errors": self.errors,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
        })
    }
}

/// Closed-loop mixed clients: every fourth client drives the heavy model.
fn run_clients(fleet: &Fleet, clients: usize, requests: usize) -> (Outcomes, Outcomes, f64) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = fleet.server.clone();
            let heavy_client = c % 4 == 3;
            let key = if heavy_client { fleet.heavy } else { fleet.light };
            let in_dim = if heavy_client { HEAVY_IN } else { LIGHT_IN };
            std::thread::spawn(move || {
                let mut out = Outcomes::default();
                for r in 0..requests {
                    let example = synthetic_example(in_dim, c * requests + r);
                    let t = Instant::now();
                    let result = server.infer(key, example, vec![in_dim]);
                    out.record(result, t.elapsed().as_secs_f64() * 1e3);
                }
                (heavy_client, out)
            })
        })
        .collect();
    let mut light = Outcomes::default();
    let mut heavy = Outcomes::default();
    for h in handles {
        let (heavy_client, out) = h.join().expect("client thread");
        if heavy_client {
            heavy.absorb(out);
        } else {
            light.absorb(out);
        }
    }
    (light, heavy, t0.elapsed().as_secs_f64())
}

fn stats_json(stats: &FleetStats) -> serde_json::Value {
    json!({
        "submitted": stats.submitted,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "deadline_rejected": stats.deadline_rejected,
        "shed_overloaded": stats.shed_overloaded,
        "shed_queue_full": stats.shed_queue_full,
        "shed_no_engine": stats.shed_no_engine,
        "engine_errors": stats.engine_errors,
        "rerouted": stats.rerouted,
        "probes": stats.probes,
        "warmups": stats.warmups,
        "breaker_trips": stats.breaker_trips,
        "breaker_recloses": stats.breaker_recloses,
        "degradations": stats.degradations,
        "engines": stats.engines.iter().map(|e| json!({
            "name": e.name,
            "parallelism": e.parallelism,
            "completed": e.completed,
            "ewma_ms": e.ewma_ms,
            "degradations": e.degradations,
            "breaker_state": format!("{:?}", e.breaker.state),
            "breaker_trips": e.breaker.trips,
            "breaker_recloses": e.breaker.recloses,
        })).collect::<Vec<_>>(),
    })
}

fn assert_accounted(stats: &FleetStats, phase: &str) {
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "{phase}: every submitted request must land in exactly one outcome bucket"
    );
}

/// Per-request cost of the always-on observability path with tracing
/// disabled: trace-context mint, scope swap, the seven timeline
/// timestamps, the attribution fold, and the flight-ring push — everything
/// a served request pays even when no trace is being recorded.
fn instrumentation_overhead_ns(iters: u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        let ctx = telemetry::RequestCtx::mint();
        let _scope = telemetry::trace_scope(ctx.trace_id);
        let mut tl = telemetry::RequestTimeline::new(ctx.trace_id, ctx.parent_span, 0xbe9c);
        tl.submitted_ns = telemetry::now_ns();
        tl.admitted_ns = telemetry::now_ns();
        tl.drained_ns = telemetry::now_ns();
        tl.exec_start_ns = telemetry::now_ns();
        tl.upload_end_ns = telemetry::now_ns();
        tl.compute_end_ns = telemetry::now_ns();
        tl.done_ns = telemetry::now_ns();
        tl.outcome = telemetry::RequestOutcome::Completed;
        tl.batch_size = 1;
        telemetry::record_request(&tl);
        telemetry::flight::record_timeline(&tl);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// The `--attribution` gate for one model: ≥ 99% of its completed requests
/// must reconstruct a complete six-phase timeline, and the report must
/// name a dominant p99 phase.
fn assert_model_attribution(report: &attribution::AttributionReport, label: &str) {
    let m = report
        .model(label)
        .unwrap_or_else(|| panic!("attribution report has no model labeled {label}"));
    assert!(m.complete > 0, "{label}: no complete timelines recorded");
    let completeness = m.completeness();
    assert!(
        completeness >= 0.99,
        "{label}: only {:.2}% of completed requests reconstruct a full timeline \
         ({} complete, {} incomplete)",
        completeness * 100.0,
        m.complete,
        m.incomplete,
    );
    assert!(
        !m.dominant_p99.is_empty(),
        "{label}: attribution report must name the dominant p99 phase"
    );
    println!(
        "  attribution | {label}: {} timelines {:.2}% complete; dominant phase p50={} \
         p95={} p99={}",
        m.complete + m.incomplete,
        completeness * 100.0,
        m.dominant_p50,
        m.dominant_p95,
        m.dominant_p99,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let tiny = flag("--tiny");
    let json_mode = flag("--json");
    let attribution_mode = flag("--attribution");
    let overhead_pct: Option<f64> = opt("--assert-overhead-pct").and_then(|v| v.parse().ok());
    let seed: u64 = opt("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let clients: usize = opt("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 24 } else { 256 });
    let requests: usize =
        opt("--requests").and_then(|v| v.parse().ok()).unwrap_or(if tiny { 25 } else { 40 });

    let light_slo = ModelSlo::new(25.0, Duration::from_millis(25));
    let heavy_slo = ModelSlo::new(60.0, Duration::from_millis(60));
    println!(
        "SLO fleet benchmark: 4 heterogeneous engines, {clients} mixed clients x {requests} \
         requests, light SLO {:.0} ms / heavy SLO {:.0} ms, fault seed {seed}",
        light_slo.target_ms, heavy_slo.target_ms
    );

    if attribution_mode {
        attribution::reset_attribution();
        flight::reset_flight();
    }

    // ---- Phase 1: steady state under per-model SLOs -----------------------
    let fleet = build_fleet(None, None, light_slo.clone(), heavy_slo.clone());
    attribution::set_model_label(fleet.light, "light");
    attribution::set_model_label(fleet.heavy, "heavy");
    let (light_out, heavy_out, wall_s) = run_clients(&fleet, clients, requests);
    let steady = fleet.server.stats();
    assert_accounted(&steady, "steady");
    let served = light_out.latencies_ms.len() + heavy_out.latencies_ms.len();
    println!(
        "  steady   | {served} served in {wall_s:.2} s ({:.0} req/s) | light p99 {:.2} ms \
         (shed {}) | heavy p99 {:.2} ms (shed {})",
        served as f64 / wall_s,
        light_out.percentile(0.99),
        light_out.shed + light_out.deadline,
        heavy_out.percentile(0.99),
        heavy_out.shed + heavy_out.deadline,
    );
    assert_eq!(
        light_out.errors + heavy_out.errors,
        0,
        "steady phase must produce zero caller-visible errors"
    );
    for (name, out, slo) in
        [("light", &light_out, &light_slo), ("heavy", &heavy_out, &heavy_slo)]
    {
        assert!(
            !out.latencies_ms.is_empty(),
            "steady phase must admit and complete {name} requests"
        );
        let p99 = out.percentile(0.99);
        let bound = slo.target_ms + SERVICE_MARGIN_MS;
        assert!(
            p99 <= bound,
            "{name} admitted p99 {p99:.2} ms exceeds SLO envelope {bound:.1} ms \
             (target {:.0} ms + {SERVICE_MARGIN_MS:.0} ms service quantum)",
            slo.target_ms
        );
    }

    // ---- Phase 2: overload burst — sheds must be explicit -----------------
    let shed_triggers_before = flight::trigger_count("shed");
    let burst = 2 * FleetConfig::default().queue_capacity;
    let pending: Vec<_> = (0..burst)
        .map(|i| {
            fleet.server.submit_with_deadline(
                fleet.light,
                synthetic_example(LIGHT_IN, i),
                vec![LIGHT_IN],
                Duration::from_millis(5),
            )
        })
        .collect();
    let mut overload = Outcomes::default();
    let t0 = Instant::now();
    for p in pending {
        overload.record(p.wait(), 0.0);
    }
    let overload_stats = fleet.server.stats();
    assert_accounted(&overload_stats, "overload");
    println!(
        "  overload | burst {burst} with 5 ms deadline in {:.2} s: {} completed, {} shed, \
         {} deadline-rejected, {} errors",
        t0.elapsed().as_secs_f64(),
        overload.latencies_ms.len(),
        overload.shed,
        overload.deadline,
        overload.errors,
    );
    assert_eq!(overload.errors, 0, "overload must shed explicitly, never error");
    assert!(
        overload.shed + overload.deadline > 0,
        "a {burst}-request burst with a 5 ms deadline must shed explicitly"
    );
    if attribution_mode {
        // Exact flight-recorder accounting: every explicit shed in this
        // burst fired exactly one "shed" trigger (the fleet is otherwise
        // idle between phases, so the delta is exact).
        let shed_triggers = flight::trigger_count("shed") - shed_triggers_before;
        assert_eq!(
            shed_triggers, overload.shed,
            "flight recorder must count one shed trigger per observed shed"
        );
        if overload.shed > 0 {
            assert!(
                flight::snapshots().iter().any(|s| s.kind == "shed"),
                "a shed storm must capture at least one flight snapshot"
            );
        }
    }

    // ---- Phase 3: seeded faults — absorb, trip, recover -------------------
    // One engine loses its (restorable) WebGL context mid-traffic; another
    // straggles with seeded draw stalls. Deadlines are generous: the gate is
    // fault *absorption* — zero caller-visible errors — not tail latency.
    let trips_before = flight::trigger_count("breaker_trip");
    let degradations_before = flight::trigger_count("degradation");
    let ctx_draw = 20 + (seed % 8) * 9;
    let iris_plan = FaultPlan::none().lose_context_at(ctx_draw);
    let android_plan = FaultPlan { seed, ..FaultPlan::none() }.with_draw_stall(0.05, 2_000_000);
    let relaxed = ModelSlo::new(500.0, Duration::from_millis(500));
    let fault_fleet = build_fleet(Some(iris_plan), Some(android_plan), relaxed.clone(), relaxed);
    let fault_clients = if tiny { 8 } else { 32 };
    let fault_requests = if tiny { 30 } else { 60 };
    let (f_light, f_heavy, f_wall) = run_clients(&fault_fleet, fault_clients, fault_requests);
    assert_eq!(
        f_light.errors + f_heavy.errors,
        0,
        "seeded fault run (seed {seed}) must complete with zero caller-visible errors"
    );

    // The tripped engine must be re-admitted: poll until the breaker
    // re-closes (context restore + backend promotion + canary probes).
    let recovery_deadline = Instant::now() + Duration::from_secs(10);
    let fault_stats = loop {
        let stats = fault_fleet.server.stats();
        let iris = stats.engines.iter().find(|e| e.name == "iris").expect("iris engine");
        if stats.breaker_trips >= 1
            && stats.breaker_recloses >= 1
            && iris.breaker.state == BreakerState::Closed
        {
            break stats;
        }
        assert!(
            Instant::now() < recovery_deadline,
            "tripped engine was not re-admitted within 10 s (seed {seed}): trips {}, \
             recloses {}, iris {:?}",
            stats.breaker_trips,
            stats.breaker_recloses,
            iris.breaker.state,
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_accounted(&fault_stats, "fault");
    println!(
        "  faults   | seed {seed}: {} served in {f_wall:.2} s, {} degradations, {} trips, \
         {} recloses, {} rerouted, 0 caller-visible errors; tripped engine re-admitted",
        f_light.latencies_ms.len() + f_heavy.latencies_ms.len(),
        fault_stats.degradations,
        fault_stats.breaker_trips,
        fault_stats.breaker_recloses,
        fault_stats.rerouted,
    );

    let mut attribution_json = serde_json::Value::Null;
    let mut overhead_json = serde_json::Value::Null;
    if attribution_mode {
        // Every breaker trip and degradation in the fault phase must have
        // fired the flight recorder, and the seeded trip must have produced
        // an inspectable snapshot.
        let trip_triggers = flight::trigger_count("breaker_trip") - trips_before;
        assert!(
            trip_triggers >= fault_stats.breaker_trips,
            "flight recorder saw {trip_triggers} breaker-trip triggers for \
             {} observed trips",
            fault_stats.breaker_trips,
        );
        let degradation_triggers = flight::trigger_count("degradation") - degradations_before;
        assert!(
            degradation_triggers >= 1,
            "seeded context loss (seed {seed}) must fire a degradation trigger"
        );
        let snaps = flight::snapshots();
        let trip_snap = snaps
            .iter()
            .find(|s| s.kind == "breaker_trip")
            .expect("seeded breaker trip must capture a flight snapshot");
        assert!(
            trip_snap.context.get("engines").is_some(),
            "breaker-trip snapshot must carry the fleet context"
        );
        assert!(
            trip_snap.entries.iter().any(|e| e.kind == "request"),
            "breaker-trip snapshot must see recent request timelines in the ring"
        );
        flight::write_snapshots("FLIGHT_SNAPSHOT.json").expect("write FLIGHT_SNAPSHOT.json");
        println!(
            "  flight   | {} shed / {} breaker-trip / {} degradation triggers, {} snapshots \
             retained; wrote FLIGHT_SNAPSHOT.json",
            flight::trigger_count("shed"),
            flight::trigger_count("breaker_trip"),
            flight::trigger_count("degradation"),
            flight::snapshot_count(),
        );

        let report = attribution::attribution_report();
        assert_model_attribution(&report, "light");
        assert_model_attribution(&report, "heavy");
        attribution_json = report.to_json();
    }

    if let Some(limit_pct) = overhead_pct {
        // The overhead gate: per-request instrumentation cost with tracing
        // disabled, as a fraction of the steady-phase light-model p50.
        // Measured after the report is built so the synthetic model never
        // appears in it.
        let iters = 200_000u64;
        let per_request_ns = instrumentation_overhead_ns(iters);
        let p50_ns = light_out.percentile(0.50) * 1e6;
        assert!(p50_ns > 0.0, "overhead gate needs a steady-phase p50");
        let pct = per_request_ns / p50_ns * 100.0;
        println!(
            "  overhead | {per_request_ns:.0} ns/request instrumentation over {iters} iters \
             = {pct:.4}% of steady light p50 ({:.3} ms) — limit {limit_pct}%",
            p50_ns / 1e6,
        );
        assert!(
            pct <= limit_pct,
            "tracing-disabled instrumentation overhead {pct:.3}% exceeds {limit_pct}% \
             of steady p50"
        );
        overhead_json = json!({
            "iterations": iters,
            "per_request_ns": per_request_ns,
            "steady_light_p50_ms": p50_ns / 1e6,
            "overhead_pct": pct,
            "limit_pct": limit_pct,
        });
    }

    if json_mode {
        let doc = json!({
            "bench": "SLO-aware fleet serving: admission, deadlines, shedding, circuit breaking",
            "fleet": ["gtx_1080 x16", "intel_iris_pro x4", "android_modern x2", "cpu x1"],
            "clients": clients,
            "requests_per_client": requests,
            "slo": {
                "light_target_ms": light_slo.target_ms,
                "heavy_target_ms": heavy_slo.target_ms,
                "service_margin_ms": SERVICE_MARGIN_MS,
            },
            "steady": {
                "wall_s": wall_s,
                "models": [light_out.to_json("light"), heavy_out.to_json("heavy")],
                "stats": stats_json(&steady),
            },
            "overload": {
                "burst": burst,
                "outcomes": overload.to_json("light"),
                "stats": stats_json(&overload_stats),
            },
            "faults": {
                "seed": seed,
                "context_loss_at_draw": ctx_draw,
                "models": [f_light.to_json("light"), f_heavy.to_json("heavy")],
                "stats": stats_json(&fault_stats),
            },
            "attribution": attribution_json,
            "instrumentation_overhead": overhead_json,
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_SLO.json", text).expect("write BENCH_SLO.json");
        println!("\nwrote BENCH_SLO.json");
    }
    println!("all SLO gates passed");
}
