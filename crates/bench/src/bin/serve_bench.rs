//! Serving throughput/latency harness: dynamic micro-batching vs
//! per-request execution on the simulated WebGL backend.
//!
//! ```text
//! cargo run --release -p webml-bench --bin serve_bench
//!     [-- --tiny] [-- --requests N] [-- --json] [-- --assert-speedup X]
//!     [-- --assert-parity X] [-- --trace out.json]
//! ```
//!
//! Each scenario runs 1, 4, and 16 concurrent closed-loop clients (one
//! outstanding request each) against a `ModelServer` over a WebGL-simulated
//! engine, in two configurations: **batched** (`max_batch` 16, adaptive
//! batch window) and **unbatched** (`max_batch` 1). Reports req/s and
//! p50/p99 latency per cell; `--json` writes `BENCH_SERVE.json` to the
//! current directory, and `--assert-speedup X` exits non-zero unless
//! batched req/s at 16 clients is ≥ X× unbatched (the CI serve-smoke gate
//! uses 1.5). `--assert-parity X` exits non-zero unless batched req/s is
//! ≥ X× unbatched at *every* concurrency level — the adaptive batch window
//! must make batching free when there is nothing to batch (a single
//! closed-loop client), not just profitable under load. `--trace PATH`
//! enables telemetry for the whole run and writes a Chrome trace-event
//! JSON timeline (load it in `chrome://tracing` or Perfetto).

use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::Engine;
use webml_models::serving::{classifier_artifacts, synthetic_example};
use webml_serve::{ModelServer, ModelSource, ServeConfig};
use webml_webgl_sim::devices::DeviceProfile;

const IN_DIM: usize = 32;
const HIDDEN: usize = 64;
const CLASSES: usize = 10;

fn webgl_engine() -> Engine {
    let e = Engine::new();
    let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default())
        .expect("profile supports float textures");
    e.register_backend("webgl", Arc::new(b), 2);
    e
}

struct Cell {
    clients: usize,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    batches: u64,
    batched_requests: u64,
    queue_wait_ms: webml_telemetry::HistogramSummary,
    batch_size: webml_telemetry::HistogramSummary,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One scenario cell: `clients` closed-loop threads, `requests` per client.
fn run_cell(batched: bool, clients: usize, requests: usize) -> Cell {
    let engine = webgl_engine();
    let config = if batched {
        ServeConfig { max_batch: 16, max_wait: Duration::from_millis(2), ..Default::default() }
    } else {
        ServeConfig { max_batch: 1, max_wait: Duration::from_micros(100), ..Default::default() }
    };
    let artifacts = classifier_artifacts(&engine, IN_DIM, HIDDEN, CLASSES, 11)
        .expect("build serving model");
    let server = Arc::new(ModelServer::new(&engine, config));
    let key = server.register(ModelSource::Artifacts(artifacts));
    // Warm the model cache so every cell measures steady-state serving.
    server.infer(key, synthetic_example(IN_DIM, 0), vec![IN_DIM]).expect("warmup inference");

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests);
                for r in 0..requests {
                    let example = synthetic_example(IN_DIM, c * requests + r);
                    let t = Instant::now();
                    let resp = server.infer(key, example, vec![IN_DIM]).expect("inference");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(resp.dims, vec![CLASSES]);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall_s = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let stats = server.stats();
    Cell {
        clients,
        req_per_s: latencies.len() as f64 / wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        batches: stats.batches,
        batched_requests: stats.batched_requests,
        queue_wait_ms: stats.queue_wait_ms,
        batch_size: stats.batch_size,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let requests: usize = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny { 24 } else { 96 });
    let assert_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--assert-speedup")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let assert_parity: Option<f64> = args
        .iter()
        .position(|a| a == "--assert-parity")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let trace_path: Option<String> =
        args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
    if trace_path.is_some() {
        webml_telemetry::set_enabled(true);
    }

    println!(
        "serving benchmark: MLP {IN_DIM}->{HIDDEN}->{HIDDEN}->{CLASSES} on simulated WebGL, \
         {requests} requests/client"
    );
    let client_counts = [1usize, 4, 16];
    let mut json_rows = Vec::new();
    let mut speedup_at_16 = 0.0;
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for &clients in &client_counts {
        let unbatched = run_cell(false, clients, requests);
        let batched = run_cell(true, clients, requests);
        let speedup = batched.req_per_s / unbatched.req_per_s;
        speedups.push((clients, speedup));
        if clients == 16 {
            speedup_at_16 = speedup;
        }
        println!(
            "  {clients:>2} clients | unbatched {:>7.1} req/s (p50 {:.2} ms, p99 {:.2} ms) | \
             batched {:>7.1} req/s (p50 {:.2} ms, p99 {:.2} ms) | {:.2}x",
            unbatched.req_per_s,
            unbatched.p50_ms,
            unbatched.p99_ms,
            batched.req_per_s,
            batched.p50_ms,
            batched.p99_ms,
            speedup,
        );
        for (mode, cell) in [("unbatched", &unbatched), ("batched", &batched)] {
            json_rows.push(json!({
                "mode": mode,
                "clients": cell.clients,
                "req_per_s": cell.req_per_s,
                "p50_ms": cell.p50_ms,
                "p99_ms": cell.p99_ms,
                "batches": cell.batches,
                "batched_requests": cell.batched_requests,
                "queue_wait_ms": {
                    "count": cell.queue_wait_ms.count,
                    "mean": cell.queue_wait_ms.mean,
                    "p50": cell.queue_wait_ms.p50,
                    "p95": cell.queue_wait_ms.p95,
                    "p99": cell.queue_wait_ms.p99,
                },
                "batch_size": {
                    "count": cell.batch_size.count,
                    "mean": cell.batch_size.mean,
                    "p50": cell.batch_size.p50,
                    "p95": cell.batch_size.p95,
                    "p99": cell.batch_size.p99,
                },
            }));
        }
    }
    if json_mode {
        let doc = json!({
            "bench": "serving throughput: dynamic micro-batching vs per-request",
            "backend": "webgl (integrated-GPU profile, simulated)",
            "model": { "in_dim": IN_DIM, "hidden": HIDDEN, "classes": CLASSES },
            "requests_per_client": requests,
            "rows": json_rows,
            "speedup_at_16_clients": speedup_at_16,
            "speedup_by_clients": speedups
                .iter()
                .map(|&(clients, s)| json!({ "clients": clients, "speedup": s }))
                .collect::<Vec<_>>(),
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_SERVE.json", text).expect("write BENCH_SERVE.json");
        println!("\nwrote BENCH_SERVE.json");
    }
    if let Some(path) = trace_path {
        webml_telemetry::set_enabled(false);
        let dropped = webml_telemetry::dropped_events();
        webml_telemetry::write_chrome_trace(std::path::Path::new(&path))
            .expect("write Chrome trace");
        println!("wrote Chrome trace to {path} ({dropped} events dropped to ring overflow)");
    }
    if let Some(want) = assert_speedup {
        assert!(
            speedup_at_16 >= want,
            "batched serving speedup at 16 clients was {speedup_at_16:.2}x, expected >= {want}x"
        );
        println!("speedup gate passed: {speedup_at_16:.2}x >= {want}x at 16 clients");
    }
    if let Some(want) = assert_parity {
        for &(clients, speedup) in &speedups {
            assert!(
                speedup >= want,
                "batched serving was {speedup:.2}x unbatched at {clients} clients, \
                 expected >= {want}x at every level (adaptive batch window regression)"
            );
        }
        let worst =
            speedups.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
        println!("parity gate passed: batched >= {want}x unbatched at every level (worst {worst:.2}x)");
    }
}
