//! Quantized-inference benchmark: U8 weights end-to-end without an f32
//! decode (paper Sec 5.1: "quantization ... reduces the model size 4x").
//!
//! ```text
//! cargo run --release -p webml-bench --bin quant_bench
//!     [-- --tiny] [-- --json] [-- --assert-wire-ratio R]
//!     [-- --assert-resident-ratio R] [-- --assert-drift D]
//! ```
//!
//! A seeded MobileNet GraphSpec is measured three ways against its f32
//! twin:
//!
//! - **bytes on the wire** — the serialized web-format weight payload,
//!   per-channel U8 for every weight whose consumers are all matmul/conv
//!   kernels (`quantizable_weights`), f32 for the rest (biases);
//! - **resident bytes** — weights as uploaded (`GraphModel::weight_bytes`,
//!   one byte per code) plus the plan compiler's dtype-aware prediction
//!   (`Plan::predicted_resident_bytes`), which shrinks ~4x because the
//!   dominant weight residency shrinks 4x;
//! - **accuracy drift** — max |quantized - f32| over the softmax outputs
//!   on cpu, simulated webgl, and native, with the per-weight bound
//!   `Quantization::max_error` reported alongside.
//!
//! `--json` writes `BENCH_QUANT.json`; the `--assert-*` flags exit
//! non-zero when a gate fails (the CI quant-smoke gate uses
//! 0.30 / 0.35 / 0.05).

use serde_json::json;
use std::sync::Arc;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_core::cpu::CpuBackend;
use webml_core::{Engine, Shape};
use webml_converter::{quantizable_weights, Quantization, WeightSpec};
use webml_models::{graph_mobilenet, GraphSpec, MobileNetConfig};
use webml_webgl_sim::devices::DeviceProfile;

/// Serialize the spec's weights into web-format bytes: per-channel U8 for
/// eligible weights, f32 for the rest. Returns (shard payload bytes,
/// manifest bytes, max per-element quantization error over all quantized
/// weights). The two byte counts are separate wire artifacts — the binary
/// shards dominate and cache independently of the (JSON) manifest, whose
/// per-channel scale/min arrays grow with channel count, not param count.
fn wire_bytes(spec: &GraphSpec, quantized: bool) -> (usize, usize, f32) {
    let eligible = quantizable_weights(&spec.graph);
    let mut data_len = 0usize;
    let mut specs: Vec<WeightSpec> = Vec::new();
    let mut worst_err = 0.0f32;
    for (name, values, shape) in &spec.weights {
        match eligible.get(name).filter(|_| quantized) {
            Some(&axis) => {
                let (codes, scales, mins) = Quantization::U8
                    .quantize_per_channel(name, values, shape, axis)
                    .expect("quantize weight");
                data_len += codes.len();
                for (s, m) in scales.iter().zip(&mins) {
                    worst_err =
                        worst_err.max(Quantization::U8.max_error(*m, m + s * 255.0));
                }
                specs.push(WeightSpec::quantized_per_channel(
                    name.clone(),
                    shape.clone(),
                    Quantization::U8,
                    axis,
                    scales,
                    mins,
                ));
            }
            None => {
                data_len += values.len() * 4;
                specs.push(WeightSpec::full(name.clone(), shape.clone()));
            }
        }
    }
    let manifest: usize = specs
        .iter()
        .map(|s| serde_json::to_string(&s.to_json()).map(|j| j.len()).unwrap_or(0))
        .sum();
    (data_len, manifest, worst_err)
}

fn cpu_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
    e
}

fn native_engine() -> Engine {
    let e = Engine::new();
    e.register_backend("native", Arc::new(NativeBackend::with_threads("native", 2)), 1);
    e
}

fn webgl_engine() -> Engine {
    let e = Engine::new();
    let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default())
        .expect("profile supports float textures");
    e.register_backend("webgl", Arc::new(b), 2);
    e
}

/// One forward pass on a fresh model; returns the softmax output.
fn forward(spec: &GraphSpec, engine: &Engine, quantized: bool) -> Vec<f32> {
    let model = if quantized {
        spec.build_quantized(engine).expect("build quantized model")
    } else {
        spec.build(engine).expect("build f32 model")
    };
    let (vals, shape) = spec.example(1, 3);
    let x = engine.tensor(vals, Shape::new(shape)).expect("input upload");
    let outs = model.execute(&[(&spec.input, &x)], &[&spec.output]).expect("forward pass");
    let v = outs[0].to_f32_vec().expect("readback");
    for t in outs {
        t.dispose();
    }
    x.dispose();
    model.dispose_weights();
    v
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let flag = |name: &str| -> Option<f64> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
    };

    let config = MobileNetConfig {
        input_size: if tiny { 32 } else { 96 },
        classes: 10,
        ..MobileNetConfig::small()
    };
    let spec = graph_mobilenet(&config);
    println!(
        "quantized-inference benchmark: MobileNet {}x{}, {} params",
        config.input_size,
        config.input_size,
        spec.param_count()
    );

    // Bytes on the wire (binary shard payload; manifest reported alongside).
    let (f32_wire, f32_manifest, _) = wire_bytes(&spec, false);
    let (quant_wire, quant_manifest, weight_err_bound) = wire_bytes(&spec, true);
    let wire_ratio = quant_wire as f64 / f32_wire as f64;
    println!(
        "  wire bytes     | f32 {f32_wire} (+{f32_manifest} manifest) | \
         quantized {quant_wire} (+{quant_manifest} manifest) | payload ratio {wire_ratio:.3}"
    );

    // Resident bytes + dtype-aware plan prediction (cpu engine).
    let e = cpu_engine();
    let fm = spec.build(&e).expect("build f32 model");
    let qm = spec.build_quantized(&e).expect("build quantized model");
    let resident_ratio = qm.weight_bytes() as f64 / fm.weight_bytes() as f64;
    let sig = vec![(spec.input.clone(), {
        let mut d = spec.input_shape.clone();
        d[0] = 1;
        d
    })];
    let f32_plan = fm.plan_for_shapes(&sig, &[&spec.output]).expect("f32 plan");
    let quant_plan = qm.plan_for_shapes(&sig, &[&spec.output]).expect("quantized plan");
    let predicted_ratio =
        quant_plan.predicted_resident_bytes() as f64 / f32_plan.predicted_resident_bytes() as f64;
    println!(
        "  resident bytes | f32 {} | quantized {} | ratio {resident_ratio:.3} | \
         planned {} -> {} ({predicted_ratio:.3})",
        fm.weight_bytes(),
        qm.weight_bytes(),
        f32_plan.predicted_resident_bytes(),
        quant_plan.predicted_resident_bytes(),
    );

    // Accuracy drift per backend: max |quantized - f32| over the softmax.
    let mut drifts: Vec<(String, f64)> = Vec::new();
    for (name, engine) in
        [("cpu", cpu_engine()), ("webgl", webgl_engine()), ("native", native_engine())]
    {
        let f = forward(&spec, &engine, false);
        let q = forward(&spec, &engine, true);
        let drift = f
            .iter()
            .zip(&q)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0f64, f64::max);
        println!("  drift/{name:<7} | max |quantized - f32| = {drift:.5}");
        drifts.push((name.to_string(), drift));
    }
    let worst_drift = drifts.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);

    if json_mode {
        let doc = json!({
            "bench": "quantized vs f32 MobileNet inference",
            "input_size": config.input_size,
            "param_count": spec.param_count(),
            "wire_bytes_f32": f32_wire,
            "wire_bytes_quantized": quant_wire,
            "manifest_bytes_f32": f32_manifest,
            "manifest_bytes_quantized": quant_manifest,
            "wire_ratio": wire_ratio,
            "resident_weight_bytes_f32": fm.weight_bytes(),
            "resident_weight_bytes_quantized": qm.weight_bytes(),
            "resident_ratio": resident_ratio,
            "predicted_resident_bytes_f32": f32_plan.predicted_resident_bytes(),
            "predicted_resident_bytes_quantized": quant_plan.predicted_resident_bytes(),
            "predicted_resident_ratio": predicted_ratio,
            "weight_max_error_bound": weight_err_bound,
            "drift": drifts.iter().map(|(n, d)| json!({"backend": n, "max_abs_drift": d})).collect::<Vec<_>>(),
            "worst_drift": worst_drift,
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_QUANT.json", text).expect("write BENCH_QUANT.json");
        println!("\nwrote BENCH_QUANT.json");
    }

    if let Some(want) = flag("--assert-wire-ratio") {
        assert!(
            wire_ratio <= want,
            "quantized wire bytes were {wire_ratio:.3}x f32, expected <= {want}"
        );
        println!("wire-ratio gate passed: {wire_ratio:.3} <= {want}");
    }
    if let Some(want) = flag("--assert-resident-ratio") {
        let got = resident_ratio.max(predicted_ratio);
        assert!(
            got <= want,
            "quantized residency was {got:.3}x f32 (weights {resident_ratio:.3}, \
             planned {predicted_ratio:.3}), expected <= {want}"
        );
        println!("resident-ratio gate passed: {got:.3} <= {want}");
    }
    if let Some(want) = flag("--assert-drift") {
        assert!(
            worst_drift <= want,
            "quantized output drift was {worst_drift:.5}, expected <= {want}"
        );
        println!("drift gate passed: {worst_drift:.5} <= {want}");
    }
}
