//! Regenerates **Table 1** of the paper: single-inference MobileNet v1
//! latency per backend, with speedups over the plain-JS baseline.
//!
//! ```text
//! cargo run --release -p webml-bench --bin table1 [-- --full] [-- --runs N]
//! ```
//!
//! The default workload is MobileNet α=0.25 at 96x96 (see
//! `harness::bench_mobilenet_config`); `--full` runs the paper's exact
//! α=1.0 224x224 configuration (slow on the interpreter-style baseline).

use webml_bench::harness::{bench_mobilenet_config, print_speedup_table, TableBackend};
use webml_models::MobileNetConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 3 } else { 10 });

    let config = if full { MobileNetConfig::paper_table1() } else { bench_mobilenet_config() };
    println!(
        "MobileNet v1 alpha={} input={}x{}x3, single inference averaged over {} runs",
        config.alpha, config.input_size, config.input_size, runs
    );

    let mut rows = Vec::new();
    for backend in TableBackend::all() {
        let (ms, method) = webml_bench::harness::measure_row(backend, config, runs);
        println!("  {:<40} {ms:>10.2} ms  [{method}]", backend.label());
        rows.push((format!("{} ({method})", backend.label()), ms));
    }
    print_speedup_table("Table 1: backend speedups over the plain-JS baseline", &rows);
    println!(
        "\npaper (MacBook Pro / GTX 1080): Plain JS 3426 ms (1x), WebGL Iris Pro 49 ms (71x),\n\
         WebGL GTX 1080 5 ms (685x), Node CPU AVX2 87 ms (39x), Node CUDA 3 ms (1105x)"
    );
}
