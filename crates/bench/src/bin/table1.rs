//! Regenerates **Table 1** of the paper: single-inference MobileNet v1
//! latency per backend, with speedups over the plain-JS baseline.
//!
//! ```text
//! cargo run --release -p webml-bench --bin table1 [-- --full] [-- --tiny]
//!     [-- --runs N] [-- --json]
//! ```
//!
//! The default workload is MobileNet α=0.25 at 96x96 (see
//! `harness::bench_mobilenet_config`); `--full` runs the paper's exact
//! α=1.0 224x224 configuration (slow on the interpreter-style baseline) and
//! `--tiny` the 48x48 CI-smoke configuration. `--json` additionally measures
//! every row with kernel fusion disabled and writes `BENCH_TABLE1.json`
//! (per-row ms, speedups, and device program counts, fused vs unfused) to
//! the current directory, plus two derived sections:
//!
//! - `gaps`: `gap_webgl_native` / `gap_webgpu_native` — simulated device
//!   time of each GPU rung relative to the modeled CUDA-class row on the
//!   same discrete-GPU profile. The paper's Sec 3.9 gap is WebGL's 3-10x;
//!   Sec 4.3 predicts compute shaders close most of it, so
//!   `gap_webgpu_native` should land materially below `gap_webgl_native`.
//! - `kernel_styles`: the single-thread fragment / packed / tiled-compute
//!   matmul comparison (formerly only in the `webgpu_preview` bin).

use serde_json::{json, Value};
use webml_bench::harness::{
    bench_mobilenet_config, measure_row_detailed, print_speedup_table, tiny_mobilenet_config,
    TableBackend,
};
use webml_bench::kernel_styles::measure_styles;
use webml_models::MobileNetConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 3 } else { 10 });

    let config = if full {
        MobileNetConfig::paper_table1()
    } else if tiny {
        tiny_mobilenet_config()
    } else {
        bench_mobilenet_config()
    };
    println!(
        "MobileNet v1 alpha={} input={}x{}x3, single inference averaged over {} runs",
        config.alpha, config.input_size, config.input_size, runs
    );

    let mut rows = Vec::new();
    let mut json_rows: Vec<Value> = Vec::new();
    let mut base_ms = None;
    let mut fused_by_backend: Vec<(TableBackend, f64)> = Vec::new();
    for backend in TableBackend::all() {
        let fused = measure_row_detailed(backend, config, runs, true);
        fused_by_backend.push((backend, fused.ms));
        println!("  {:<40} {:>10.2} ms  [{}]", backend.label(), fused.ms, fused.method);
        rows.push((format!("{} ({})", backend.label(), fused.method), fused.ms));
        let base = *base_ms.get_or_insert(fused.ms);
        if json_mode {
            let unfused = measure_row_detailed(backend, config, runs, false);
            let programs = |p: Option<u64>| p.map(|v| json!(v)).unwrap_or(Value::Null);
            json_rows.push(json!({
                "backend": backend.label(),
                "method": fused.method,
                "fused_ms": fused.ms,
                "unfused_ms": unfused.ms,
                "speedup_vs_baseline": base / fused.ms,
                "fusion_time_ratio": unfused.ms / fused.ms,
                "fused_programs": programs(fused.programs),
                "unfused_programs": programs(unfused.programs),
            }));
        }
    }
    print_speedup_table("Table 1: backend speedups over the plain-JS baseline", &rows);
    if json_mode {
        let ms_of = |which: TableBackend| {
            fused_by_backend
                .iter()
                .find(|(b, _)| *b == which)
                .map(|(_, ms)| *ms)
                .expect("row measured")
        };
        // Gap rows: both GPU rungs against the modeled CUDA-class offload,
        // all three on the discrete-GPU profile (the paper's GTX 1080).
        let cuda_ms = ms_of(TableBackend::NativeCudaClass);
        let webgl_ms = ms_of(TableBackend::WebGlDiscrete);
        let webgpu_ms = ms_of(TableBackend::WebGpuDiscrete);
        let styles = measure_styles(256, if tiny { 2 } else { 5 });
        let style_base = styles[0].gflops;
        let doc = json!({
            "table": "Table 1: MobileNet v1 single-inference latency",
            "workload": {
                "alpha": config.alpha,
                "input_size": config.input_size,
                "classes": config.classes,
                "runs": runs,
            },
            "rows": json_rows,
            "gaps": {
                "gap_webgl_native": webgl_ms / cuda_ms,
                "gap_webgpu_native": webgpu_ms / cuda_ms,
                "webgpu_speedup_over_webgl": webgl_ms / webgpu_ms,
                "note": "simulated GPU device ms over modeled CUDA-class ms, discrete profile; paper Sec 3.9 reports a 3-10x WebGL gap, Sec 4.3 predicts WebGPU closes it",
            },
            "kernel_styles": styles.iter().map(|s| json!({
                "style": s.key,
                "label": s.label,
                "ms": s.ms,
                "gflops": s.gflops,
                "speedup_vs_fragment": s.gflops / style_base,
            })).collect::<Vec<Value>>(),
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_TABLE1.json", text).expect("write BENCH_TABLE1.json");
        println!("\nwrote BENCH_TABLE1.json");
    }
    println!(
        "\npaper (MacBook Pro / GTX 1080): Plain JS 3426 ms (1x), WebGL Iris Pro 49 ms (71x),\n\
         WebGL GTX 1080 5 ms (685x), Node CPU AVX2 87 ms (39x), Node CUDA 3 ms (1105x)"
    );
}
