//! Regenerates **Table 1** of the paper: single-inference MobileNet v1
//! latency per backend, with speedups over the plain-JS baseline.
//!
//! ```text
//! cargo run --release -p webml-bench --bin table1 [-- --full] [-- --tiny]
//!     [-- --runs N] [-- --json]
//! ```
//!
//! The default workload is MobileNet α=0.25 at 96x96 (see
//! `harness::bench_mobilenet_config`); `--full` runs the paper's exact
//! α=1.0 224x224 configuration (slow on the interpreter-style baseline) and
//! `--tiny` the 48x48 CI-smoke configuration. `--json` additionally measures
//! every row with kernel fusion disabled and writes `BENCH_TABLE1.json`
//! (per-row ms, speedups, and device program counts, fused vs unfused) to
//! the current directory.

use serde_json::{json, Value};
use webml_bench::harness::{
    bench_mobilenet_config, measure_row_detailed, print_speedup_table, tiny_mobilenet_config,
    TableBackend,
};
use webml_models::MobileNetConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_mode = args.iter().any(|a| a == "--json");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 3 } else { 10 });

    let config = if full {
        MobileNetConfig::paper_table1()
    } else if tiny {
        tiny_mobilenet_config()
    } else {
        bench_mobilenet_config()
    };
    println!(
        "MobileNet v1 alpha={} input={}x{}x3, single inference averaged over {} runs",
        config.alpha, config.input_size, config.input_size, runs
    );

    let mut rows = Vec::new();
    let mut json_rows: Vec<Value> = Vec::new();
    let mut base_ms = None;
    for backend in TableBackend::all() {
        let fused = measure_row_detailed(backend, config, runs, true);
        println!("  {:<40} {:>10.2} ms  [{}]", backend.label(), fused.ms, fused.method);
        rows.push((format!("{} ({})", backend.label(), fused.method), fused.ms));
        let base = *base_ms.get_or_insert(fused.ms);
        if json_mode {
            let unfused = measure_row_detailed(backend, config, runs, false);
            let programs = |p: Option<u64>| p.map(|v| json!(v)).unwrap_or(Value::Null);
            json_rows.push(json!({
                "backend": backend.label(),
                "method": fused.method,
                "fused_ms": fused.ms,
                "unfused_ms": unfused.ms,
                "speedup_vs_baseline": base / fused.ms,
                "fusion_time_ratio": unfused.ms / fused.ms,
                "fused_programs": programs(fused.programs),
                "unfused_programs": programs(unfused.programs),
            }));
        }
    }
    print_speedup_table("Table 1: backend speedups over the plain-JS baseline", &rows);
    if json_mode {
        let doc = json!({
            "table": "Table 1: MobileNet v1 single-inference latency",
            "workload": {
                "alpha": config.alpha,
                "input_size": config.input_size,
                "classes": config.classes,
                "runs": runs,
            },
            "rows": json_rows,
        });
        let text = serde_json::to_string_pretty(&doc).expect("serialize");
        std::fs::write("BENCH_TABLE1.json", text).expect("write BENCH_TABLE1.json");
        println!("\nwrote BENCH_TABLE1.json");
    }
    println!(
        "\npaper (MacBook Pro / GTX 1080): Plain JS 3426 ms (1x), WebGL Iris Pro 49 ms (71x),\n\
         WebGL GTX 1080 5 ms (685x), Node CPU AVX2 87 ms (39x), Node CUDA 3 ms (1105x)"
    );
}
