//! Benchmark harnesses regenerating every table and figure of the paper.
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded results.

#![warn(missing_docs)]

pub mod harness;
pub mod kernel_styles;
