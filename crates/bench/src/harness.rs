//! Shared benchmark harness: engine construction per backend
//! configuration, timing helpers, and paper-style table printing.

use std::sync::Arc;
use std::time::Instant;
use webml_backend_cpu::PlainJsBackend;
use webml_backend_native::NativeBackend;
use webml_backend_webgl::{WebGlBackend, WebGlConfig};
use webml_backend_webgpu::WebGpuBackend;
use webml_core::{Engine, Tensor};
use webml_models::{Image, MobileNet, MobileNetConfig};
use webml_webgl_sim::devices::DeviceProfile;
use webml_webgpu_sim::WebGpuConfig;

/// The backend rows of Table 1 and their hardware analogues.
///
/// CPU rows report measured wall time. GPU rows report the device's
/// *simulated time* (serial kernel execution rescaled by the profile's
/// modeled shader-core count — see `webml_webgl_sim::queue`), because the
/// benchmark host cannot supply GPU-scale physical parallelism. The
/// CUDA-class row applies a documented modeled factor to the measured
/// native kernel time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableBackend {
    /// "Plain JS": the interpreter-style scalar baseline (wall time).
    PlainJs,
    /// "WebGL (Intel Iris Pro)": integrated-GPU profile (simulated time).
    WebGlIntegrated,
    /// "WebGL (GTX 1080)": discrete-GPU profile (simulated time).
    WebGlDiscrete,
    /// WebGPU compute backend on the integrated-GPU profile (simulated
    /// time): workgroup shared-memory tiles over storage buffers.
    WebGpuIntegrated,
    /// WebGPU compute backend on the discrete-GPU profile (simulated time).
    WebGpuDiscrete,
    /// "Node.js CPU w/ AVX2": optimized native kernels (wall time).
    NativeSingleThread,
    /// "Node.js CUDA (GTX 1080)": native kernels with the modeled
    /// GPU-offload factor applied (simulated time).
    NativeCudaClass,
}

/// Modeled speedup of offloading the optimized native kernels to a
/// CUDA-class accelerator (calibration constant; see EXPERIMENTS.md).
pub const CUDA_CLASS_MODEL_FACTOR: f64 = 24.0;

impl TableBackend {
    /// All rows, in Table 1 order (the two WebGPU rows extend the paper's
    /// table with its Sec 4.3 compute-shader prediction).
    pub fn all() -> [TableBackend; 7] {
        [
            TableBackend::PlainJs,
            TableBackend::WebGlIntegrated,
            TableBackend::WebGlDiscrete,
            TableBackend::WebGpuIntegrated,
            TableBackend::WebGpuDiscrete,
            TableBackend::NativeSingleThread,
            TableBackend::NativeCudaClass,
        ]
    }

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            TableBackend::PlainJs => "Plain JS",
            TableBackend::WebGlIntegrated => "WebGL (integrated-GPU profile)",
            TableBackend::WebGlDiscrete => "WebGL (discrete-GPU profile)",
            TableBackend::WebGpuIntegrated => "WebGPU (integrated-GPU profile)",
            TableBackend::WebGpuDiscrete => "WebGPU (discrete-GPU profile)",
            TableBackend::NativeSingleThread => "Native CPU (Node AVX2-class)",
            TableBackend::NativeCudaClass => "Native + modeled CUDA-class offload",
        }
    }

    /// Build a fresh engine with only this backend registered.
    pub fn engine(self) -> Engine {
        let e = Engine::new();
        match self {
            TableBackend::PlainJs => {
                e.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 1);
            }
            TableBackend::WebGlIntegrated => {
                let b = WebGlBackend::new(DeviceProfile::intel_iris_pro(), WebGlConfig::default())
                    .expect("profile supports float textures");
                e.register_backend("webgl", Arc::new(b), 1);
            }
            TableBackend::WebGlDiscrete => {
                let b = WebGlBackend::new(DeviceProfile::gtx_1080(), WebGlConfig::default())
                    .expect("profile supports float textures");
                e.register_backend("webgl", Arc::new(b), 1);
            }
            TableBackend::WebGpuIntegrated => {
                let b = WebGpuBackend::new(DeviceProfile::intel_iris_pro(), WebGpuConfig::default())
                    .expect("profile exposes a WebGPU compute API");
                e.register_backend("webgpu", Arc::new(b), 1);
            }
            TableBackend::WebGpuDiscrete => {
                let b = WebGpuBackend::new(DeviceProfile::gtx_1080(), WebGpuConfig::default())
                    .expect("profile exposes a WebGPU compute API");
                e.register_backend("webgpu", Arc::new(b), 1);
            }
            TableBackend::NativeSingleThread => {
                e.register_backend("native1", Arc::new(NativeBackend::with_threads("native1", 1)), 1);
            }
            TableBackend::NativeCudaClass => {
                e.register_backend("native", Arc::new(NativeBackend::new()), 1);
            }
        }
        e
    }
}

/// The MobileNet workload of Table 1 at a reduced, benchmark-friendly
/// scale. The paper measures MobileNet v1 1.0 at 224; the plain-JS-style
/// baseline makes that configuration minutes-per-inference in a simulator,
/// so the default harness uses α=0.25 at 96x96 — relative speedups (the
/// quantity Table 1 reports) are preserved.
pub fn bench_mobilenet_config() -> MobileNetConfig {
    MobileNetConfig { alpha: 0.25, input_size: 96, classes: 100, batch_norm: false, seed: 1 }
}

/// A smaller configuration for per-iteration criterion benches.
pub fn tiny_mobilenet_config() -> MobileNetConfig {
    MobileNetConfig { alpha: 0.25, input_size: 48, classes: 10, batch_norm: false, seed: 1 }
}

/// Build the MobileNet + input pair on an engine.
pub fn mobilenet_workload(engine: &Engine, config: MobileNetConfig) -> (MobileNet, Tensor) {
    let net = MobileNet::new(engine, config).expect("build mobilenet");
    let img = Image::synthetic_person(config.input_size, config.input_size);
    let input = img.to_normalized_tensor(engine, config.input_size).expect("input tensor");
    (net, input)
}

/// One full inference including readback, in milliseconds.
pub fn time_inference(net: &mut MobileNet, input: &Tensor) -> f64 {
    let t0 = Instant::now();
    let out = net.infer(input).expect("inference");
    let _ = out.data_sync().expect("readback");
    out.dispose();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Mean of `runs` timed inferences after one warmup.
pub fn mean_inference_ms(net: &mut MobileNet, input: &Tensor, runs: usize) -> f64 {
    let _ = time_inference(net, input);
    let mut total = 0.0;
    for _ in 0..runs {
        total += time_inference(net, input);
    }
    total / runs as f64
}

/// Mean *device-kernel* milliseconds per inference (the `tf.time` metric:
/// pure device time, excluding upload/download — Sec 3.8), over `runs`.
pub fn mean_kernel_ms(engine: &Engine, net: &mut MobileNet, input: &Tensor, runs: usize) -> f64 {
    let _ = time_inference(net, input);
    let mut total = 0.0;
    for _ in 0..runs {
        let (_, t) = engine.time(|| {
            let out = net.infer(input).expect("inference");
            let _ = out.data_sync().expect("readback");
            out.dispose();
        });
        total += t.kernel_ms;
    }
    total / runs as f64
}

/// Measure one Table 1 row: `(milliseconds, timing-method note)`.
pub fn measure_row(
    backend: TableBackend,
    config: MobileNetConfig,
    runs: usize,
) -> (f64, &'static str) {
    let m = measure_row_detailed(backend, config, runs, true);
    (m.ms, m.method)
}

/// One Table 1 row measured with full diagnostics (see
/// [`measure_row_detailed`]).
#[derive(Debug, Clone)]
pub struct RowMeasurement {
    /// Mean per-inference milliseconds (method-dependent, see `method`).
    pub ms: f64,
    /// How `ms` was obtained ("measured wall" / "simulated device" /
    /// "modeled offload").
    pub method: &'static str,
    /// Device programs issued by one warm inference — `Some` only on the
    /// GPU rows, where the simulator counts draw calls (WebGL) or compute
    /// dispatches (WebGPU).
    pub programs: Option<u64>,
}

/// [`measure_row`] plus a per-inference device-program count, with kernel
/// fusion switched on or off via `fusion` — the fused-vs-unfused comparison
/// behind the `--json` bench output.
pub fn measure_row_detailed(
    backend: TableBackend,
    config: MobileNetConfig,
    runs: usize,
    fusion: bool,
) -> RowMeasurement {
    // Build the engine here (not via `TableBackend::engine`) so the GPU
    // rows keep a handle on the backend for program-count readout.
    let engine = Engine::new();
    let gpu_probe: Option<Box<dyn Fn() -> u64>> = match backend {
        TableBackend::PlainJs => {
            engine.register_backend("plainjs", Arc::new(PlainJsBackend::new()), 1);
            None
        }
        TableBackend::WebGlIntegrated | TableBackend::WebGlDiscrete => {
            let profile = if backend == TableBackend::WebGlIntegrated {
                DeviceProfile::intel_iris_pro()
            } else {
                DeviceProfile::gtx_1080()
            };
            let b = Arc::new(
                WebGlBackend::new(profile, WebGlConfig::default())
                    .expect("profile supports float textures"),
            );
            engine.register_backend("webgl", b.clone(), 1);
            Some(Box::new(move || b.context().memory().programs_run))
        }
        TableBackend::WebGpuIntegrated | TableBackend::WebGpuDiscrete => {
            let profile = if backend == TableBackend::WebGpuIntegrated {
                DeviceProfile::intel_iris_pro()
            } else {
                DeviceProfile::gtx_1080()
            };
            let b = Arc::new(
                WebGpuBackend::new(profile, WebGpuConfig::default())
                    .expect("profile exposes a WebGPU compute API"),
            );
            engine.register_backend("webgpu", b.clone(), 1);
            Some(Box::new(move || b.context().memory().dispatches_run))
        }
        TableBackend::NativeSingleThread => {
            engine
                .register_backend("native1", Arc::new(NativeBackend::with_threads("native1", 1)), 1);
            None
        }
        TableBackend::NativeCudaClass => {
            engine.register_backend("native", Arc::new(NativeBackend::new()), 1);
            None
        }
    };
    engine.set_fusion_enabled(fusion);
    let (mut net, input) = mobilenet_workload(&engine, config);
    // Program count: one warm inference after one warmup.
    let programs = gpu_probe.map(|count| {
        let _ = time_inference(&mut net, &input);
        let before = count();
        let _ = time_inference(&mut net, &input);
        count() - before
    });
    let (ms, method) = match backend {
        TableBackend::PlainJs | TableBackend::NativeSingleThread => {
            (mean_inference_ms(&mut net, &input, runs), "measured wall")
        }
        TableBackend::WebGlIntegrated
        | TableBackend::WebGlDiscrete
        | TableBackend::WebGpuIntegrated
        | TableBackend::WebGpuDiscrete => {
            (mean_kernel_ms(&engine, &mut net, &input, runs), "simulated device")
        }
        TableBackend::NativeCudaClass => (
            mean_kernel_ms(&engine, &mut net, &input, runs) / CUDA_CLASS_MODEL_FACTOR,
            "modeled offload",
        ),
    };
    RowMeasurement { ms, method, programs }
}

/// Print a Table 1-style markdown table of `(label, ms)` rows; speedups are
/// relative to the first row.
pub fn print_speedup_table(title: &str, rows: &[(String, f64)]) {
    println!("\n## {title}\n");
    println!("| Backend | Time (ms) | Speedup |");
    println!("|---|---|---|");
    let base = rows.first().map(|(_, ms)| *ms).unwrap_or(1.0);
    for (label, ms) in rows {
        println!("| {label} | {ms:.2} | {:.1}x |", base / ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_backend_builds_and_runs() {
        for backend in TableBackend::all() {
            let e = backend.engine();
            let t = e.tensor_1d(&[1.0, 2.0]).unwrap();
            let y = webml_core::ops::square(&t).unwrap();
            assert_eq!(y.to_f32_vec().unwrap(), vec![1.0, 4.0], "{}", backend.label());
        }
    }

    #[test]
    fn inference_timing_is_positive() {
        let e = TableBackend::NativeCudaClass.engine();
        let (mut net, input) = mobilenet_workload(&e, tiny_mobilenet_config());
        let ms = time_inference(&mut net, &input);
        assert!(ms > 0.0);
    }
}
