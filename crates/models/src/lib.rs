//! # webml-models
//!
//! The models repo (paper Sec 5.2): pretrained-style model wrappers whose
//! prediction methods "always take native JS objects like DOM elements or
//! primitive arrays and return JS objects that represent human-friendly
//! predictions" — here, [`Image`]s in and plain structs out, no tensors in
//! the public API. Expert users can still reach the tensor-level
//! [`MobileNet::infer`] embedding API for transfer learning.
//!
//! Weights are deterministic synthetic stand-ins: the paper's experiments
//! measure runtime and API shape, which depend only on the architecture.

#![warn(missing_docs)]

pub mod graphdef;
pub mod image;
pub mod knn;
pub mod mobilenet;
pub mod posenet;
pub mod repo;
pub mod serving;
pub mod speech;
pub mod tsne;

pub use graphdef::{graph_mlp, graph_mobilenet, GraphSpec};
pub use image::Image;
pub use knn::KnnClassifier;
pub use mobilenet::{MobileNet, MobileNetConfig};
pub use posenet::{Keypoint, Pose, PoseNet};
pub use serving::{classifier_artifacts, synthetic_example};
pub use speech::SpeechCommands;
pub use tsne::{tsne, TsneConfig};
