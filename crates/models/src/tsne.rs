//! t-SNE on the ops API — the paper's Sec 6.4 "numeric applications"
//! example (tfjs-tsne): GPU-accelerated dimensionality reduction running on
//! whatever backend the engine uses.
//!
//! This is the exact O(n²) formulation with the analytic Kullback-Leibler
//! gradient computed entirely in tensor ops, so every iteration runs as a
//! handful of matmul/element-wise kernels on the active backend.

use webml_core::{ops, Engine, Error, Result, Tensor};

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity of the input-space affinities.
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Early-exaggeration factor applied to P for the first quarter of
    /// iterations (standard t-SNE trick for cluster separation).
    pub exaggeration: f32,
    /// Random seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 100.0,
            momentum: 0.8,
            exaggeration: 4.0,
            seed: 7,
        }
    }
}

/// Embed `n` points of dimension `d` (row-major `data`, length `n*d`) into
/// 2-D. Returns the `[n, 2]` embedding coordinates.
///
/// # Errors
/// Fails when fewer than 4 points are supplied or the buffer length is
/// inconsistent.
pub fn tsne(engine: &Engine, data: &[f32], n: usize, d: usize, config: TsneConfig) -> Result<Vec<f32>> {
    if n < 4 {
        return Err(Error::invalid("tsne", "need at least 4 points"));
    }
    if data.len() != n * d {
        return Err(Error::invalid("tsne", format!("data length {} != {n}x{d}", data.len())));
    }
    // Input affinities P: perplexity-calibrated Gaussian kernel,
    // symmetrized. Computed host-side once (O(n² log(precision))).
    let p = joint_probabilities(data, n, d, config.perplexity);

    let exaggerated: Vec<f32> = p.iter().map(|v| v * config.exaggeration).collect();
    let p_exag = engine.tensor(exaggerated, [n, n])?;
    let p_plain = engine.tensor(p, [n, n])?;

    let mut y = engine.rand_normal([n, 2], 0.0, 1e-2, config.seed)?;
    let mut velocity = engine.zeros([n, 2], webml_core::DType::F32)?;
    let exaggeration_end = config.iterations / 4;

    for iter in 0..config.iterations {
        let p_t = if iter < exaggeration_end { &p_exag } else { &p_plain };
        let (new_y, new_v) = engine.tidy(|| -> Result<(Tensor, Tensor)> {
            let grad = kl_gradient(engine, p_t, &y, n)?;
            // velocity = momentum * velocity - lr * grad; y += velocity.
            let mom = engine.scalar(config.momentum)?;
            let lr = engine.scalar(config.learning_rate)?;
            let v = ops::sub(&ops::mul(&velocity, &mom)?, &ops::mul(&grad, &lr)?)?;
            let ny = ops::add(&y, &v)?;
            // Re-center to keep the embedding bounded.
            let mean = ops::mean(&ny, Some(&[0]), true)?;
            Ok((ops::sub(&ny, &mean)?, v))
        })?;
        y.dispose();
        velocity.dispose();
        y = new_y;
        velocity = new_v;
    }
    let out = y.to_f32_vec()?;
    y.dispose();
    velocity.dispose();
    p_exag.dispose();
    p_plain.dispose();
    Ok(out)
}

/// The t-SNE gradient in tensor ops:
/// `grad_i = 4 Σ_j (p_ij − q_ij) w_ij (y_i − y_j)` with
/// `w_ij = 1 / (1 + ||y_i − y_j||²)` (Student-t kernel) and `Q = W / ΣW`.
fn kl_gradient(engine: &Engine, p: &Tensor, y: &Tensor, n: usize) -> Result<Tensor> {
    // Pairwise squared distances: D = s + sᵀ − 2 Y Yᵀ.
    let yyt = ops::matmul(y, y, false, true)?;
    let sq = ops::sum(&ops::mul(y, y)?, Some(&[1]), true)?; // [n, 1]
    let sq_t = ops::reshape(&sq, vec![1, n])?;
    let two = engine.scalar(2.0)?;
    let dist = ops::add(&ops::sub(&ops::add(&sq, &sq_t)?, &ops::mul(&two, &yyt)?)?, &engine.scalar(0.0)?)?;
    // Student-t weights with a zeroed diagonal.
    let one = engine.scalar(1.0)?;
    let w_full = ops::reciprocal(&ops::add(&one, &dist)?)?;
    let eye = engine.eye(n)?;
    let w = ops::mul(&w_full, &ops::sub(&one, &eye)?)?;
    // Q = W / sum(W), floored to avoid division blowups.
    let w_sum = ops::sum(&w, None, false)?;
    let q = ops::div(&w, &ops::maximum(&w_sum, &engine.scalar(1e-12)?)?)?;
    // (P − Q) ⊙ W.
    let pq = ops::mul(&ops::sub(p, &q)?, &w)?;
    // grad = 4 (diag(rowsum(PQ)) − PQ) Y.
    let row = ops::sum(&pq, Some(&[1]), true)?; // [n, 1]
    let scaled_y = ops::mul(&row, y)?; // broadcast: rowsum_i * y_i
    let mixed = ops::matmul(&pq, y, false, false)?;
    let four = engine.scalar(4.0)?;
    ops::mul(&four, &ops::sub(&scaled_y, &mixed)?)
}

/// Symmetrized, perplexity-calibrated input affinities (host-side).
fn joint_probabilities(data: &[f32], n: usize, d: usize, perplexity: f32) -> Vec<f32> {
    // Pairwise squared distances.
    let mut dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0;
            for k in 0..d {
                let diff = data[i * d + k] - data[j * d + k];
                s += diff * diff;
            }
            dist[i * n + j] = s;
            dist[j * n + i] = s;
        }
    }
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        // Binary search the Gaussian precision beta for this row.
        let row = &dist[i * n..(i + 1) * n];
        let (mut lo, mut hi, mut beta) = (0.0f32, f32::INFINITY, 1.0f32);
        let mut probs = vec![0.0f32; n];
        for _ in 0..50 {
            let mut sum = 0.0f32;
            for j in 0..n {
                probs[j] = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += probs[j];
            }
            let sum = sum.max(1e-12);
            let mut entropy = 0.0f32;
            for pj in probs.iter_mut() {
                *pj /= sum;
                if *pj > 1e-12 {
                    entropy -= *pj * pj.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() { (beta + hi) / 2.0 } else { beta * 2.0 };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        for j in 0..n {
            p[i * n + j] = probs[j];
        }
    }
    // Symmetrize and normalize; floor keeps gradients defined.
    let mut joint = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }
    for i in 0..n {
        joint[i * n + i] = 0.0;
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_backend_native::NativeBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("native", Arc::new(NativeBackend::new()), 3);
        e
    }

    /// Three well-separated Gaussian clusters in 8-D.
    fn clusters(n_per: usize) -> (Vec<f32>, usize) {
        let d = 8;
        let mut data = Vec::new();
        let mut state = 12345u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for c in 0..3 {
            for _ in 0..n_per {
                for k in 0..d {
                    let center = if k % 3 == c { 10.0 } else { 0.0 };
                    data.push(center + rand() * 0.5);
                }
            }
        }
        (data, 3 * n_per)
    }

    #[test]
    fn separates_well_separated_clusters() {
        let e = engine();
        let (data, n) = clusters(12);
        let emb = tsne(
            &e,
            &data,
            n,
            8,
            TsneConfig { iterations: 400, perplexity: 8.0, learning_rate: 10.0, ..Default::default() },
        )
        .unwrap();
        assert_eq!(emb.len(), n * 2);
        // Cluster centroids in embedding space.
        let centroid = |c: usize| -> (f32, f32) {
            let mut x = 0.0;
            let mut y = 0.0;
            for i in 0..12 {
                x += emb[(c * 12 + i) * 2];
                y += emb[(c * 12 + i) * 2 + 1];
            }
            (x / 12.0, y / 12.0)
        };
        let mean_intra = {
            let mut total = 0.0;
            for c in 0..3 {
                let (cx, cy) = centroid(c);
                for i in 0..12 {
                    let dx = emb[(c * 12 + i) * 2] - cx;
                    let dy = emb[(c * 12 + i) * 2 + 1] - cy;
                    total += (dx * dx + dy * dy).sqrt();
                }
            }
            total / 36.0
        };
        let mut min_inter = f32::INFINITY;
        for a in 0..3 {
            for b in (a + 1)..3 {
                let (ax, ay) = centroid(a);
                let (bx, by) = centroid(b);
                min_inter = min_inter.min(((ax - bx).powi(2) + (ay - by).powi(2)).sqrt());
            }
        }
        assert!(
            min_inter > mean_intra * 2.0,
            "clusters should separate: inter {min_inter} vs intra {mean_intra}"
        );
    }

    #[test]
    fn input_validation() {
        let e = engine();
        assert!(tsne(&e, &[0.0; 6], 3, 2, TsneConfig::default()).is_err());
        assert!(tsne(&e, &[0.0; 7], 4, 2, TsneConfig::default()).is_err());
    }

    #[test]
    fn does_not_leak_tensors() {
        let e = engine();
        let (data, n) = clusters(4);
        let before = e.num_tensors();
        let _ = tsne(&e, &data, n, 8, TsneConfig { iterations: 5, ..Default::default() }).unwrap();
        assert_eq!(e.num_tensors(), before);
    }
}
