//! A host-side RGB image: the `HTMLImageElement` stand-in models accept.

use webml_core::{ops, Engine, Error, Result, Tensor};

/// An 8-bit interleaved RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// Create an image from interleaved RGB bytes.
    ///
    /// # Errors
    /// Fails when `data.len() != w * h * 3`.
    pub fn from_rgb(data: Vec<u8>, width: usize, height: usize) -> Result<Image> {
        if data.len() != width * height * 3 {
            return Err(Error::invalid(
                "Image",
                format!("buffer length {} != {width}x{height}x3", data.len()),
            ));
        }
        Ok(Image { width, height, data })
    }

    /// A solid-color image.
    pub fn solid(width: usize, height: usize, rgb: [u8; 3]) -> Image {
        let mut data = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        Image { width, height, data }
    }

    /// A deterministic synthetic "person-like" test image: a bright
    /// vertical figure (head blob + torso bar) on a dark background, so
    /// pose heads have spatial structure to respond to.
    pub fn synthetic_person(width: usize, height: usize) -> Image {
        let mut data = vec![20u8; width * height * 3];
        let cx = width / 2;
        let head_cy = height / 5;
        let head_r = (height / 10).max(2);
        for y in 0..height {
            for x in 0..width {
                let idx = (y * width + x) * 3;
                // Head: filled circle.
                let dh = (((x as isize - cx as isize).pow(2) + (y as isize - head_cy as isize).pow(2)) as f64)
                    .sqrt();
                if dh < head_r as f64 {
                    data[idx] = 230;
                    data[idx + 1] = 190;
                    data[idx + 2] = 160;
                }
                // Torso: vertical bar below the head.
                if y > head_cy + head_r && y < height * 3 / 4 && x.abs_diff(cx) < width / 8 {
                    data[idx] = 60;
                    data[idx + 1] = 90;
                    data[idx + 2] = 200;
                }
            }
        }
        Image { width, height, data }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw interleaved bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Import as a `[1, h, w, 3]` tensor with values in `[0, 255]`
    /// (`tf.browser.fromPixels`).
    ///
    /// # Errors
    /// Propagates tensor-creation errors.
    pub fn to_tensor(&self, engine: &Engine) -> Result<Tensor> {
        engine.from_pixels(&self.data, self.height, self.width, 3)
    }

    /// Import resized to `(size x size)` and normalized to `[-1, 1]` — the
    /// standard MobileNet preprocessing.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn to_normalized_tensor(&self, engine: &Engine, size: usize) -> Result<Tensor> {
        let t = self.to_tensor(engine)?;
        let resized = if self.height == size && self.width == size {
            t
        } else {
            ops::resize_bilinear(&t, size, size, false)?
        };
        let scale = engine.scalar(127.5)?;
        let one = engine.scalar(1.0)?;
        ops::sub(&ops::div(&resized, &scale)?, &one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn from_rgb_validates_length() {
        assert!(Image::from_rgb(vec![0; 11], 2, 2).is_err());
        assert!(Image::from_rgb(vec![0; 12], 2, 2).is_ok());
    }

    #[test]
    fn solid_pixels() {
        let img = Image::solid(3, 2, [10, 20, 30]);
        assert_eq!(img.pixel(2, 1), [10, 20, 30]);
    }

    #[test]
    fn synthetic_person_has_bright_head_dark_corner() {
        let img = Image::synthetic_person(64, 96);
        let head = img.pixel(32, 96 / 5);
        let corner = img.pixel(0, 95);
        assert!(head[0] > 200);
        assert_eq!(corner, [20, 20, 20]);
    }

    #[test]
    fn normalized_tensor_range() {
        let e = engine();
        let img = Image::solid(4, 4, [0, 127, 255]);
        let t = img.to_normalized_tensor(&e, 4).unwrap();
        let v = t.to_f32_vec().unwrap();
        assert!((v[0] + 1.0).abs() < 1e-5);
        assert!(v[1].abs() < 0.01);
        assert!((v[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalized_tensor_resizes() {
        let e = engine();
        let img = Image::solid(8, 8, [255, 255, 255]);
        let t = img.to_normalized_tensor(&e, 4).unwrap();
        assert_eq!(t.dims(), &[1, 4, 4, 3]);
    }
}
