//! Serving workloads: deterministic classifier models packaged as
//! converter artifacts, for serving-layer tests and throughput benchmarks.
//!
//! The serving scenario of paper Sec 5 is many clients hitting a small
//! dense classifier (e.g. the transfer-learning head trained in the
//! browser); these builders produce that shape of model with seeded
//! synthetic weights, so benches and tests get identical artifacts — and
//! identical content hashes — without shipping real weight files.

use webml_converter::{to_artifacts, ModelArtifacts};
use webml_core::{Engine, Result};
use webml_layers::{Activation, Dense, Sequential};

/// Build a seeded MLP classifier (`in_dim → hidden → classes`, relu +
/// softmax) and package it as converter artifacts. The builder model's
/// weights are disposed before returning: the artifacts are self-contained
/// and leave nothing resident on `engine`.
///
/// # Errors
/// Propagates build/serialization errors.
pub fn classifier_artifacts(
    engine: &Engine,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    seed: u64,
) -> Result<ModelArtifacts> {
    let mut model = Sequential::new(engine).with_seed(seed);
    model.add(Dense::new(hidden).with_input_dim(in_dim).with_activation(Activation::Relu));
    model.add(Dense::new(hidden).with_activation(Activation::Relu));
    model.add(Dense::new(classes).with_activation(Activation::Softmax));
    model.build([in_dim])?;
    let artifacts = to_artifacts(&model, None)?;
    for (_, v) in model.named_weights() {
        v.dispose();
    }
    Ok(artifacts)
}

/// A deterministic synthetic example for [`classifier_artifacts`] models:
/// `in_dim` values in `[-1, 1]`, varying with `index`.
pub fn synthetic_example(in_dim: usize, index: usize) -> Vec<f32> {
    (0..in_dim).map(|j| (((index * in_dim + j) as f32) * 0.37).sin()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn artifacts_are_deterministic_and_leave_no_residue() {
        let e = engine();
        let before = e.memory().num_bytes;
        let a = classifier_artifacts(&e, 16, 32, 10, 3).unwrap();
        let b = classifier_artifacts(&e, 16, 32, 10, 3).unwrap();
        assert_eq!(e.memory().num_bytes, before, "builder weights disposed");
        assert_eq!(a.weight_data, b.weight_data, "seeded weights are identical");
        // Content hashes differ only through auto-generated layer names;
        // the weight bytes are what serving correctness depends on.
        assert!(a.weight_bytes() > 0);
    }

    #[test]
    fn round_trips_through_the_converter() {
        let e = engine();
        let artifacts = classifier_artifacts(&e, 8, 16, 4, 1).unwrap();
        let mut model = webml_converter::from_artifacts(&e, &artifacts).unwrap();
        let x = e.tensor(synthetic_example(8, 0), webml_core::Shape::new(vec![1, 8])).unwrap();
        let y = model.predict(&x).unwrap();
        let probs = y.to_f32_vec().unwrap();
        assert_eq!(probs.len(), 4);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
