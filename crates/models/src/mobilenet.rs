//! MobileNet v1 (Howard et al., 2017) — the paper's Table 1 benchmark
//! workload and the backbone of several models-repo wrappers.
//!
//! The architecture is exact (initial strided conv + 13 depthwise-separable
//! blocks + global average pool + classifier); weights are deterministic
//! synthetic values, which preserves everything the paper measures
//! (runtime, memory, API behaviour).

use crate::image::Image;
use serde::Serialize;
use webml_core::{ops, Engine, Result, Tensor};
use webml_layers::{
    Activation, BatchNormalization, Conv2D, Dense, DepthwiseConv2D, GlobalAveragePooling2D,
    Sequential,
};

/// Configuration of a MobileNet v1 instance.
#[derive(Debug, Clone, Copy)]
pub struct MobileNetConfig {
    /// Width multiplier α ∈ {0.25, 0.5, 0.75, 1.0}.
    pub alpha: f32,
    /// Square input resolution (the paper uses 224).
    pub input_size: usize,
    /// Number of classifier outputs.
    pub classes: usize,
    /// Include batch-norm layers (the published network has them; skipping
    /// them roughly halves layer count for quick tests).
    pub batch_norm: bool,
    /// Weight seed.
    pub seed: u64,
}

impl Default for MobileNetConfig {
    fn default() -> Self {
        MobileNetConfig { alpha: 1.0, input_size: 224, classes: 1000, batch_norm: true, seed: 1234 }
    }
}

impl MobileNetConfig {
    /// The paper's Table 1 configuration: MobileNet v1 1.0 at 224x224x3.
    pub fn paper_table1() -> MobileNetConfig {
        MobileNetConfig::default()
    }

    /// A small configuration for fast tests/benches (α 0.25, 96x96).
    pub fn small() -> MobileNetConfig {
        MobileNetConfig { alpha: 0.25, input_size: 96, classes: 100, batch_norm: true, seed: 1234 }
    }
}

/// A classification result.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ClassPrediction {
    /// Human-readable class name.
    pub class_name: String,
    /// Softmax probability.
    pub probability: f32,
}

/// MobileNet v1 image classifier with a tensor-free `classify` API and a
/// tensor-level `infer` API for transfer learning (paper Sec 5.2).
pub struct MobileNet {
    model: Sequential,
    config: MobileNetConfig,
    labels: Vec<String>,
}

/// Round a scaled filter count to the nearest multiple of 8 (the MobileNet
/// width-multiplier rule), never below 8.
pub(crate) fn scaled(filters: usize, alpha: f32) -> usize {
    let f = (filters as f32 * alpha).round() as usize;
    ((f + 4) / 8 * 8).max(8)
}

/// `(pointwise_filters, stride)` of the 13 separable blocks.
pub(crate) const BLOCKS: [(usize, usize); 13] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

/// Build the MobileNet v1 layer stack (without the classifier head) on a
/// [`Sequential`].
pub fn add_backbone(model: &mut Sequential, config: &MobileNetConfig) {
    let conv_bn_relu = |model: &mut Sequential, layer: Conv2D| {
        if config.batch_norm {
            model.add(layer.without_bias());
            model.add(BatchNormalization::new());
            model.add(webml_layers::ActivationLayer::new(Activation::Relu6));
        } else {
            model.add(layer.with_activation(Activation::Relu6));
        }
    };
    // Initial strided conv.
    conv_bn_relu(
        model,
        Conv2D::new(scaled(32, config.alpha), 3)
            .with_strides((2, 2))
            .with_input_shape([config.input_size, config.input_size, 3])
            .with_name("conv1"),
    );
    for (i, (filters, stride)) in BLOCKS.iter().enumerate() {
        let dw = DepthwiseConv2D::new(3)
            .with_strides((*stride, *stride))
            .with_name(format!("conv_dw_{}", i + 1));
        if config.batch_norm {
            model.add(dw.without_bias());
            model.add(BatchNormalization::new());
            model.add(webml_layers::ActivationLayer::new(Activation::Relu6));
        } else {
            model.add(dw.with_activation(Activation::Relu6));
        }
        conv_bn_relu(
            model,
            Conv2D::new(scaled(*filters, config.alpha), 1).with_name(format!("conv_pw_{}", i + 1)),
        );
    }
}

impl MobileNet {
    /// Build a MobileNet with deterministic synthetic weights.
    ///
    /// # Errors
    /// Propagates build errors.
    pub fn new(engine: &Engine, config: MobileNetConfig) -> Result<MobileNet> {
        let mut model = Sequential::new(engine).with_seed(config.seed);
        add_backbone(&mut model, &config);
        model.add(GlobalAveragePooling2D::new());
        model.add(
            Dense::new(config.classes).with_activation(Activation::Softmax).with_name("predictions"),
        );
        model.build([config.input_size, config.input_size, 3])?;
        let labels = (0..config.classes).map(synthetic_label).collect();
        Ok(MobileNet { model, config, labels })
    }

    /// The configuration.
    pub fn config(&self) -> &MobileNetConfig {
        &self.config
    }

    /// The underlying layers model (for conversion/saving).
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access (for fine-tuning workflows).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Total parameter count.
    pub fn count_params(&self) -> usize {
        self.model.count_params()
    }

    /// Run one inference on an already-prepared `[1, s, s, 3]` tensor,
    /// returning class probabilities `[1, classes]` — the expert/tensor
    /// API.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn infer(&mut self, input: &Tensor) -> Result<Tensor> {
        self.model.predict(input)
    }

    /// Penultimate-layer embedding `[1, features]`, the transfer-learning
    /// hook (run the stack without the classifier head).
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn embed(&mut self, image: &Image) -> Result<Tensor> {
        let engine = self.model.engine().clone();
        let size = self.config.input_size;
        let n_layers = self.model.len();
        engine.tidy(|| {
            let x = image.to_normalized_tensor(&engine, size)?;
            let mut y = ops::identity(&x)?;
            // All layers except the final Dense head.
            for layer in &self.model.layers()[..n_layers - 1] {
                y = layer.call(&y, false)?;
            }
            Ok(y)
        })
    }

    /// Classify an image, returning the top-k predictions — the
    /// tensor-free beginner API of paper Sec 5.2.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn classify(&mut self, image: &Image, top_k: usize) -> Result<Vec<ClassPrediction>> {
        let engine = self.model.engine().clone();
        let size = self.config.input_size;
        let probs = engine.tidy(|| -> Result<Vec<f32>> {
            let x = image.to_normalized_tensor(&engine, size)?;
            let y = self.model.forward(&x, false)?;
            y.to_f32_vec()
        })?;
        let mut ranked: Vec<(usize, f32)> = probs.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        Ok(ranked
            .into_iter()
            .take(top_k)
            .map(|(i, p)| ClassPrediction { class_name: self.labels[i].clone(), probability: p })
            .collect())
    }
}

/// Deterministic human-readable label for class `i`.
fn synthetic_label(i: usize) -> String {
    const NOUNS: [&str; 20] = [
        "tabby cat", "golden retriever", "espresso", "acoustic guitar", "school bus",
        "lighthouse", "monarch butterfly", "snowplow", "street sign", "water bottle",
        "mountain bike", "grand piano", "wood rabbit", "container ship", "umbrella",
        "strawberry", "hot air balloon", "park bench", "laptop", "teapot",
    ];
    format!("{} #{i}", NOUNS[i % NOUNS.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_backend_native::NativeBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("native", Arc::new(NativeBackend::new()), 3);
        e
    }

    #[test]
    fn paper_config_parameter_count_matches_mobilenet_v1() {
        // MobileNet v1 1.0 224 has ~4.2M parameters.
        let e = engine();
        let net = MobileNet::new(&e, MobileNetConfig { classes: 1000, ..Default::default() }).unwrap();
        let params = net.count_params();
        assert!(
            (4_000_000..4_600_000).contains(&params),
            "expected ~4.2M params, got {params}"
        );
    }

    #[test]
    fn small_config_classifies() {
        let e = engine();
        let mut net = MobileNet::new(&e, MobileNetConfig::small()).unwrap();
        let img = Image::synthetic_person(96, 96);
        let preds = net.classify(&img, 3).unwrap();
        assert_eq!(preds.len(), 3);
        // Probabilities sorted and normalized.
        assert!(preds[0].probability >= preds[1].probability);
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!(total <= 1.0 + 1e-4);
        assert!(!preds[0].class_name.is_empty());
    }

    #[test]
    fn classify_does_not_leak_tensors() {
        let e = engine();
        let mut net = MobileNet::new(
            &e,
            MobileNetConfig { alpha: 0.25, input_size: 32, classes: 10, batch_norm: false, seed: 1 },
        )
        .unwrap();
        let img = Image::solid(32, 32, [128, 128, 128]);
        net.classify(&img, 1).unwrap();
        let before = e.num_tensors();
        net.classify(&img, 1).unwrap();
        assert_eq!(e.num_tensors(), before);
    }

    #[test]
    fn embedding_has_feature_width() {
        let e = engine();
        let mut net = MobileNet::new(
            &e,
            MobileNetConfig { alpha: 0.25, input_size: 32, classes: 10, batch_norm: false, seed: 1 },
        )
        .unwrap();
        let img = Image::solid(32, 32, [90, 10, 200]);
        let emb = net.embed(&img).unwrap();
        assert_eq!(emb.dims(), &[1, scaled(1024, 0.25)]);
    }

    #[test]
    fn scaled_rounds_to_multiples_of_8() {
        assert_eq!(scaled(32, 1.0), 32);
        assert_eq!(scaled(32, 0.25), 8);
        assert_eq!(scaled(512, 0.75), 384);
        assert_eq!(scaled(64, 0.25), 16);
    }

    #[test]
    fn deterministic_weights_per_seed() {
        let e = engine();
        let cfg = MobileNetConfig { alpha: 0.25, input_size: 32, classes: 5, batch_norm: false, seed: 9 };
        let mut a = MobileNet::new(&e, cfg).unwrap();
        let mut b = MobileNet::new(&e, cfg).unwrap();
        let img = Image::synthetic_person(32, 32);
        assert_eq!(a.classify(&img, 2).unwrap(), b.classify(&img, 2).unwrap());
    }
}
