//! A speech-commands-style audio classifier — the on-device microphone use
//! case of paper Sec 2.2 ("speech-impaired users can use their phones to
//! collect audio samples to train a personalized model in the browser"),
//! and a models-repo member in TensorFlow.js.
//!
//! The model is a small conv net over spectrogram frames, trained
//! in-library on simulated microphone recordings.

use serde::Serialize;
use webml_core::{ops, Engine, Error, Result, Tensor};
use webml_layers::{
    Activation, Conv2D, Dense, FitConfig, Flatten, Loss, Metric, RmsProp, Sequential,
};

/// A recognized command with its probability.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct CommandPrediction {
    /// Command label.
    pub command: String,
    /// Softmax probability.
    pub probability: f32,
}

/// A trainable spectrogram classifier with a tensor-free prediction API.
pub struct SpeechCommands {
    model: Sequential,
    labels: Vec<String>,
    frames: usize,
    bins: usize,
}

impl SpeechCommands {
    /// Build an untrained recognizer for `labels`, expecting spectrograms
    /// of `frames x bins`.
    ///
    /// # Errors
    /// Fails when fewer than 2 labels are supplied.
    pub fn new(engine: &Engine, labels: &[&str], frames: usize, bins: usize) -> Result<SpeechCommands> {
        if labels.len() < 2 {
            return Err(Error::invalid("SpeechCommands", "need at least 2 command labels"));
        }
        let mut model = Sequential::new(engine).with_seed(99);
        model.add(
            Conv2D::new(8, 3)
                .with_strides((1, 1))
                .with_activation(Activation::Relu)
                .with_input_shape([frames, bins, 1]),
        );
        model.add(Conv2D::new(16, 3).with_strides((2, 2)).with_activation(Activation::Relu));
        model.add(Flatten::new());
        model.add(Dense::new(labels.len()).with_activation(Activation::Softmax));
        model.compile_with_metrics(
            Loss::CategoricalCrossentropy,
            Box::new(RmsProp::new(0.01)),
            vec![Metric::CategoricalAccuracy],
        );
        model.build([frames, bins, 1])?;
        Ok(SpeechCommands {
            model,
            labels: labels.iter().map(|s| s.to_string()).collect(),
            frames,
            bins,
        })
    }

    /// The command labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Train on labelled spectrograms (`examples[i]` has `frames*bins`
    /// values; `label_ids[i]` indexes [`SpeechCommands::labels`]).
    ///
    /// # Errors
    /// Fails on inconsistent buffer sizes or label ids.
    pub fn train(&mut self, examples: &[Vec<f32>], label_ids: &[usize], epochs: usize) -> Result<f32> {
        if examples.len() != label_ids.len() || examples.is_empty() {
            return Err(Error::invalid("SpeechCommands.train", "examples/labels mismatch"));
        }
        let per = self.frames * self.bins;
        let mut xs = Vec::with_capacity(examples.len() * per);
        for ex in examples {
            if ex.len() != per {
                return Err(Error::invalid("SpeechCommands.train", "bad spectrogram size"));
            }
            xs.extend_from_slice(ex);
        }
        if let Some(&bad) = label_ids.iter().find(|&&l| l >= self.labels.len()) {
            return Err(Error::invalid("SpeechCommands.train", format!("label id {bad} out of range")));
        }
        let engine = self.model.engine().clone();
        let n = examples.len();
        let x = engine.tensor(xs, [n, self.frames, self.bins, 1])?;
        let ids: Vec<i32> = label_ids.iter().map(|&l| l as i32).collect();
        let labels_t = engine.tensor(ids, [n])?;
        let y = engine.one_hot(&labels_t, self.labels.len())?;
        labels_t.dispose();
        let history = self.model.fit(
            &x,
            &y,
            FitConfig { epochs, batch_size: 8.min(n), ..Default::default() },
        )?;
        x.dispose();
        y.dispose();
        let acc = history
            .metrics
            .get("categorical_accuracy")
            .and_then(|v| v.last().copied())
            .unwrap_or(0.0);
        Ok(acc)
    }

    /// Recognize a spectrogram, returning commands sorted by probability —
    /// the tensor-free prediction API.
    ///
    /// # Errors
    /// Fails on a wrong-sized spectrogram.
    pub fn recognize(&mut self, spectrogram: &[f32]) -> Result<Vec<CommandPrediction>> {
        if spectrogram.len() != self.frames * self.bins {
            return Err(Error::invalid("SpeechCommands.recognize", "bad spectrogram size"));
        }
        let engine = self.model.engine().clone();
        let probs = engine.tidy(|| -> Result<Vec<f32>> {
            let x = engine.tensor(spectrogram.to_vec(), [1, self.frames, self.bins, 1])?;
            let y = self.model.forward(&x, false)?;
            y.to_f32_vec()
        })?;
        let mut ranked: Vec<CommandPrediction> = self
            .labels
            .iter()
            .zip(&probs)
            .map(|(label, &p)| CommandPrediction { command: label.clone(), probability: p })
            .collect();
        ranked.sort_by(|a, b| b.probability.total_cmp(&a.probability));
        Ok(ranked)
    }

    /// The model's embedding of a spectrogram (penultimate layer), for KNN
    /// transfer learning on personalized commands.
    ///
    /// # Errors
    /// Fails on a wrong-sized spectrogram.
    pub fn embed(&mut self, spectrogram: &[f32]) -> Result<Tensor> {
        if spectrogram.len() != self.frames * self.bins {
            return Err(Error::invalid("SpeechCommands.embed", "bad spectrogram size"));
        }
        let engine = self.model.engine().clone();
        let n_layers = self.model.len();
        engine.tidy(|| {
            let x = engine.tensor(spectrogram.to_vec(), [1, self.frames, self.bins, 1])?;
            let mut y = ops::identity(&x)?;
            for layer in &self.model.layers()[..n_layers - 1] {
                y = layer.call(&y, false)?;
            }
            Ok(y)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_backend_native::NativeBackend;
    use webml_data::Microphone;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("native", Arc::new(NativeBackend::new()), 3);
        e
    }

    #[test]
    fn trains_to_separate_synthetic_commands() {
        let e = engine();
        let (frames, bins) = (6, 8);
        let mut net = SpeechCommands::new(&e, &["yes", "no", "stop"], frames, bins).unwrap();
        let mut mic = Microphone::new(16_000, 5);
        let mut examples = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3 {
            for _ in 0..6 {
                examples.push(mic.spectrogram(class, frames, bins));
                labels.push(class);
            }
        }
        let acc = net.train(&examples, &labels, 12).unwrap();
        assert!(acc > 0.8, "training accuracy {acc}");
        // Fresh recordings classify correctly.
        let mut hits = 0;
        for class in 0..3 {
            let spec = mic.spectrogram(class, frames, bins);
            let pred = net.recognize(&spec).unwrap();
            hits += (pred[0].command == net.labels()[class]) as usize;
        }
        assert!(hits >= 2, "{hits}/3 fresh recordings recognized");
    }

    #[test]
    fn probabilities_are_sorted_and_normalized() {
        let e = engine();
        let mut net = SpeechCommands::new(&e, &["a", "b"], 4, 4).unwrap();
        let pred = net.recognize(&[0.5; 16]).unwrap();
        assert_eq!(pred.len(), 2);
        assert!(pred[0].probability >= pred[1].probability);
        let total: f32 = pred.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn validation() {
        let e = engine();
        assert!(SpeechCommands::new(&e, &["only-one"], 4, 4).is_err());
        let mut net = SpeechCommands::new(&e, &["a", "b"], 4, 4).unwrap();
        assert!(net.recognize(&[0.0; 3]).is_err());
        assert!(net.train(&[vec![0.0; 16]], &[5], 1).is_err());
        assert!(net.train(&[vec![0.0; 9]], &[0], 1).is_err());
    }

    #[test]
    fn embeddings_feed_knn_transfer_learning() {
        use crate::knn::KnnClassifier;
        let e = engine();
        let mut net = SpeechCommands::new(&e, &["a", "b"], 6, 8).unwrap();
        let mut mic = Microphone::new(16_000, 11);
        let mut knn = KnnClassifier::new();
        for class in 0..2 {
            for _ in 0..4 {
                let emb = net.embed(&mic.spectrogram(class, 6, 8)).unwrap();
                knn.add_example(&emb, format!("cmd{class}")).unwrap();
                emb.dispose();
            }
        }
        let emb = net.embed(&mic.spectrogram(0, 6, 8)).unwrap();
        let pred = knn.predict(&emb, 3).unwrap();
        emb.dispose();
        assert_eq!(pred.label, "cmd0");
    }
}
