//! PoseNet-style human pose estimation (paper Listing 3): a MobileNet
//! backbone with heatmap + offset heads, decoded into a tensor-free
//! [`Pose`] of named keypoints.

use crate::image::Image;
use serde::Serialize;
use webml_core::{ops, Engine, Result, Shape};
use webml_layers::{Activation, Conv2D, Layer, Sequential};

/// The 17 COCO keypoint names PoseNet reports, in output order.
pub const PART_NAMES: [&str; 17] = [
    "nose",
    "leftEye",
    "rightEye",
    "leftEar",
    "rightEar",
    "leftShoulder",
    "rightShoulder",
    "leftElbow",
    "rightElbow",
    "leftWrist",
    "rightWrist",
    "leftHip",
    "rightHip",
    "leftKnee",
    "rightKnee",
    "leftAnkle",
    "rightAnkle",
];

/// An image position in pixels.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct Position {
    /// Horizontal pixel coordinate.
    pub x: f32,
    /// Vertical pixel coordinate.
    pub y: f32,
}

/// One detected keypoint.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Keypoint {
    /// Body part name (`"nose"`, `"leftShoulder"`, ...).
    pub part: String,
    /// Pixel position in the input image.
    pub position: Position,
    /// Detection confidence in `[0, 1]`.
    pub score: f32,
}

/// A detected pose — the JSON-friendly object of Listing 3.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Pose {
    /// Mean keypoint confidence.
    pub score: f32,
    /// All 17 keypoints.
    pub keypoints: Vec<Keypoint>,
}

/// Pose estimator: truncated MobileNet features, 1x1 conv heads for
/// heatmaps `[h, w, 17]` and offsets `[h, w, 34]`, single-pose decoding.
pub struct PoseNet {
    backbone: Sequential,
    heatmap_head: Box<dyn Layer>,
    offset_head: Box<dyn Layer>,
    input_size: usize,
    output_stride: usize,
}

impl PoseNet {
    /// Build with deterministic synthetic weights at the given input size
    /// (must be divisible by the output stride, 16).
    ///
    /// # Errors
    /// Fails on invalid sizes.
    pub fn new(engine: &Engine, input_size: usize) -> Result<PoseNet> {
        const STRIDE: usize = 16;
        if !input_size.is_multiple_of(STRIDE) || input_size == 0 {
            return Err(webml_core::Error::invalid(
                "PoseNet",
                format!("input size {input_size} must be a positive multiple of {STRIDE}"),
            ));
        }
        // A compact backbone reaching stride 16: four strided convs.
        let mut backbone = Sequential::new(engine).with_seed(77);
        backbone.add(
            Conv2D::new(16, 3)
                .with_strides((2, 2))
                .with_activation(Activation::Relu6)
                .with_input_shape([input_size, input_size, 3])
                .with_name("pose_conv1"),
        );
        backbone.add(
            Conv2D::new(32, 3).with_strides((2, 2)).with_activation(Activation::Relu6).with_name("pose_conv2"),
        );
        backbone.add(
            Conv2D::new(64, 3).with_strides((2, 2)).with_activation(Activation::Relu6).with_name("pose_conv3"),
        );
        backbone.add(
            Conv2D::new(128, 3).with_strides((2, 2)).with_activation(Activation::Relu6).with_name("pose_conv4"),
        );
        backbone.build([input_size, input_size, 3])?;

        let feat = input_size / STRIDE;
        let mut heatmap_head: Box<dyn Layer> =
            Box::new(Conv2D::new(17, 1).with_name("heatmap").with_activation(Activation::Linear));
        heatmap_head.build(engine, &Shape::new(vec![feat, feat, 128]), 101)?;
        let mut offset_head: Box<dyn Layer> =
            Box::new(Conv2D::new(34, 1).with_name("offset").with_activation(Activation::Linear));
        offset_head.build(engine, &Shape::new(vec![feat, feat, 128]), 102)?;
        Ok(PoseNet { backbone, heatmap_head, offset_head, input_size, output_stride: STRIDE })
    }

    /// The square input resolution.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Estimate a single pose from an image — the tensor-free API of
    /// Listing 3: `posenet.estimateSinglePose(imageElement)`.
    ///
    /// # Errors
    /// Propagates op errors.
    pub fn estimate_single_pose(&mut self, image: &Image) -> Result<Pose> {
        let engine = self.backbone.engine().clone();
        let size = self.input_size;
        let (heat, offsets, feat) = engine.tidy(|| -> Result<(Vec<f32>, Vec<f32>, usize)> {
            let x = image.to_normalized_tensor(&engine, size)?;
            let features = self.backbone.forward(&x, false)?;
            let heatmaps = ops::sigmoid(&self.heatmap_head.call(&features, false)?)?;
            let offsets = self.offset_head.call(&features, false)?;
            let feat = heatmaps.shape_ref().dim(1);
            Ok((heatmaps.to_f32_vec()?, offsets.to_f32_vec()?, feat))
        })?;
        Ok(self.decode_single_pose(&heat, &offsets, feat, image))
    }

    /// Decode heatmaps+offsets into a pose: per part, take the argmax cell
    /// of its heatmap and displace by the offset vector at that cell.
    fn decode_single_pose(&self, heat: &[f32], offsets: &[f32], feat: usize, image: &Image) -> Pose {
        let parts = PART_NAMES.len();
        let scale_x = image.width() as f32 / self.input_size as f32;
        let scale_y = image.height() as f32 / self.input_size as f32;
        let mut keypoints = Vec::with_capacity(parts);
        let mut total = 0.0f32;
        for (k, part) in PART_NAMES.iter().enumerate() {
            let mut best = f32::NEG_INFINITY;
            let (mut by, mut bx) = (0usize, 0usize);
            for y in 0..feat {
                for x in 0..feat {
                    let v = heat[(y * feat + x) * parts + k];
                    if v > best {
                        best = v;
                        by = y;
                        bx = x;
                    }
                }
            }
            // Offsets: dy at channel k, dx at channel 17 + k (PoseNet layout).
            let dy = offsets[(by * feat + bx) * parts * 2 + k];
            let dx = offsets[(by * feat + bx) * parts * 2 + parts + k];
            let px = (bx as f32 * self.output_stride as f32 + dx) * scale_x;
            let py = (by as f32 * self.output_stride as f32 + dy) * scale_y;
            total += best;
            keypoints.push(Keypoint {
                part: part.to_string(),
                position: Position {
                    x: px.clamp(0.0, image.width() as f32),
                    y: py.clamp(0.0, image.height() as f32),
                },
                score: best,
            });
        }
        Pose { score: total / parts as f32, keypoints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_backend_native::NativeBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("native", Arc::new(NativeBackend::new()), 3);
        e
    }

    #[test]
    fn rejects_bad_input_size() {
        let e = engine();
        assert!(PoseNet::new(&e, 100).is_err());
        assert!(PoseNet::new(&e, 0).is_err());
    }

    #[test]
    fn estimates_all_17_keypoints_with_valid_fields() {
        let e = engine();
        let mut net = PoseNet::new(&e, 128).unwrap();
        let img = Image::synthetic_person(128, 128);
        let pose = net.estimate_single_pose(&img).unwrap();
        assert_eq!(pose.keypoints.len(), 17);
        assert_eq!(pose.keypoints[0].part, "nose");
        for kp in &pose.keypoints {
            assert!((0.0..=1.0).contains(&kp.score), "{}: {}", kp.part, kp.score);
            assert!((0.0..=128.0).contains(&kp.position.x));
            assert!((0.0..=128.0).contains(&kp.position.y));
        }
        assert!((0.0..=1.0).contains(&pose.score));
    }

    #[test]
    fn pose_serializes_like_listing3() {
        let e = engine();
        let mut net = PoseNet::new(&e, 64).unwrap();
        let pose = net.estimate_single_pose(&Image::synthetic_person(64, 64)).unwrap();
        let json = serde_json::to_value(&pose).unwrap();
        assert!(json["score"].is_number());
        assert_eq!(json["keypoints"][0]["part"], "nose");
        assert!(json["keypoints"][0]["position"]["x"].is_number());
    }

    #[test]
    fn scales_positions_to_original_image_size() {
        let e = engine();
        let mut net = PoseNet::new(&e, 64).unwrap();
        // A 256x256 input gets resized down; keypoints scale back up.
        let img = Image::synthetic_person(256, 256);
        let pose = net.estimate_single_pose(&img).unwrap();
        assert!(pose.keypoints.iter().all(|k| k.position.x <= 256.0 && k.position.y <= 256.0));
    }

    #[test]
    fn deterministic() {
        let e = engine();
        let mut net = PoseNet::new(&e, 64).unwrap();
        let img = Image::synthetic_person(64, 64);
        let a = net.estimate_single_pose(&img).unwrap();
        let b = net.estimate_single_pose(&img).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_tensor_leaks() {
        let e = engine();
        let mut net = PoseNet::new(&e, 64).unwrap();
        let img = Image::synthetic_person(64, 64);
        net.estimate_single_pose(&img).unwrap();
        let before = e.num_tensors();
        net.estimate_single_pose(&img).unwrap();
        assert_eq!(e.num_tensors(), before);
    }
}
