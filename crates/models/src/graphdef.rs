//! Deterministic GraphDef model builders for the execution planner.
//!
//! The planner benchmarks and tests need graph-format models (not
//! [`Sequential`](webml_layers::Sequential) layer stacks) so they exercise
//! [`webml_converter::GraphModel`]'s plan compiler: an MLP classifier for
//! the dispatch-overhead story and a MobileNet v1 body for the
//! liveness/peak-memory story. Weights are seeded, so every build of the
//! same spec produces bit-identical graphs and weight values — benches and
//! tests compare planned vs. interpreted execution on identical models.

use serde_json::json;
use std::collections::HashMap;
use webml_converter::{GraphDef, NodeDef};
use webml_core::{Engine, Result, Shape, Tensor};

use crate::mobilenet::MobileNetConfig;

/// A graph-format model: topology plus named weight data.
///
/// The `weights` triples `(name, values, shape)` match the layout of
/// `webml_serve::ModelSource::Graph`, and [`GraphSpec::build`] uploads
/// them for a direct [`webml_converter::GraphModel`].
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Graph topology.
    pub graph: GraphDef,
    /// Weight triples `(node_name, values, shape)`.
    pub weights: Vec<(String, Vec<f32>, Vec<usize>)>,
    /// Placeholder (feed) node name.
    pub input: String,
    /// Terminal (fetch) node name.
    pub output: String,
    /// Flattened input shape including the batch dim declared on the
    /// placeholder's `shape` attr.
    pub input_shape: Vec<usize>,
}

impl GraphSpec {
    /// Upload the weights to `engine` (kept resident) and construct a
    /// [`webml_converter::GraphModel`].
    ///
    /// # Errors
    /// Propagates upload and graph-validation errors.
    pub fn build(&self, engine: &Engine) -> Result<webml_converter::GraphModel> {
        let mut weights: HashMap<String, Tensor> = HashMap::new();
        for (name, values, shape) in &self.weights {
            let t = engine.tensor(values.clone(), Shape::new(shape.clone()))?;
            t.keep();
            weights.insert(name.clone(), t);
        }
        webml_converter::GraphModel::new(engine, self.graph.clone(), weights)
    }

    /// [`GraphSpec::build`], but every weight eligible for dequant-free
    /// quantized inference (see [`webml_converter::quantizable_weights`])
    /// is uploaded as U8 codes with per-channel affine params — no f32 copy
    /// of those weights is ever materialized on the engine. Biases and any
    /// weight with a non-kernel consumer stay f32.
    ///
    /// # Errors
    /// Fails on invalid weight shapes or quantization errors.
    pub fn build_quantized(&self, engine: &Engine) -> Result<webml_converter::GraphModel> {
        let eligible = webml_converter::quantizable_weights(&self.graph);
        let mut weights: HashMap<String, Tensor> = HashMap::new();
        for (name, values, shape) in &self.weights {
            let t = match eligible.get(name) {
                Some(&axis) => {
                    let (codes, scales, mins) = webml_converter::Quantization::U8
                        .quantize_per_channel(name, values, shape, axis)?;
                    engine.quantized_tensor(
                        codes,
                        Shape::new(shape.clone()),
                        webml_core::QuantParams::per_channel(axis, scales, mins),
                    )?
                }
                None => engine.tensor(values.clone(), Shape::new(shape.clone()))?,
            };
            t.keep();
            weights.insert(name.clone(), t);
        }
        webml_converter::GraphModel::new(engine, self.graph.clone(), weights)
    }

    /// A deterministic input batch matching [`GraphSpec::input_shape`]
    /// with the batch dim replaced by `batch`; values vary with `index`.
    pub fn example(&self, batch: usize, index: usize) -> (Vec<f32>, Vec<usize>) {
        let mut shape = self.input_shape.clone();
        shape[0] = batch;
        let count: usize = shape.iter().product();
        let values =
            (0..count).map(|j| (((index * 31 + j) as f32) * 0.37).sin()).collect();
        (values, shape)
    }

    /// Total weight parameter count.
    pub fn param_count(&self) -> usize {
        self.weights.iter().map(|(_, v, _)| v.len()).sum()
    }
}

/// Seeded pseudo-random weight values in roughly `[-scale, scale]`.
///
/// A 64-bit LCG keyed by `seed`: deterministic across platforms, no RNG
/// dependency, decorrelated enough that softmax outputs are non-trivial.
fn seeded(seed: u64, count: usize, scale: f32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x2545_F491_4F6C_DD1D);
    (0..count)
        .map(|_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let unit = ((state >> 40) as f32) / ((1u64 << 24) as f32); // [0, 1)
            (unit - 0.5) * 2.0 * scale
        })
        .collect()
}

fn node(name: &str, op: &str, inputs: &[&str]) -> NodeDef {
    NodeDef {
        name: name.to_string(),
        op: op.to_string(),
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        attrs: serde_json::Value::Null,
    }
}

/// Build a graph-format MLP classifier:
/// `MatMul → BiasAdd → Relu` per hidden layer, then a linear head and
/// `Softmax`. The placeholder declares `shape: [1, input_dim]` so
/// [`webml_converter::GraphModel::new`] precompiles the batch-1 plan at
/// load time; other batch sizes compile on first use.
pub fn graph_mlp(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> GraphSpec {
    let mut nodes = Vec::new();
    let mut weights = Vec::new();
    let mut x = node("x", "Placeholder", &[]);
    x.attrs = json!({ "shape": [1, input_dim] });
    nodes.push(x);

    let mut prev = "x".to_string();
    let mut prev_dim = input_dim;
    let dims: Vec<(usize, bool)> = hidden
        .iter()
        .map(|&d| (d, true))
        .chain(std::iter::once((classes, false)))
        .collect();
    for (i, (dim, relu)) in dims.iter().enumerate() {
        let w = format!("w{i}");
        let b = format!("b{i}");
        let mm = format!("mm{i}");
        let ba = format!("ba{i}");
        weights.push((w.clone(), seeded(seed.wrapping_add(2 * i as u64 + 1), prev_dim * dim, 0.3), vec![prev_dim, *dim]));
        weights.push((b.clone(), seeded(seed.wrapping_add(2 * i as u64 + 2), *dim, 0.1), vec![*dim]));
        nodes.push(node(&w, "VariableV2", &[]));
        nodes.push(node(&b, "VariableV2", &[]));
        nodes.push(node(&mm, "MatMul", &[&prev, &w]));
        nodes.push(node(&ba, "BiasAdd", &[&mm, &b]));
        if *relu {
            let act = format!("relu{i}");
            nodes.push(node(&act, "Relu", &[&ba]));
            prev = act;
        } else {
            prev = ba;
        }
        prev_dim = *dim;
    }
    nodes.push(node("probs", "Softmax", &[&prev]));
    GraphSpec {
        graph: GraphDef { nodes },
        weights,
        input: "x".into(),
        output: "probs".into(),
        input_shape: vec![1, input_dim],
    }
}

/// Build a graph-format MobileNet v1: a strided stem conv, the 13
/// depthwise-separable blocks of the paper's benchmark model
/// (`DepthwiseConv2dNative → BiasAdd → Relu6`, then a 1x1 pointwise
/// `Conv2D → BiasAdd → Relu6`), global average pooling (`Mean` over the
/// spatial dims), and a dense softmax head.
///
/// Uses the same width multiplier (`alpha`), input size, class count and
/// filter-rounding rule as [`crate::MobileNet`], so
/// `MobileNetConfig::small()` yields the familiar α=0.25 / 96×96 body.
pub fn graph_mobilenet(config: &MobileNetConfig) -> GraphSpec {
    let s = config.input_size;
    let seed = config.seed;
    let mut nodes = Vec::new();
    let mut weights = Vec::new();
    let mut x = node("input", "Placeholder", &[]);
    x.attrs = json!({ "shape": [1, s, s, 3] });
    nodes.push(x);

    let mut wseed = seed;
    let mut next_seed = || {
        wseed = wseed.wrapping_add(1);
        wseed
    };

    // conv_unit: Conv2D/DepthwiseConv2dNative + BiasAdd + Relu6.
    let mut conv_unit = |nodes: &mut Vec<NodeDef>,
                         weights: &mut Vec<(String, Vec<f32>, Vec<usize>)>,
                         name: &str,
                         op: &str,
                         prev: &str,
                         filter_shape: Vec<usize>,
                         out_channels: usize,
                         stride: usize| {
        let w = format!("{name}_w");
        let b = format!("{name}_b");
        let count: usize = filter_shape.iter().product();
        // Small fan-in-ish scale keeps relu6 activations in range.
        let scale = (2.0 / count as f32).sqrt().min(0.3);
        weights.push((w.clone(), seeded(next_seed(), count, scale), filter_shape));
        weights.push((b.clone(), seeded(next_seed(), out_channels, 0.05), vec![out_channels]));
        nodes.push(node(&w, "VariableV2", &[]));
        nodes.push(node(&b, "VariableV2", &[]));
        let mut conv = node(name, op, &[prev, &w]);
        conv.attrs = json!({ "strides": [stride, stride], "padding": "SAME" });
        nodes.push(conv);
        nodes.push(node(&format!("{name}_bias"), "BiasAdd", &[name, &b]));
        nodes.push(node(&format!("{name}_relu"), "Relu6", &[&format!("{name}_bias")]));
        format!("{name}_relu")
    };

    let stem = crate::mobilenet::scaled(32, config.alpha);
    let mut prev = conv_unit(
        &mut nodes,
        &mut weights,
        "conv1",
        "Conv2D",
        "input",
        vec![3, 3, 3, stem],
        stem,
        2,
    );
    let mut channels = stem;
    for (i, (filters, stride)) in crate::mobilenet::BLOCKS.iter().enumerate() {
        let dw = conv_unit(
            &mut nodes,
            &mut weights,
            &format!("conv_dw_{}", i + 1),
            "DepthwiseConv2dNative",
            &prev,
            vec![3, 3, channels, 1],
            channels,
            *stride,
        );
        let pw_out = crate::mobilenet::scaled(*filters, config.alpha);
        prev = conv_unit(
            &mut nodes,
            &mut weights,
            &format!("conv_pw_{}", i + 1),
            "Conv2D",
            &dw,
            vec![1, 1, channels, pw_out],
            pw_out,
            1,
        );
        channels = pw_out;
    }

    // Global average pool over the spatial dims, then the classifier head.
    let mut pool = node("pool", "Mean", &[&prev]);
    pool.attrs = json!({ "axes": [1, 2] });
    nodes.push(pool);
    weights.push((
        "fc_w".into(),
        seeded(next_seed(), channels * config.classes, (1.0 / channels as f32).sqrt()),
        vec![channels, config.classes],
    ));
    weights.push(("fc_b".into(), seeded(next_seed(), config.classes, 0.05), vec![config.classes]));
    nodes.push(node("fc_w", "VariableV2", &[]));
    nodes.push(node("fc_b", "VariableV2", &[]));
    nodes.push(node("fc", "MatMul", &["pool", "fc_w"]));
    nodes.push(node("fc_bias", "BiasAdd", &["fc", "fc_b"]));
    nodes.push(node("probs", "Softmax", &["fc_bias"]));

    GraphSpec {
        graph: GraphDef { nodes },
        weights,
        input: "input".into(),
        output: "probs".into(),
        input_shape: vec![1, s, s, 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn mlp_spec_is_deterministic_and_runs() {
        let a = graph_mlp(16, &[32, 32], 10, 7);
        let b = graph_mlp(16, &[32, 32], 10, 7);
        assert_eq!(a.weights, b.weights, "seeded weights are identical");
        let e = engine();
        let model = a.build(&e).unwrap();
        let (vals, shape) = a.example(1, 0);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let out = model.execute(&[(&a.input, &x)], &[&a.output]).unwrap();
        let probs = out[0].to_f32_vec().unwrap();
        assert_eq!(probs.len(), 10);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mobilenet_spec_planned_matches_interpreted() {
        let config = MobileNetConfig { input_size: 32, ..MobileNetConfig::small() };
        let spec = graph_mobilenet(&config);
        let e = engine();
        let model = spec.build(&e).unwrap();
        let (vals, shape) = spec.example(1, 3);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let planned = model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let expect = model
            .execute_interpreted(&[(&spec.input, &x)], &[&spec.output])
            .unwrap();
        assert_eq!(
            planned[0].to_f32_vec().unwrap(),
            expect[0].to_f32_vec().unwrap(),
            "planned and interpreted MobileNet must agree bitwise"
        );
        assert!(model.plan_stats().misses >= 1);
    }

    #[test]
    fn quantized_mobilenet_matches_f32_within_tolerance() {
        let config = MobileNetConfig { input_size: 32, ..MobileNetConfig::small() };
        let spec = graph_mobilenet(&config);
        let e = engine();
        let fm = spec.build(&e).unwrap();
        let qm = spec.build_quantized(&e).unwrap();
        // Every conv / depthwise / matmul weight holds one byte per code;
        // only the (tiny, rank-1) biases stay f32.
        assert!(
            qm.weight_bytes() * 3 <= fm.weight_bytes(),
            "quantized residency {} vs f32 {}",
            qm.weight_bytes(),
            fm.weight_bytes()
        );
        let (vals, shape) = spec.example(1, 5);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let fo = fm.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let qo = qm.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let fv = fo[0].to_f32_vec().unwrap();
        let qv = qo[0].to_f32_vec().unwrap();
        for (q, f) in qv.iter().zip(&fv) {
            assert!((q - f).abs() < 0.05, "quantized prob {q} vs f32 {f}");
        }
    }

    #[test]
    fn quantized_planned_matches_interpreted() {
        let config = MobileNetConfig { input_size: 32, ..MobileNetConfig::small() };
        let spec = graph_mobilenet(&config);
        let e = engine();
        let qm = spec.build_quantized(&e).unwrap();
        let (vals, shape) = spec.example(1, 2);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        let planned = qm.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let expect =
            qm.execute_interpreted(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        assert_eq!(
            planned[0].to_f32_vec().unwrap(),
            expect[0].to_f32_vec().unwrap(),
            "planned and interpreted quantized MobileNet must agree bitwise"
        );
        assert!(qm.plan_stats().misses >= 1 || qm.plan_stats().hits >= 1);
    }

    #[test]
    fn mobilenet_spec_precompiles_at_load() {
        let config = MobileNetConfig { input_size: 32, ..MobileNetConfig::small() };
        let spec = graph_mobilenet(&config);
        let e = engine();
        let model = spec.build(&e).unwrap();
        // Load-time precompile from the placeholder shape attr: the batch-1
        // plan is already cached, so the first execute is a hit.
        let before = model.plan_stats();
        assert_eq!(before.entries, 1, "load-time plan cached");
        let (vals, shape) = spec.example(1, 0);
        let x = e.tensor(vals, Shape::new(shape)).unwrap();
        model.execute(&[(&spec.input, &x)], &[&spec.output]).unwrap();
        let after = model.plan_stats();
        assert_eq!(after.hits, before.hits + 1, "first request hits the warm plan");
    }
}
