//! The hosted models repository (paper Sec 5.2): pretrained models are
//! published as web-format artifacts on a storage bucket and loaded by URL.
//! Here the bucket is a [`SimulatedNetwork`], so cache behaviour and
//! transfer sizes are measurable.

use webml_converter::{load_model_from_network, save_model, SimulatedNetwork};
use webml_core::{Engine, Result};
use webml_layers::Sequential;

/// Publish a model's web-format artifacts (model.json + ≤4 MB shards)
/// under `base_url` on the simulated bucket.
///
/// # Errors
/// Propagates serialization errors.
pub fn publish(model: &Sequential, net: &SimulatedNetwork, base_url: &str) -> Result<()> {
    // Reuse the directory writer through a temp dir, then host the files.
    let dir = std::env::temp_dir().join(format!(
        "webml-repo-{}-{}",
        std::process::id(),
        base_url.replace(['/', ':'], "_")
    ));
    save_model(model, &dir, None)?;
    for entry in std::fs::read_dir(&dir).map_err(|e| webml_core::Error::Serialization {
        message: format!("io error: {e}"),
    })? {
        let entry = entry.map_err(|e| webml_core::Error::Serialization {
            message: format!("io error: {e}"),
        })?;
        let name = entry.file_name().to_string_lossy().to_string();
        let bytes = std::fs::read(entry.path()).map_err(|e| webml_core::Error::Serialization {
            message: format!("io error: {e}"),
        })?;
        net.host(format!("{base_url}/{name}"), bytes);
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// Load a published model by URL (`tf.loadModel(url)`).
///
/// # Errors
/// Fails on 404s or malformed artifacts.
pub fn load(engine: &Engine, net: &SimulatedNetwork, base_url: &str) -> Result<Sequential> {
    load_model_from_network(engine, net, base_url)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;
    use webml_layers::{Activation, Dense};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn publish_and_load_round_trip() {
        let e = engine();
        let mut model = Sequential::new(&e).with_seed(5);
        model.add(Dense::new(4).with_input_dim(3).with_activation(Activation::Tanh));
        model.add(Dense::new(2));
        model.build([3]).unwrap();
        let net = SimulatedNetwork::new();
        publish(&model, &net, "https://storage.example.com/demo-model").unwrap();

        let mut loaded = load(&e, &net, "https://storage.example.com/demo-model").unwrap();
        let x = e.tensor_2d(&[0.5, -0.5, 1.0], 1, 3).unwrap();
        assert_eq!(
            loaded.predict(&x).unwrap().to_f32_vec().unwrap(),
            model.predict(&x).unwrap().to_f32_vec().unwrap()
        );
    }

    #[test]
    fn reload_hits_browser_cache() {
        let e = engine();
        let mut model = Sequential::new(&e);
        model.add(Dense::new(2).with_input_dim(2));
        model.build([2]).unwrap();
        let net = SimulatedNetwork::new();
        publish(&model, &net, "https://cdn/m").unwrap();
        load(&e, &net, "https://cdn/m").unwrap();
        let first = net.stats();
        load(&e, &net, "https://cdn/m").unwrap();
        let second = net.stats();
        assert_eq!(second.network_requests, first.network_requests, "reload must be all cache hits");
        assert!(second.cache_hits > first.cache_hits);
    }
}
