//! A k-nearest-neighbours classifier over embeddings — the
//! transfer-learning companion of the models repo (paper Sec 5.2: "these
//! models can be used in a transfer learning setting, enabling personalized
//! applications with on-device training with relatively little user data"),
//! the pattern behind Teachable Machine.

use std::collections::HashMap;
use webml_core::{Error, Result, Tensor};

/// A labelled-embedding KNN classifier.
#[derive(Debug, Default)]
pub struct KnnClassifier {
    examples: Vec<(Vec<f32>, String)>,
    dim: Option<usize>,
}

/// A KNN prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnPrediction {
    /// Winning label.
    pub label: String,
    /// Vote share per label among the k neighbours.
    pub confidences: HashMap<String, f32>,
}

impl KnnClassifier {
    /// An empty classifier.
    pub fn new() -> KnnClassifier {
        KnnClassifier::default()
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether no examples are stored.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Labels seen so far.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.examples.iter().map(|(_, l)| l.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Add a labelled embedding (any shape; flattened).
    ///
    /// # Errors
    /// Fails when the embedding length differs from earlier examples.
    pub fn add_example(&mut self, embedding: &Tensor, label: impl Into<String>) -> Result<()> {
        let values = embedding.to_f32_vec()?;
        match self.dim {
            None => self.dim = Some(values.len()),
            Some(d) if d != values.len() => {
                return Err(Error::invalid(
                    "KnnClassifier.addExample",
                    format!("embedding length {} != expected {d}", values.len()),
                ))
            }
            _ => {}
        }
        self.examples.push((values, label.into()));
        Ok(())
    }

    /// Classify an embedding by majority vote of its `k` nearest stored
    /// examples (L2 distance).
    ///
    /// # Errors
    /// Fails when empty or on length mismatch.
    pub fn predict(&self, embedding: &Tensor, k: usize) -> Result<KnnPrediction> {
        if self.examples.is_empty() {
            return Err(Error::invalid("KnnClassifier.predict", "no examples added"));
        }
        let query = embedding.to_f32_vec()?;
        if Some(query.len()) != self.dim {
            return Err(Error::invalid("KnnClassifier.predict", "embedding length mismatch"));
        }
        let mut dists: Vec<(f32, &str)> = self
            .examples
            .iter()
            .map(|(v, l)| {
                let d: f32 = v.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, l.as_str())
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = k.max(1).min(dists.len());
        let mut votes: HashMap<String, usize> = HashMap::new();
        for (_, label) in &dists[..k] {
            *votes.entry((*label).to_string()).or_default() += 1;
        }
        let label = votes
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(l, _)| l.clone())
            .expect("non-empty votes");
        let confidences =
            votes.into_iter().map(|(l, c)| (l, c as f32 / k as f32)).collect();
        Ok(KnnPrediction { label, confidences })
    }

    /// Remove all examples of a label (re-training a Teachable Machine
    /// class).
    pub fn clear_label(&mut self, label: &str) {
        self.examples.retain(|(_, l)| l != label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::{cpu::CpuBackend, Engine};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    #[test]
    fn classifies_clusters() {
        let e = engine();
        let mut knn = KnnClassifier::new();
        for i in 0..5 {
            let a = e.tensor_1d(&[1.0 + i as f32 * 0.01, 0.0]).unwrap();
            knn.add_example(&a, "right").unwrap();
            let b = e.tensor_1d(&[-1.0 - i as f32 * 0.01, 0.0]).unwrap();
            knn.add_example(&b, "left").unwrap();
        }
        let q = e.tensor_1d(&[0.9, 0.05]).unwrap();
        let pred = knn.predict(&q, 3).unwrap();
        assert_eq!(pred.label, "right");
        assert_eq!(pred.confidences["right"], 1.0);
    }

    #[test]
    fn vote_shares_sum_to_one() {
        let e = engine();
        let mut knn = KnnClassifier::new();
        knn.add_example(&e.tensor_1d(&[0.0]).unwrap(), "a").unwrap();
        knn.add_example(&e.tensor_1d(&[1.0]).unwrap(), "b").unwrap();
        knn.add_example(&e.tensor_1d(&[2.0]).unwrap(), "b").unwrap();
        let pred = knn.predict(&e.tensor_1d(&[0.9]).unwrap(), 3).unwrap();
        let total: f32 = pred.confidences.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert_eq!(pred.label, "b");
    }

    #[test]
    fn dimension_mismatch_errors() {
        let e = engine();
        let mut knn = KnnClassifier::new();
        knn.add_example(&e.tensor_1d(&[1.0, 2.0]).unwrap(), "a").unwrap();
        assert!(knn.add_example(&e.tensor_1d(&[1.0]).unwrap(), "a").is_err());
        assert!(knn.predict(&e.tensor_1d(&[1.0]).unwrap(), 1).is_err());
    }

    #[test]
    fn empty_classifier_errors() {
        let e = engine();
        let knn = KnnClassifier::new();
        assert!(knn.predict(&e.tensor_1d(&[1.0]).unwrap(), 1).is_err());
    }

    #[test]
    fn clear_label_removes_class() {
        let e = engine();
        let mut knn = KnnClassifier::new();
        knn.add_example(&e.tensor_1d(&[0.0]).unwrap(), "a").unwrap();
        knn.add_example(&e.tensor_1d(&[1.0]).unwrap(), "b").unwrap();
        knn.clear_label("a");
        assert_eq!(knn.labels(), vec!["b"]);
        assert_eq!(knn.len(), 1);
    }
}
