//! The warm-model cache: an LRU keyed by model content hash that keeps
//! built models — fused `GraphModel`s or `Sequential`s — and their uploaded
//! weights resident across requests.
//!
//! Eviction disposes the evicted model's weight tensors, so the released
//! bytes are visible in `Engine::memory()` immediately. The cache also
//! watches the engine's degradation counter: after a backend fallback
//! (e.g. simulated WebGL context loss) every cached model is invalidated
//! and rebuilt on the fallback backend on next use.

use std::collections::HashMap;
use webml_converter::prune::GraphDef;
use webml_converter::{from_artifacts, GraphModel, ModelArtifacts, PlanStats};
use webml_core::{Engine, Error, Result, Tensor};
use webml_layers::Sequential;

/// Identifies a registered model: the content hash of its source.
pub type ModelKey = u64;

/// A model registration: everything needed to (re)build the servable model
/// on the engine's *current* backend — kept host-side so that cache
/// eviction and context-loss invalidation can always rebuild.
pub enum ModelSource {
    /// Converter artifacts, rebuilt via [`from_artifacts`] into a
    /// [`Sequential`].
    Artifacts(ModelArtifacts),
    /// A TensorFlow-style graph plus host weight values, rebuilt into a
    /// (fused) [`GraphModel`].
    Graph {
        /// The inference graph.
        graph: GraphDef,
        /// `(node name, values, shape)` for every `Const`/`VariableV2` node.
        weights: Vec<(String, Vec<f32>, Vec<usize>)>,
    },
}

impl ModelSource {
    /// Stable content hash used as the cache key.
    pub fn key(&self) -> ModelKey {
        match self {
            ModelSource::Artifacts(a) => a.content_hash(),
            ModelSource::Graph { graph, weights } => {
                const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
                const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
                let mut h = FNV_OFFSET;
                let mut eat = |bytes: &[u8]| {
                    for &b in bytes {
                        h ^= b as u64;
                        h = h.wrapping_mul(FNV_PRIME);
                    }
                };
                for node in &graph.nodes {
                    eat(node.name.as_bytes());
                    eat(&[0]);
                    eat(node.op.as_bytes());
                    eat(&[0]);
                    for input in &node.inputs {
                        eat(input.as_bytes());
                        eat(&[0]);
                    }
                    eat(serde_json::to_string(&node.attrs).unwrap_or_default().as_bytes());
                }
                for (name, values, shape) in weights {
                    eat(name.as_bytes());
                    eat(&[0]);
                    for &d in shape {
                        eat(&(d as u64).to_le_bytes());
                    }
                    for v in values {
                        eat(&v.to_le_bytes());
                    }
                }
                h
            }
        }
    }

    /// Host-side weight bytes this source would upload — the placement
    /// cost signal used by the fleet router (heavy models prefer engines
    /// with a high device-parallelism class). Computable without building
    /// the model.
    pub fn cost_bytes(&self) -> usize {
        match self {
            ModelSource::Artifacts(a) => a.weight_bytes(),
            ModelSource::Graph { weights, .. } => {
                weights.iter().map(|(_, values, _)| values.len() * 4).sum()
            }
        }
    }
}

/// A built, servable model with its weights uploaded to the engine.
#[allow(clippy::large_enum_variant)] // a handful of cache entries, never moved in bulk
pub enum Loaded {
    /// A layers model (forward pass on the whole batch).
    Seq(Sequential),
    /// A fused graph model plus its resolved feed/fetch node names.
    Graph {
        /// The executable graph.
        model: GraphModel,
        /// Placeholder to bind the batch input to.
        feed: String,
        /// Terminal node to fetch.
        fetch: String,
    },
}

impl Loaded {
    fn build(engine: &Engine, source: &ModelSource) -> Result<Loaded> {
        match source {
            ModelSource::Artifacts(a) => Ok(Loaded::Seq(from_artifacts(engine, a)?)),
            ModelSource::Graph { graph, weights } => {
                let mut uploaded: HashMap<String, Tensor> = HashMap::new();
                for (name, values, shape) in weights {
                    let t = engine
                        .tensor(values.clone(), webml_core::Shape::new(shape.clone()))?;
                    t.keep();
                    uploaded.insert(name.clone(), t);
                }
                let model = GraphModel::new(engine, graph.clone(), uploaded)?;
                let feed = model
                    .placeholder_names()
                    .first()
                    .map(|s| s.to_string())
                    .ok_or_else(|| Error::invalid("serve", "graph has no placeholder"))?;
                let fetch = model
                    .output_names()
                    .first()
                    .map(|s| s.to_string())
                    .ok_or_else(|| Error::invalid("serve", "graph has no output node"))?;
                Ok(Loaded::Graph { model, feed, fetch })
            }
        }
    }

    /// Pre-warm execution plans for the micro-batcher's shapes: when the
    /// graph's placeholders declare their per-example shape, compile plans
    /// for batch sizes 1 and `max_batch` so neither a single request nor a
    /// full batch pays plan compilation on its first forward. Failures are
    /// non-fatal — execution falls back to the interpreter.
    pub fn warm_plans(&self, max_batch: usize) {
        let Loaded::Graph { model, fetch, .. } = self else { return };
        let Some(sig) = model.placeholder_shape_attrs() else { return };
        for batch in [1, max_batch.max(1)] {
            let batched: Vec<(String, Vec<usize>)> = sig
                .iter()
                .map(|(name, dims)| {
                    let mut dims = dims.clone();
                    if !dims.is_empty() {
                        dims[0] = batch;
                    }
                    (name.clone(), dims)
                })
                .collect();
            let _ = model.plan_for_shapes(&batched, &[fetch.as_str()]);
        }
    }

    /// This model's plan-cache counters (zero for layers models).
    pub fn plan_stats(&self) -> PlanStats {
        match self {
            Loaded::Seq(_) => PlanStats::default(),
            Loaded::Graph { model, .. } => model.plan_stats(),
        }
    }

    /// One forward pass over a (possibly batched) input tensor.
    pub fn forward(&self, engine: &Engine, x: &Tensor) -> Result<Tensor> {
        match self {
            Loaded::Seq(m) => engine.tidy(|| m.forward(x, false)),
            Loaded::Graph { model, feed, fetch } => {
                let mut outs = model.execute(&[(feed.as_str(), x)], &[fetch.as_str()])?;
                Ok(outs.remove(0))
            }
        }
    }

    /// Bytes resident in this model's uploaded weights.
    pub fn weight_bytes(&self) -> usize {
        match self {
            Loaded::Seq(m) => m.named_weights().iter().map(|(_, v)| v.value().bytes()).sum(),
            Loaded::Graph { model, .. } => model.weight_bytes(),
        }
    }

    fn dispose_weights(&self) {
        match self {
            Loaded::Seq(m) => {
                for (_, v) in m.named_weights() {
                    v.dispose();
                }
            }
            Loaded::Graph { model, .. } => model.dispose_weights(),
        }
    }
}

struct Entry {
    model: Loaded,
    last_used: u64,
}

/// LRU cache of built models, owned by the dispatcher thread.
pub struct ModelCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<ModelKey, Entry>,
    degradation_epoch: u64,
    /// Batch size (in addition to 1) to pre-warm execution plans for.
    warm_batch: usize,
    /// Plan counters carried over from evicted/invalidated models, so the
    /// aggregate in [`ModelCache::plan_stats`] stays monotonic.
    retired_plans: PlanStats,
    /// Lifetime counters, drained by the server's stats.
    pub hits: u64,
    /// Cache misses (model built from source).
    pub misses: u64,
    /// Evictions (LRU capacity pressure).
    pub evictions: u64,
    /// Whole-cache invalidations after a backend degradation.
    pub invalidations: u64,
}

impl ModelCache {
    /// A cache holding at most `capacity` warm models (min 1), pre-warming
    /// execution plans for batch sizes 1 and `warm_batch` on each build.
    pub fn new(capacity: usize, warm_batch: usize, engine: &Engine) -> ModelCache {
        ModelCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            degradation_epoch: engine.degradation_generation(),
            warm_batch: warm_batch.max(1),
            retired_plans: PlanStats::default(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Aggregate plan-cache counters across the warm models, including
    /// counts accumulated by models that have since been evicted or
    /// invalidated. `entries` counts only currently-resident plans.
    pub fn plan_stats(&self) -> PlanStats {
        let mut total = self.retired_plans;
        total.entries = 0;
        for entry in self.entries.values() {
            let s = entry.model.plan_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
            total.fallbacks += s.fallbacks;
            total.entries += s.entries;
        }
        total
    }

    fn retire(&mut self, model: &Loaded) {
        let s = model.plan_stats();
        self.retired_plans.hits += s.hits;
        self.retired_plans.misses += s.misses;
        self.retired_plans.invalidations += s.invalidations;
        self.retired_plans.fallbacks += s.fallbacks;
    }

    /// Number of warm models currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Invalidate everything when the engine degraded since the last check
    /// (context loss → the old backend's programs/textures are gone; the
    /// rebuilt models upload onto the fallback backend). Returns whether an
    /// invalidation happened. Polled per drain, so it reads the engine's
    /// atomic degradation *generation* — never the event log.
    pub fn check_degradation(&mut self, engine: &Engine) -> bool {
        let epoch = engine.degradation_generation();
        if epoch == self.degradation_epoch {
            return false;
        }
        self.degradation_epoch = epoch;
        self.invalidate_all();
        true
    }

    /// Drop every cached model, disposing their weights.
    pub fn invalidate_all(&mut self) {
        let drained: Vec<Entry> = self.entries.drain().map(|(_, e)| e).collect();
        for entry in drained {
            self.retire(&entry.model);
            entry.model.dispose_weights();
        }
        self.invalidations += 1;
    }

    /// Drop one model (e.g. after a forward error), disposing its weights.
    pub fn invalidate(&mut self, key: ModelKey) {
        if let Some(entry) = self.entries.remove(&key) {
            self.retire(&entry.model);
            entry.model.dispose_weights();
        }
    }

    /// Fetch the warm model for `key`, building it from `source` on a miss
    /// (evicting the least-recently-used model first when full).
    ///
    /// # Errors
    /// Propagates model-build errors.
    pub fn get_or_load(&mut self, engine: &Engine, key: ModelKey, source: &ModelSource) -> Result<&Loaded> {
        self.tick += 1;
        let tick = self.tick;
        if self.entries.contains_key(&key) {
            self.hits += 1;
        } else {
            while self.entries.len() >= self.capacity {
                let lru = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty cache");
                let entry = self.entries.remove(&lru).expect("lru key present");
                self.retire(&entry.model);
                entry.model.dispose_weights();
                self.evictions += 1;
            }
            let model = {
                let _span = webml_telemetry::span("serve.model_build", "serve");
                let model = Loaded::build(engine, source)?;
                model.warm_plans(self.warm_batch);
                model
            };
            self.misses += 1;
            self.entries.insert(key, Entry { model, last_used: tick });
        }
        let entry = self.entries.get_mut(&key).expect("inserted above");
        entry.last_used = tick;
        Ok(&entry.model)
    }
}
