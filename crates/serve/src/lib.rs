//! # webml-serve
//!
//! Concurrent inference serving on top of the eager engine: a dynamic
//! micro-batcher plus a warm-model LRU cache.
//!
//! The paper positions TensorFlow.js as a *deployment* vehicle — models
//! shipped to many clients with inference interleaved into a live event
//! loop (Sec 3.7, Sec 5). This crate reproduces the server-side shape of
//! that story: many concurrent clients submit single-example requests, a
//! dispatcher coalesces same-model same-shape requests into one batched
//! forward pass (amortizing per-kernel dispatch overhead, the dominant
//! cost for small models), splits the batch output back per request, and
//! keeps recently used models warm so repeat traffic skips weight upload.
//!
//! ## Batching semantics
//!
//! - Requests carry host-side example data (`values` + per-example `dims`).
//! - The dispatcher drains the queue once `max_batch` requests are pending
//!   or `max_wait` has elapsed since it saw the first one.
//! - Drained requests group by `(model, example dims)`; each group runs as
//!   one `[n, dims...]` forward pass, chunked to `max_batch`.
//! - Groups of one — and any group whose batched pass fails — degrade to
//!   per-request execution, so shape-incompatible or failing traffic is
//!   served correctly, just without the batching win.
//!
//! ## Degradation interaction (PR 1 ladder)
//!
//! The cache snapshots `Engine::degradations()`; when a backend fallback
//! happens (e.g. simulated WebGL context loss) the whole cache is
//! invalidated and models rebuild on the fallback backend on next use.
//! In-flight requests are transparently retried per-request — callers see
//! answers, not errors.

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod health;
pub(crate) mod obs;
pub mod router;

pub use cache::{Loaded, ModelCache, ModelKey, ModelSource};
pub use error::ServeError;
pub use health::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker, EngineHealth};
pub use router::{
    EngineSpec, EngineStatus, FleetConfig, FleetPending, FleetResult, FleetServer, FleetStats,
    ModelSlo, RecoverHook,
};

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use webml_core::backend::DataFuture;
use webml_core::{Engine, Error, FenceToken, Result, Shape, Tensor};
use webml_telemetry as telemetry;
use webml_telemetry::{
    Histogram, HistogramSummary, PhaseStamps, RequestCtx, RequestOutcome, RequestTimeline,
};

/// Micro-batcher and cache tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest coalesced batch per forward pass (1 disables batching).
    pub max_batch: usize,
    /// How long the dispatcher holds the first queued request open for
    /// batch-mates before running a partial batch.
    pub max_wait: Duration,
    /// Adaptively shrink the batch window toward zero when the queue is
    /// shallow: with a single closed-loop client there are never
    /// batch-mates to wait for, and holding the window only adds `max_wait`
    /// of dead latency per request. The dispatcher skips the window
    /// entirely unless the queue suggests batching will pay (more than one
    /// request already queued, or recent drains averaged ≥ 1.5 requests).
    pub adaptive_window: bool,
    /// Warm models kept resident in the LRU cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            adaptive_window: true,
            cache_capacity: 4,
        }
    }
}

/// The adaptive batch-window policy shared by the single-engine dispatcher
/// and the fleet workers: hold the window open for batch-mates only when
/// the queue is likely to produce them, and only for as many as recent
/// traffic actually delivers.
///
/// Two pathologies bound the design. A single closed-loop client never has
/// batch-mates: holding the window adds `max_wait` of dead latency per
/// request for nothing. And `k` closed-loop clients (`k < max_batch`) can
/// never fill a `max_batch` window: waiting for requests that cannot
/// arrive stalls *every* batch for the full `max_wait`. So the policy
/// tracks an EWMA of drain sizes (the observed concurrency) and (a) skips
/// the window entirely when the queue is shallow and recent drains
/// averaged < 1.5 requests, (b) otherwise waits only until the drain-size
/// EWMA's worth of requests are queued. The drain itself still scoops
/// everything pending, so rising concurrency grows the EWMA — and the
/// batches — on its own.
pub(crate) struct WindowPolicy {
    adaptive: bool,
    /// EWMA of recent drain sizes — the observed degree of concurrency.
    ewma_drain: f64,
}

impl WindowPolicy {
    pub(crate) fn new(adaptive: bool) -> WindowPolicy {
        WindowPolicy { adaptive, ewma_drain: 0.0 }
    }

    /// Whether the dispatcher should hold the batch window open, given the
    /// queue length at drain start.
    pub(crate) fn should_wait(&self, queued: usize) -> bool {
        if !self.adaptive {
            return true;
        }
        queued > 1 || self.ewma_drain >= 1.5
    }

    /// How many queued requests end the window early: the observed
    /// concurrency (floored, so jitter undershoots rather than stalls),
    /// clamped to `[2, max_batch]`. Without the adaptive policy this is
    /// always `max_batch` (the fixed-window behavior).
    pub(crate) fn target_batch(&self, max_batch: usize) -> usize {
        if !self.adaptive {
            return max_batch;
        }
        (self.ewma_drain as usize).max(2).min(max_batch.max(1))
    }

    pub(crate) fn observe_drain(&mut self, drained: usize) {
        self.ewma_drain = self.ewma_drain * 0.7 + drained as f64 * 0.3;
    }
}

/// One served inference result: flattened output values plus per-example
/// output dims (no batch dimension).
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Flattened output values for this request's example.
    pub values: Vec<f32>,
    /// Per-example output shape.
    pub dims: Vec<usize>,
}

/// Lifetime serving counters (monotonic snapshots from
/// [`ModelServer::stats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered (successfully or with an error reply).
    pub served: u64,
    /// Batched forward passes executed (size ≥ 2).
    pub batches: u64,
    /// Requests answered from inside a batched pass.
    pub batched_requests: u64,
    /// Requests executed singly (group of one, `max_batch` 1, or fallback).
    pub single_requests: u64,
    /// Batched passes that failed and degraded to per-request execution.
    pub batch_fallbacks: u64,
    /// Warm-cache hits.
    pub cache_hits: u64,
    /// Cache misses (model built and uploaded).
    pub cache_misses: u64,
    /// LRU evictions.
    pub cache_evictions: u64,
    /// Whole-cache invalidations after an engine backend degradation.
    pub cache_invalidations: u64,
    /// Forward passes served by a precompiled execution plan (aggregated
    /// over warm graph models, including since-evicted ones).
    pub plan_hits: u64,
    /// Execution plans compiled (cold feed-shape signature or rebuild
    /// after a backend degradation).
    pub plan_misses: u64,
    /// Plan-cache invalidations after a backend degradation.
    pub plan_invalidations: u64,
    /// Forward passes that fell back to the graph interpreter.
    pub plan_fallbacks: u64,
    /// Distribution of per-request queue wait (submit → dispatcher drain),
    /// in milliseconds.
    pub queue_wait_ms: HistogramSummary,
    /// Distribution of executed forward-pass batch sizes (singles count
    /// as size 1).
    pub batch_size: HistogramSummary,
}

#[derive(Default)]
struct StatsCells {
    served: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    single_requests: AtomicU64,
    batch_fallbacks: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_invalidations: AtomicU64,
    plan_fallbacks: AtomicU64,
}

struct Request {
    key: ModelKey,
    values: Vec<f32>,
    dims: Vec<usize>,
    reply: mpsc::Sender<Result<InferResponse>>,
    enqueued: Instant,
    /// Request-scoped trace context + phase timeline, stamped as the
    /// request moves submit → queue → batch → device and finalized at
    /// reply time (see [`obs::finish_request`]).
    tl: RequestTimeline,
}

struct QueueState {
    requests: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    engine: Engine,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    sources: Mutex<HashMap<ModelKey, Arc<ModelSource>>>,
    stats: StatsCells,
    /// Per-server (not registry-global) histograms, so concurrent servers
    /// and repeated benchmark cells don't pollute each other's quantiles.
    queue_wait_ms: Histogram,
    batch_size: Histogram,
}

/// A handle to an in-flight [`ModelServer::submit`] request.
pub struct PendingInference {
    rx: mpsc::Receiver<Result<InferResponse>>,
}

impl PendingInference {
    /// Block until the response arrives.
    ///
    /// # Errors
    /// Propagates serving errors; fails if the server shut down first.
    pub fn wait(self) -> Result<InferResponse> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(Error::invalid("serve", "server shut down before replying")))
    }
}

/// The serving front end: owns the dispatcher thread; clone-free, share via
/// `Arc` (all methods take `&self`).
pub struct ModelServer {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl ModelServer {
    /// Start a server (and its dispatcher thread) over `engine`.
    pub fn new(engine: &Engine, config: ServeConfig) -> ModelServer {
        let shared = Arc::new(Shared {
            engine: engine.clone(),
            config,
            queue: Mutex::new(QueueState { requests: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            sources: Mutex::new(HashMap::new()),
            stats: StatsCells::default(),
            queue_wait_ms: Histogram::new(),
            batch_size: Histogram::new(),
        });
        let worker = shared.clone();
        let dispatcher = std::thread::Builder::new()
            .name("webml-serve-dispatcher".into())
            .spawn(move || dispatch_loop(&worker))
            .expect("spawn dispatcher thread");
        ModelServer { shared, dispatcher: Some(dispatcher) }
    }

    /// Register a model for serving; returns the key clients submit against.
    /// Re-registering identical content returns the same key (dedup by
    /// content hash).
    pub fn register(&self, source: ModelSource) -> ModelKey {
        let key = source.key();
        self.shared.sources.lock().entry(key).or_insert_with(|| Arc::new(source));
        key
    }

    /// Enqueue one inference: `values` is one example with shape `dims`
    /// (no batch dimension). Returns immediately with a pending handle.
    pub fn submit(&self, key: ModelKey, values: Vec<f32>, dims: Vec<usize>) -> PendingInference {
        let (tx, rx) = mpsc::channel();
        let ctx = RequestCtx::mint();
        let mut tl = RequestTimeline::new(ctx.trace_id, ctx.parent_span, key);
        tl.submitted_ns = telemetry::now_ns();
        let expected: usize = dims.iter().product();
        if expected != values.len() || dims.is_empty() {
            obs::finish_request(&mut tl, RequestOutcome::Rejected, 0, 0);
            let _ = tx.send(Err(Error::invalid(
                "serve",
                format!("example of {} values does not match dims {dims:?}", values.len()),
            )));
            return PendingInference { rx };
        }
        if !self.shared.sources.lock().contains_key(&key) {
            obs::finish_request(&mut tl, RequestOutcome::Rejected, 0, 0);
            let _ = tx.send(Err(Error::invalid("serve", format!("unknown model key {key:#x}"))));
            return PendingInference { rx };
        }
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                obs::finish_request(&mut tl, RequestOutcome::Rejected, 0, 0);
                let _ = tx.send(Err(Error::invalid("serve", "server is shutting down")));
                return PendingInference { rx };
            }
            tl.admitted_ns = telemetry::now_ns();
            {
                // Recorded before the push: once queued, the dispatcher may
                // reply at any moment, and the enqueue marker must fall
                // inside the request's submit→reply envelope.
                let _scope = telemetry::trace_scope(ctx.trace_id);
                telemetry::instant("serve.enqueue", "serve");
            }
            q.requests.push_back(Request {
                key,
                values,
                dims,
                reply: tx,
                enqueued: Instant::now(),
                tl,
            });
        }
        self.shared.available.notify_all();
        PendingInference { rx }
    }

    /// Blocking inference: [`ModelServer::submit`] + wait.
    ///
    /// # Errors
    /// Propagates serving errors.
    pub fn infer(&self, key: ModelKey, values: Vec<f32>, dims: Vec<usize>) -> Result<InferResponse> {
        self.submit(key, values, dims).wait()
    }

    /// Snapshot of the lifetime serving counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            served: s.served.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_requests: s.batched_requests.load(Ordering::Relaxed),
            single_requests: s.single_requests.load(Ordering::Relaxed),
            batch_fallbacks: s.batch_fallbacks.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            cache_evictions: s.cache_evictions.load(Ordering::Relaxed),
            cache_invalidations: s.cache_invalidations.load(Ordering::Relaxed),
            plan_hits: s.plan_hits.load(Ordering::Relaxed),
            plan_misses: s.plan_misses.load(Ordering::Relaxed),
            plan_invalidations: s.plan_invalidations.load(Ordering::Relaxed),
            plan_fallbacks: s.plan_fallbacks.load(Ordering::Relaxed),
            queue_wait_ms: self.shared.queue_wait_ms.summary(),
            batch_size: self.shared.batch_size.summary(),
        }
    }

    /// The engine this server executes on.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Stop accepting requests, finish the queue, and join the dispatcher.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: single consumer of the queue, sole owner of the model
/// cache (so cached models never cross threads).
fn dispatch_loop(shared: &Shared) {
    let mut cache =
        ModelCache::new(shared.config.cache_capacity, shared.config.max_batch, &shared.engine);
    let mut window = WindowPolicy::new(shared.config.adaptive_window);
    loop {
        let drained: Vec<Request> = {
            let mut q = shared.queue.lock();
            while q.requests.is_empty() && !q.shutdown {
                shared.available.wait(&mut q);
            }
            if q.requests.is_empty() && q.shutdown {
                break;
            }
            // Batch window: hold the first request open for batch-mates —
            // unless the adaptive policy says the queue is too shallow for
            // batching to pay, in which case drain immediately.
            if window.should_wait(q.requests.len()) {
                // Wait only for as many batch-mates as recent traffic
                // actually produced — k closed-loop clients can never fill
                // a max_batch window, and waiting for them stalls every
                // batch for the full max_wait.
                let target = window.target_batch(shared.config.max_batch);
                let deadline = Instant::now() + shared.config.max_wait;
                while q.requests.len() < target && !q.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if shared.available.wait_for(&mut q, deadline - now).timed_out() {
                        break;
                    }
                }
            }
            q.requests.drain(..).collect()
        };
        window.observe_drain(drained.len());
        process_drained(shared, &mut cache, drained);
    }
    // Shut down: release the warm models' weights.
    cache.invalidate_all();
    sync_cache_stats(shared, &cache);
}

fn sync_cache_stats(shared: &Shared, cache: &ModelCache) {
    shared.stats.cache_hits.store(cache.hits, Ordering::Relaxed);
    shared.stats.cache_misses.store(cache.misses, Ordering::Relaxed);
    shared.stats.cache_evictions.store(cache.evictions, Ordering::Relaxed);
    shared.stats.cache_invalidations.store(cache.invalidations, Ordering::Relaxed);
    let plans = cache.plan_stats();
    shared.stats.plan_hits.store(plans.hits, Ordering::Relaxed);
    shared.stats.plan_misses.store(plans.misses, Ordering::Relaxed);
    shared.stats.plan_invalidations.store(plans.invalidations, Ordering::Relaxed);
    shared.stats.plan_fallbacks.store(plans.fallbacks, Ordering::Relaxed);
}

fn process_drained(shared: &Shared, cache: &mut ModelCache, mut drained: Vec<Request>) {
    // The dispatch pass gets its own trace context; batch contexts minted
    // below become its children, so a trace viewer can walk request →
    // batch → dispatch.
    let dispatch_ctx = RequestCtx::mint();
    let _dispatch_scope = telemetry::trace_scope(dispatch_ctx.trace_id);
    let _dispatch =
        telemetry::span("serve.dispatch", "serve").with_arg("drained", drained.len() as f64);
    let drained_at = telemetry::now_ns();
    for req in &mut drained {
        req.tl.drained_ns = drained_at;
        shared.queue_wait_ms.observe(req.enqueued.elapsed().as_secs_f64() * 1e3);
    }
    if cache.check_degradation(&shared.engine) {
        // Backend fell back (e.g. context loss): models rebuild below on
        // the fallback backend; requests in this drain retry transparently.
        // Sync eagerly so the invalidation is visible to any caller whose
        // reply arrives from this drain onward.
        sync_cache_stats(shared, cache);
    }
    // Group by (model, example dims): only identical shapes batch.
    type GroupKey = (ModelKey, Vec<usize>);
    let mut groups: Vec<(GroupKey, Vec<Request>)> = Vec::new();
    for req in drained {
        let group_key = (req.key, req.dims.clone());
        match groups.iter_mut().find(|(k, _)| *k == group_key) {
            Some((_, members)) => members.push(req),
            None => groups.push((group_key, vec![req])),
        }
    }
    // Two-phase pipelined dispatch (paper Sec 4.1.1, Fig 3): phase 1
    // enqueues every chunk's forward pass plus an async readback and a
    // fence without ever blocking, so on an async backend chunk i+1's
    // host-side concat/upload overlaps chunk i's device compute and the
    // device queue stays non-empty across the whole drain. Phase 2 collects
    // results in submission order — by then the early chunks' readbacks
    // have usually completed, so the waits are cheap.
    let mut in_flight: Vec<InFlightChunk> = Vec::new();
    for ((key, dims), members) in groups {
        let source = shared.sources.lock().get(&key).cloned();
        let source = match source {
            Some(s) => s,
            None => {
                for mut req in members {
                    // Count before replying: a caller that sees its reply
                    // must also see it reflected in the stats.
                    shared.stats.served.fetch_add(1, Ordering::Relaxed);
                    obs::finish_request(&mut req.tl, RequestOutcome::Rejected, 0, 0);
                    let _ = req
                        .reply
                        .send(Err(Error::invalid("serve", format!("unknown model key {key:#x}"))));
                }
                continue;
            }
        };
        for chunk in chunked(members, shared.config.max_batch) {
            if let Some(fl) = submit_chunk(shared, cache, key, &source, &dims, chunk) {
                in_flight.push(fl);
            }
        }
    }
    for fl in in_flight {
        complete_chunk(shared, cache, fl);
    }
    sync_cache_stats(shared, cache);
}

/// A coalesced chunk whose forward pass is enqueued but not yet collected.
struct InFlightChunk {
    key: ModelKey,
    source: Arc<ModelSource>,
    chunk: Vec<Request>,
    /// `None` ⇒ submission failed; the completion phase serves the chunk
    /// per-request against the (already invalidated) rebuilt model.
    run: Option<SubmittedRun>,
    /// Trace id of the batch context this chunk executed under (its kernel
    /// and GPU spans carry it).
    batch_trace: u64,
    /// Upload/compute boundaries stamped at submission, completed (compute
    /// end / readback end) by [`complete_run`].
    stamps: PhaseStamps,
}

/// The device-side half of an in-flight chunk: input and output handles,
/// the asynchronous readback future for the output (issued at submission,
/// so the device copies results out the moment they exist — never a
/// pipeline-draining synchronous read), and the submission-end fence.
struct SubmittedRun {
    x: Tensor,
    y: Tensor,
    fut: DataFuture,
    /// Fence enqueued between the forward pass and the readback, so the
    /// completion phase can stamp where compute ended and readback began.
    compute_fence: Option<FenceToken>,
    fence: Option<FenceToken>,
}

pub(crate) fn chunked<T>(mut members: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let size = size.max(1);
    let mut chunks = Vec::new();
    while members.len() > size {
        let rest = members.split_off(size);
        chunks.push(members);
        members = rest;
    }
    if !members.is_empty() {
        chunks.push(members);
    }
    chunks
}

/// Phase 1 for one chunk: enqueue the coalesced forward pass, the async
/// readback, and a fence — without blocking. Returns `None` when the chunk
/// was fully handled here (single-request submission errors reply
/// directly, mirroring the synchronous single path).
fn submit_chunk(
    shared: &Shared,
    cache: &mut ModelCache,
    key: ModelKey,
    source: &Arc<ModelSource>,
    dims: &[usize],
    chunk: Vec<Request>,
) -> Option<InFlightChunk> {
    let n = chunk.len();
    shared.batch_size.observe(n as f64);
    // Everything submitted under the batch scope — the serve.submit span,
    // kernel spans, and the GPU commands captured at enqueue — carries the
    // batch's trace id; members link to it via serve.batch_member.
    let batch_ctx = obs::batch_ctx();
    let _scope = telemetry::trace_scope(batch_ctx.trace_id);
    let mut stamps = PhaseStamps { exec_start_ns: telemetry::now_ns(), ..Default::default() };
    let submitted = {
        let _span = telemetry::span("serve.submit", "serve").with_arg("batch_size", n as f64);
        try_submit(shared, cache, key, source, dims, &chunk, &mut stamps)
    };
    match submitted {
        Ok(run) => Some(InFlightChunk {
            key,
            source: source.clone(),
            chunk,
            run: Some(run),
            batch_trace: batch_ctx.trace_id,
            stamps,
        }),
        Err(e) if n == 1 => {
            // Count before replying: a caller that sees its reply must also
            // see it reflected in the stats.
            let mut req = chunk.into_iter().next().expect("n == 1");
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            shared.stats.single_requests.fetch_add(1, Ordering::Relaxed);
            req.tl.apply_stamps(&stamps);
            obs::finish_request(&mut req.tl, RequestOutcome::Error, 1, batch_ctx.trace_id);
            let _ = req.reply.send(Err(e));
            telemetry::instant("serve.reply", "serve");
            // Close the batch envelope around whatever partial work ran
            // under the batch id before the submission failed.
            telemetry::record_span("serve.batch", "serve", stamps.exec_start_ns, telemetry::now_ns());
            None
        }
        Err(_) => {
            // Degrade to per-request execution in the completion phase; a
            // stale model (e.g. dead backend) is rebuilt on the retry.
            cache.invalidate(key);
            shared.stats.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
            telemetry::instant("serve.batch_fallback", "serve");
            Some(InFlightChunk {
                key,
                source: source.clone(),
                chunk,
                run: None,
                batch_trace: batch_ctx.trace_id,
                stamps,
            })
        }
    }
}

/// Concat examples host-side into `[n, dims..]`, enqueue the forward pass,
/// issue the asynchronous output readback, and fence the submission.
fn try_submit(
    shared: &Shared,
    cache: &mut ModelCache,
    key: ModelKey,
    source: &ModelSource,
    dims: &[usize],
    chunk: &[Request],
    stamps: &mut PhaseStamps,
) -> Result<SubmittedRun> {
    let n = chunk.len();
    let per_len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(n * per_len);
    for req in chunk {
        data.extend_from_slice(&req.values);
    }
    let mut batch_dims = vec![n];
    batch_dims.extend_from_slice(dims);
    let engine = &shared.engine;
    let model = cache.get_or_load(engine, key, source)?;
    let x = engine.tensor(data, Shape::new(batch_dims))?;
    // Host-side upload boundary: model load + input tensor submitted.
    stamps.upload_end_ns = telemetry::now_ns();
    let y = match model.forward(engine, &x) {
        Ok(y) => y,
        Err(e) => {
            x.dispose();
            return Err(e);
        }
    };
    // Fence between the forward pass and the readback: the completion
    // phase waits it to stamp the compute→readback boundary.
    let compute_fence = engine.submit_fence();
    let fut = match y.data() {
        Ok(f) => f,
        Err(e) => {
            x.dispose();
            y.dispose();
            return Err(e);
        }
    };
    let fence = engine.submit_fence();
    Ok(SubmittedRun { x, y, fut, compute_fence, fence })
}

/// Phase 2 for one chunk: wait for the in-flight run (cheap when the
/// device already finished behind later submissions), split rows, reply.
/// Failed chunks degrade to per-request synchronous execution exactly like
/// the pre-pipelining dispatcher.
fn complete_chunk(shared: &Shared, cache: &mut ModelCache, fl: InFlightChunk) {
    let InFlightChunk { key, source, chunk, run, batch_trace, mut stamps } = fl;
    let n = chunk.len();
    let batch_scope = telemetry::trace_scope(batch_trace);
    if let Some(run) = run {
        let completed = {
            let _span =
                telemetry::span("serve.complete", "serve").with_arg("batch_size", n as f64);
            complete_run(shared, run, n, &mut stamps)
        };
        match completed {
            Ok(responses) => {
                // Count before replying: a caller that sees its reply must
                // also see it reflected in the stats.
                if n >= 2 {
                    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                }
                for (mut req, resp) in chunk.into_iter().zip(responses) {
                    shared.stats.served.fetch_add(1, Ordering::Relaxed);
                    if n >= 2 {
                        shared.stats.batched_requests.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.stats.single_requests.fetch_add(1, Ordering::Relaxed);
                    }
                    req.tl.apply_stamps(&stamps);
                    obs::finish_request(&mut req.tl, RequestOutcome::Completed, n as u32, batch_trace);
                    let _ = req.reply.send(Ok(resp));
                    telemetry::instant("serve.reply", "serve");
                }
                // Batch envelope: closed after the replies so every
                // batch-scoped event nests inside it.
                telemetry::record_span_arg(
                    "serve.batch",
                    "serve",
                    stamps.exec_start_ns,
                    telemetry::now_ns(),
                    "batch_size",
                    n as f64,
                );
                return;
            }
            Err(e) if n == 1 => {
                // Mirrors the synchronous single path: the error is the
                // answer, not a reason to retry.
                let mut req = chunk.into_iter().next().expect("n == 1");
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                shared.stats.single_requests.fetch_add(1, Ordering::Relaxed);
                req.tl.apply_stamps(&stamps);
                obs::finish_request(&mut req.tl, RequestOutcome::Error, 1, batch_trace);
                let _ = req.reply.send(Err(e));
                telemetry::instant("serve.reply", "serve");
                telemetry::record_span(
                    "serve.batch",
                    "serve",
                    stamps.exec_start_ns,
                    telemetry::now_ns(),
                );
                return;
            }
            Err(_) => {
                // Degrade to per-request execution; a stale model (e.g.
                // dead backend) is rebuilt on the retry.
                cache.invalidate(key);
                shared.stats.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
                telemetry::instant("serve.batch_fallback", "serve");
            }
        }
    }
    // Close the batch envelope before the per-request fallback (which runs
    // under each member's own trace scope).
    telemetry::record_span("serve.batch", "serve", stamps.exec_start_ns, telemetry::now_ns());
    drop(batch_scope);
    for mut req in chunk {
        shared.batch_size.observe(1.0);
        let req_scope = telemetry::trace_scope(req.tl.trace_id);
        let mut single_stamps = PhaseStamps::default();
        let result = {
            let _span = telemetry::span("serve.single", "serve");
            run_single(shared, cache, key, &source, &req, &mut single_stamps)
        };
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        shared.stats.single_requests.fetch_add(1, Ordering::Relaxed);
        let outcome =
            if result.is_ok() { RequestOutcome::Completed } else { RequestOutcome::Error };
        req.tl.apply_stamps(&single_stamps);
        obs::finish_request(&mut req.tl, outcome, 1, 0);
        let _ = req.reply.send(result);
        telemetry::instant("serve.reply", "serve");
        drop(req_scope);
    }
}

/// Wait out an in-flight run and split its `[n, out..]` output per request.
/// The fence wait parks on the device queue's condvar (no spinning); the
/// readback future then resolves immediately. A failed future retries
/// through the synchronous path, which has transient-retry machinery and
/// re-locates data after a mid-pipeline degradation.
fn complete_run(
    shared: &Shared,
    run: SubmittedRun,
    n: usize,
    stamps: &mut PhaseStamps,
) -> Result<Vec<InferResponse>> {
    shared.engine.wait_fence(run.compute_fence);
    stamps.compute_end_ns = telemetry::now_ns();
    shared.engine.wait_fence(run.fence);
    let read = run.fut.wait().or_else(|_| run.y.data_sync());
    let out = read.and_then(|d| split_values(d.to_f32_vec(), &run.y.shape().0, n));
    run.x.dispose();
    run.y.dispose();
    stamps.readback_end_ns = telemetry::now_ns();
    out
}

fn run_single(
    shared: &Shared,
    cache: &mut ModelCache,
    key: ModelKey,
    source: &ModelSource,
    req: &Request,
    stamps: &mut PhaseStamps,
) -> Result<InferResponse> {
    let engine = &shared.engine;
    let mut batch_dims = vec![1];
    batch_dims.extend_from_slice(&req.dims);
    stamps.exec_start_ns = telemetry::now_ns();
    let model = cache.get_or_load(engine, key, source)?;
    let x = engine.tensor(req.values.clone(), Shape::new(batch_dims))?;
    stamps.upload_end_ns = telemetry::now_ns();
    let y = match model.forward(engine, &x) {
        Ok(y) => y,
        Err(e) => {
            x.dispose();
            return Err(e);
        }
    };
    // Synchronous path: compute and readback drain together in read_rows;
    // the boundary is the forward submission.
    stamps.compute_end_ns = telemetry::now_ns();
    let rows = read_rows(&y, 1);
    x.dispose();
    y.dispose();
    stamps.readback_end_ns = telemetry::now_ns();
    Ok(rows?.remove(0))
}

/// Download a `[n, out..]` batch output through the asynchronous readback
/// path (paper Fig 3) and split it into per-request responses: the read is
/// enqueued behind the producing ops, so the device copies results out in
/// stream order instead of servicing a pipeline-draining synchronous
/// `readPixels`. Falls back to the sync path (which has transient-retry
/// machinery) if the future fails.
pub(crate) fn read_rows(y: &Tensor, n: usize) -> Result<Vec<InferResponse>> {
    let out_shape = y.shape().0;
    let data = match y.data() {
        Ok(fut) => match fut.wait() {
            Ok(d) => d,
            Err(_) => y.data_sync()?,
        },
        Err(_) => y.data_sync()?,
    };
    split_values(data.to_f32_vec(), &out_shape, n)
}

/// Split already-downloaded `[n, out..]` values into per-request responses.
pub(crate) fn split_values(
    values: Vec<f32>,
    out_shape: &[usize],
    n: usize,
) -> Result<Vec<InferResponse>> {
    if out_shape.first() != Some(&n) {
        return Err(Error::invalid(
            "serve",
            format!("model output shape {out_shape:?} does not preserve batch size {n}"),
        ));
    }
    let per_dims: Vec<usize> = out_shape[1..].to_vec();
    let per_len: usize = per_dims.iter().product();
    Ok(values
        .chunks(per_len.max(1))
        .take(n)
        .map(|row| InferResponse { values: row.to_vec(), dims: per_dims.clone() })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use webml_core::cpu::CpuBackend;
    use webml_converter::prune::GraphDef;
    use webml_converter::to_artifacts;
    use webml_layers::{Activation, Dense, Sequential};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn mlp_artifacts(e: &Engine) -> webml_converter::ModelArtifacts {
        let mut model = Sequential::new(e).with_seed(7);
        model.add(Dense::new(8).with_input_dim(4).with_activation(Activation::Relu));
        model.add(Dense::new(3).with_activation(Activation::Softmax));
        model.build([4]).unwrap();
        let artifacts = to_artifacts(&model, None).unwrap();
        for (_, v) in model.named_weights() {
            v.dispose();
        }
        artifacts
    }

    fn mlp_source(e: &Engine) -> ModelSource {
        ModelSource::Artifacts(mlp_artifacts(e))
    }

    fn graph_source(e: &Engine) -> ModelSource {
        let _ = e;
        let graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("mm", "MatMul", &["x", "w"]),
            ("probs", "Softmax", &["mm"]),
        ]);
        ModelSource::Graph {
            graph,
            weights: vec![("w".into(), vec![1.0, 0.0, 0.0, 1.0], vec![2, 2])],
        }
    }

    #[test]
    fn serves_a_sequential_model() {
        let e = engine();
        let server = ModelServer::new(&e, ServeConfig::default());
        let key = server.register(mlp_source(&e));
        let resp = server.infer(key, vec![0.5, -0.5, 1.0, 0.0], vec![4]).unwrap();
        assert_eq!(resp.dims, vec![3]);
        assert!((resp.values.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn serves_a_graph_model() {
        let e = engine();
        let server = ModelServer::new(&e, ServeConfig::default());
        let key = server.register(graph_source(&e));
        let resp = server.infer(key, vec![3.0, 1.0], vec![2]).unwrap();
        assert_eq!(resp.dims, vec![2]);
        assert!(resp.values[0] > resp.values[1]);
    }

    #[test]
    fn batched_and_single_answers_match() {
        let e = engine();
        let artifacts = mlp_artifacts(&e);
        // Force per-request execution for the reference answers.
        let single = ModelServer::new(&e, ServeConfig { max_batch: 1, ..Default::default() });
        let key1 = single.register(ModelSource::Artifacts(artifacts.clone()));
        let examples: Vec<Vec<f32>> =
            (0..12).map(|i| (0..4).map(|j| ((i * 4 + j) as f32 * 0.3).sin()).collect()).collect();
        let reference: Vec<InferResponse> = examples
            .iter()
            .map(|ex| single.infer(key1, ex.clone(), vec![4]).unwrap())
            .collect();
        drop(single);

        let batched = ModelServer::new(
            &e,
            ServeConfig { max_batch: 8, max_wait: Duration::from_millis(20), ..Default::default() },
        );
        let key2 = batched.register(ModelSource::Artifacts(artifacts));
        assert_eq!(key1, key2, "same content hashes to the same key");
        let pending: Vec<PendingInference> =
            examples.iter().map(|ex| batched.submit(key2, ex.clone(), vec![4])).collect();
        let got: Vec<InferResponse> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(a.dims, b.dims);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert!((x - y).abs() < 1e-5, "batched must match single: {x} vs {y}");
            }
        }
        let stats = batched.stats();
        assert!(stats.batches >= 1, "at least one coalesced pass: {stats:?}");
        assert_eq!(stats.served, 12);
    }

    #[test]
    fn mixed_shapes_degrade_to_separate_groups() {
        let e = engine();
        let server = ModelServer::new(
            &e,
            ServeConfig { max_batch: 8, max_wait: Duration::from_millis(20), ..Default::default() },
        );
        let mlp = server.register(mlp_source(&e));
        let graph = server.register(graph_source(&e));
        let a = server.submit(mlp, vec![1.0, 2.0, 3.0, 4.0], vec![4]);
        let b = server.submit(graph, vec![1.0, 0.0], vec![2]);
        let c = server.submit(mlp, vec![0.0; 4], vec![4]);
        assert_eq!(a.wait().unwrap().dims, vec![3]);
        assert_eq!(b.wait().unwrap().dims, vec![2]);
        assert_eq!(c.wait().unwrap().dims, vec![3]);
    }

    #[test]
    fn bad_requests_error_without_wedging_the_server() {
        let e = engine();
        let server = ModelServer::new(&e, ServeConfig::default());
        let key = server.register(mlp_source(&e));
        assert!(server.infer(key, vec![1.0], vec![4]).is_err(), "length/dims mismatch");
        assert!(server.infer(0xdead, vec![1.0; 4], vec![4]).is_err(), "unknown key");
        // Server still serves.
        assert!(server.infer(key, vec![0.0; 4], vec![4]).is_ok());
    }

    #[test]
    fn lru_eviction_releases_weight_bytes() {
        let e = engine();
        let mut server = ModelServer::new(
            &e,
            ServeConfig { cache_capacity: 1, ..Default::default() },
        );
        let mlp = server.register(mlp_source(&e));
        let graph = server.register(graph_source(&e));
        let baseline = e.memory().num_bytes;
        server.infer(mlp, vec![0.0; 4], vec![4]).unwrap();
        let with_mlp = e.memory().num_bytes;
        assert!(with_mlp > baseline, "warm model holds weight bytes");
        // Loading the second model evicts the first: its weights go away.
        server.infer(graph, vec![1.0, 0.0], vec![2]).unwrap();
        let with_graph = e.memory().num_bytes;
        assert!(with_graph < with_mlp, "eviction released the MLP weights");
        let stats_bytes = with_graph - baseline;
        assert_eq!(stats_bytes, 16, "graph model keeps exactly its 2x2 f32 weight");
        server.shutdown();
        assert_eq!(e.memory().num_bytes, baseline, "shutdown releases the cache");
        assert!(server.stats().cache_evictions >= 1);
    }

    #[test]
    fn graph_requests_hit_warm_plans() {
        let e = engine();
        let mut server = ModelServer::new(&e, ServeConfig::default());
        // The placeholder declares its per-example shape, so the cache
        // pre-warms execution plans for batch 1 and `max_batch` at build
        // time — the first request should already ride a warm plan.
        let mut graph = GraphDef::from_triples(&[
            ("x", "Placeholder", &[]),
            ("w", "VariableV2", &[]),
            ("mm", "MatMul", &["x", "w"]),
            ("probs", "Softmax", &["mm"]),
        ]);
        graph.nodes[0].attrs = serde_json::json!({ "shape": [1, 2] });
        let key = server.register(ModelSource::Graph {
            graph,
            weights: vec![("w".into(), vec![1.0, 0.0, 0.0, 1.0], vec![2, 2])],
        });
        let resp = server.infer(key, vec![3.0, 1.0], vec![2]).unwrap();
        assert!(resp.values[0] > resp.values[1]);
        server.shutdown();
        let stats = server.stats();
        assert!(stats.plan_hits >= 1, "request rides a pre-warmed plan: {stats:?}");
        assert!(stats.plan_misses >= 2, "batch-1 and max-batch plans compiled: {stats:?}");
        assert_eq!(stats.plan_fallbacks, 0, "no interpreter fallbacks: {stats:?}");
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let e = engine();
        let mut server = ModelServer::new(&e, ServeConfig::default());
        let key = server.register(mlp_source(&e));
        server.shutdown();
        assert!(server.infer(key, vec![0.0; 4], vec![4]).is_err());
    }
}
