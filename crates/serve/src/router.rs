//! SLO-aware fleet serving: one front door over N engines on heterogeneous
//! device profiles.
//!
//! The paper's deployment story (Sec 5) is a *fleet* problem in disguise:
//! the same model runs on an integrated laptop GPU, a discrete desktop GPU,
//! and a throttled phone, and the system has to keep its latency promises
//! on all of them while devices straggle, lose their context, and recover.
//! [`FleetServer`] reproduces the server-side version of that story:
//!
//! - **Deadlines.** Every model registers a [`ModelSlo`]; every request
//!   carries a deadline. Expired requests are rejected at dequeue with an
//!   explicit [`ServeError::DeadlineExceeded`] instead of occupying batch
//!   slots that on-time requests could use.
//! - **Admission control.** At enqueue, the router consults a per-engine
//!   cost model (queue depth × observed per-request latency, tracked by
//!   [`EngineHealth`](crate::health::EngineHealth)) and sheds requests that
//!   are predicted to miss their deadline anyway —
//!   [`ServeError::Overloaded`] — or that would overflow the hard queue cap
//!   — [`ServeError::QueueFull`]. Overload produces explicit errors, never
//!   silent queue growth.
//! - **Circuit breaking.** Each engine has a
//!   [`CircuitBreaker`](crate::health::CircuitBreaker): repeated execution
//!   failures, SLO-blowing stragglers, or a backend degradation (the PR-1
//!   ladder falling off its preferred backend, observed via
//!   `Engine::degradation_generation`) trip the engine out of rotation.
//!   Queued work on a tripped engine is drained and transparently
//!   re-routed. A maintenance thread then probes the engine with canary
//!   requests — after invoking its recovery hook (e.g. WebGL context
//!   restore) and `Engine::promote_backend` — and re-admits it once
//!   canaries pass on the preferred backend.
//! - **Placement.** Heavy models (by weight bytes) prefer engines with a
//!   high device-parallelism class; tiny MLPs go wherever the predicted
//!   wait is shortest.
//!
//! Each engine gets its own worker thread with its own deadline queue and
//! its own warm-model [`ModelCache`] — the single-engine micro-batching
//! semantics of [`ModelServer`](crate::ModelServer) are preserved within
//! each engine.

use parking_lot::{Condvar, Mutex};
use serde_json::json;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use webml_core::{Engine, Shape};
use webml_telemetry as telemetry;
use webml_telemetry::{
    Histogram, HistogramSummary, PhaseStamps, RequestCtx, RequestOutcome, RequestTimeline,
};

use crate::cache::{ModelCache, ModelKey, ModelSource};
use crate::error::ServeError;
use crate::health::{BreakerConfig, BreakerSnapshot, CircuitBreaker, EngineHealth};
use crate::obs;
use crate::{chunked, read_rows, InferResponse, WindowPolicy};

/// Result type for fleet requests: an inference response or an explicit,
/// typed refusal.
pub type FleetResult<T> = std::result::Result<T, ServeError>;

/// An engine's recovery hook, invoked by the maintenance thread before
/// canary-probing a tripped engine (e.g. `WebGlBackend::recover_context`).
/// Returns whether recovery succeeded; a `false` fails the probe early.
pub type RecoverHook = Arc<dyn Fn() -> bool + Send + Sync>;

/// Latency objectives for one registered model.
#[derive(Debug, Clone)]
pub struct ModelSlo {
    /// Target per-request service latency, milliseconds. Execution slower
    /// than `target_ms × BreakerConfig::timeout_slo_multiple` counts as a
    /// timeout toward tripping the engine's breaker.
    pub target_ms: f64,
    /// Default end-to-end deadline budget for this model's requests.
    pub deadline: Duration,
}

impl Default for ModelSlo {
    fn default() -> ModelSlo {
        ModelSlo { target_ms: 5.0, deadline: Duration::from_millis(50) }
    }
}

impl ModelSlo {
    /// An SLO with the given latency target and deadline budget.
    pub fn new(target_ms: f64, deadline: Duration) -> ModelSlo {
        ModelSlo { target_ms, deadline }
    }
}

/// One engine in the fleet: an [`Engine`] plus its device placement class
/// and optional recovery hook.
pub struct EngineSpec {
    /// Display name (unique within the fleet; used by the drain hooks and
    /// in [`EngineStatus`]).
    pub name: String,
    /// The engine. Its backend priority table (PR-1 ladder) stays in
    /// charge of intra-engine degradation; the fleet reacts to the
    /// degradation *generation* it exposes.
    pub engine: Engine,
    /// Device parallelism class (e.g. the simulated device profile's
    /// `parallelism`); engines at or above
    /// [`FleetConfig::fast_parallelism`] are preferred for heavy models.
    pub parallelism: usize,
    /// Recovery hook invoked before canary-probing a tripped engine.
    pub recover: Option<RecoverHook>,
}

impl EngineSpec {
    /// A spec with no recovery hook.
    pub fn new(name: impl Into<String>, engine: &Engine, parallelism: usize) -> EngineSpec {
        EngineSpec { name: name.into(), engine: engine.clone(), parallelism, recover: None }
    }

    /// Attach a recovery hook (builder style).
    pub fn with_recover_hook(mut self, hook: RecoverHook) -> EngineSpec {
        self.recover = Some(hook);
        self
    }
}

/// Fleet-wide tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Largest coalesced batch per forward pass on each engine.
    pub max_batch: usize,
    /// How long an engine worker holds the first queued request open for
    /// batch-mates.
    pub max_wait: Duration,
    /// Shrink the batch window toward zero when an engine's queue is
    /// shallow (same policy as the single-engine server).
    pub adaptive_window: bool,
    /// Warm models kept resident per engine.
    pub cache_capacity: usize,
    /// Hard cap on each engine's queue; admission beyond it sheds with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Admission slack: shed with [`ServeError::Overloaded`] when the best
    /// engine's predicted wait exceeds `slack × deadline budget`.
    pub admission_slack: f64,
    /// Engines with device parallelism at or above this are the "fast"
    /// class preferred for heavy models.
    pub fast_parallelism: usize,
    /// Models with at least this many weight bytes prefer fast engines.
    pub heavy_model_bytes: usize,
    /// Re-route attempts for a request whose execution failed before the
    /// failure is surfaced as [`ServeError::Engine`].
    pub max_reroutes: u32,
    /// Circuit-breaker tuning, shared by every engine.
    pub breaker: BreakerConfig,
    /// Poll interval of the maintenance thread (canary scheduling).
    pub maintenance_interval: Duration,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            adaptive_window: true,
            cache_capacity: 4,
            queue_capacity: 512,
            admission_slack: 1.0,
            fast_parallelism: 8,
            heavy_model_bytes: 256 * 1024,
            max_reroutes: 2,
            breaker: BreakerConfig::default(),
            maintenance_interval: Duration::from_millis(2),
        }
    }
}

/// Per-engine view in [`FleetStats`].
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// Engine name.
    pub name: String,
    /// Device parallelism class.
    pub parallelism: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Requests this engine executed (including failed executions).
    pub completed: u64,
    /// Engine-wide observed per-request latency, milliseconds.
    pub ewma_ms: f64,
    /// Backend degradations observed (generation changes).
    pub degradations: u64,
    /// Whether the engine is administratively draining.
    pub draining: bool,
    /// Circuit-breaker snapshot.
    pub breaker: BreakerSnapshot,
}

/// Lifetime fleet counters. The outcome counters partition `submitted`:
/// every submitted request is eventually counted in exactly one of
/// `completed`, `rejected`, `deadline_rejected`, `shed_overloaded`,
/// `shed_queue_full`, `shed_no_engine`, `engine_errors`, or
/// `shutdown_rejected` (see [`FleetStats::accounted`]).
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Requests submitted (including ones later refused).
    pub submitted: u64,
    /// Requests answered with an inference result.
    pub completed: u64,
    /// Malformed requests (unknown model, shape mismatch at submit).
    pub rejected: u64,
    /// Requests whose deadline expired in queue (explicit
    /// [`ServeError::DeadlineExceeded`]).
    pub deadline_rejected: u64,
    /// Requests shed at admission because the predicted wait exceeded the
    /// deadline budget.
    pub shed_overloaded: u64,
    /// Requests shed at the hard queue cap.
    pub shed_queue_full: u64,
    /// Requests shed because no engine admitted work.
    pub shed_no_engine: u64,
    /// Requests that surfaced an engine execution error after re-route
    /// attempts were exhausted.
    pub engine_errors: u64,
    /// Requests refused because the fleet was shutting down.
    pub shutdown_rejected: u64,
    /// Re-route attempts (execution failures and breaker-trip drains).
    pub rerouted: u64,
    /// Canary probes launched against tripped engines.
    pub probes: u64,
    /// Canary probes that failed.
    pub probe_failures: u64,
    /// Warm-up executions performed by [`FleetServer::warm`].
    pub warmups: u64,
    /// Circuit-breaker trips, summed over engines.
    pub breaker_trips: u64,
    /// Circuit-breaker re-closes (engine re-admissions), summed.
    pub breaker_recloses: u64,
    /// Backend degradations observed, summed over engines.
    pub degradations: u64,
    /// End-to-end latency of completed requests, milliseconds.
    pub latency_ms: HistogramSummary,
    /// Queue wait of executed requests, milliseconds.
    pub queue_wait_ms: HistogramSummary,
    /// Per-engine detail.
    pub engines: Vec<EngineStatus>,
}

impl FleetStats {
    /// Total explicit load sheds (overload + queue cap + no engine).
    pub fn total_shed(&self) -> u64 {
        self.shed_overloaded + self.shed_queue_full + self.shed_no_engine
    }

    /// Sum of all outcome counters; equals `submitted` once the fleet is
    /// idle (every request has exactly one outcome).
    pub fn accounted(&self) -> u64 {
        self.completed
            + self.rejected
            + self.deadline_rejected
            + self.total_shed()
            + self.engine_errors
            + self.shutdown_rejected
    }
}

#[derive(Default)]
struct FleetCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_rejected: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_no_engine: AtomicU64,
    engine_errors: AtomicU64,
    shutdown_rejected: AtomicU64,
    rerouted: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    warmups: AtomicU64,
}

#[derive(Clone)]
struct Registration {
    source: Arc<ModelSource>,
    slo: ModelSlo,
    heavy: bool,
}

struct FleetRequest {
    key: ModelKey,
    values: Vec<f32>,
    dims: Vec<usize>,
    reply: mpsc::Sender<FleetResult<InferResponse>>,
    enqueued: Instant,
    deadline: Instant,
    budget: Duration,
    reroutes: u32,
    /// Request-scoped trace context + phase timeline, minted at submit.
    tl: RequestTimeline,
}

enum WorkItem {
    Request(FleetRequest),
    /// A canary/warm-up execution: runs through the worker's cache even
    /// when the breaker is open, replying only success/failure.
    Probe {
        key: ModelKey,
        values: Vec<f32>,
        dims: Vec<usize>,
        reply: mpsc::Sender<bool>,
    },
}

struct WorkerQueue {
    items: VecDeque<WorkItem>,
    shutdown: bool,
}

struct EngineState {
    name: String,
    engine: Engine,
    parallelism: usize,
    recover: Option<RecoverHook>,
    health: EngineHealth,
    breaker: CircuitBreaker,
    queue: Mutex<WorkerQueue>,
    available: Condvar,
    draining: AtomicBool,
    degradations: AtomicU64,
}

/// A canary example: flattened values plus per-example dims.
type Sample = (Vec<f32>, Vec<usize>);

struct FleetShared {
    config: FleetConfig,
    engines: Vec<Arc<EngineState>>,
    models: Mutex<HashMap<ModelKey, Registration>>,
    /// First example seen per model, kept for canary probes.
    samples: Mutex<HashMap<ModelKey, Sample>>,
    stats: FleetCells,
    latency_ms: Histogram,
    queue_wait_ms: Histogram,
    shutdown: AtomicBool,
}

/// A handle to an in-flight [`FleetServer::submit`] request.
pub struct FleetPending {
    rx: mpsc::Receiver<FleetResult<InferResponse>>,
}

impl FleetPending {
    /// Block until the response (or explicit refusal) arrives.
    ///
    /// # Errors
    /// Propagates the typed [`ServeError`]; a fleet that shut down without
    /// replying yields [`ServeError::Shutdown`].
    pub fn wait(self) -> FleetResult<InferResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// The fleet front end: N engines, one API. See the module docs for the
/// admission → queue → batch → circuit-break pipeline.
pub struct FleetServer {
    shared: Arc<FleetShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    maintenance: Option<std::thread::JoinHandle<()>>,
}

impl FleetServer {
    /// Start a fleet over the given engines.
    ///
    /// # Panics
    /// Panics when `specs` is empty — a fleet needs at least one engine.
    pub fn new(specs: Vec<EngineSpec>, config: FleetConfig) -> FleetServer {
        assert!(!specs.is_empty(), "a fleet needs at least one engine");
        let engines: Vec<Arc<EngineState>> = specs
            .into_iter()
            .map(|spec| {
                Arc::new(EngineState {
                    health: EngineHealth::new(spec.engine.degradation_generation()),
                    breaker: CircuitBreaker::new(config.breaker.clone()),
                    queue: Mutex::new(WorkerQueue { items: VecDeque::new(), shutdown: false }),
                    available: Condvar::new(),
                    draining: AtomicBool::new(false),
                    degradations: AtomicU64::new(0),
                    name: spec.name,
                    engine: spec.engine,
                    parallelism: spec.parallelism,
                    recover: spec.recover,
                })
            })
            .collect();
        let shared = Arc::new(FleetShared {
            config,
            engines,
            models: Mutex::new(HashMap::new()),
            samples: Mutex::new(HashMap::new()),
            stats: FleetCells::default(),
            latency_ms: Histogram::new(),
            queue_wait_ms: Histogram::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.engines.len())
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("webml-fleet-{}", shared.engines[idx].name))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn fleet worker")
            })
            .collect();
        let maint = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("webml-fleet-maintenance".into())
                .spawn(move || maintenance_loop(&shared))
                .expect("spawn fleet maintenance thread")
        };
        FleetServer { shared, workers, maintenance: Some(maint) }
    }

    /// Register a model with its SLO; returns the key clients submit
    /// against (content hash, deduplicated).
    pub fn register(&self, source: ModelSource, slo: ModelSlo) -> ModelKey {
        let key = source.key();
        let heavy = source.cost_bytes() >= self.shared.config.heavy_model_bytes;
        self.shared
            .models
            .lock()
            .entry(key)
            .or_insert_with(|| Registration { source: Arc::new(source), slo, heavy });
        key
    }

    /// Enqueue one inference under the model's registered deadline.
    pub fn submit(&self, key: ModelKey, values: Vec<f32>, dims: Vec<usize>) -> FleetPending {
        let budget = self.shared.models.lock().get(&key).map(|r| r.slo.deadline);
        self.submit_inner(key, values, dims, budget)
    }

    /// Enqueue one inference with an explicit deadline budget overriding
    /// the model's registered one.
    pub fn submit_with_deadline(
        &self,
        key: ModelKey,
        values: Vec<f32>,
        dims: Vec<usize>,
        deadline: Duration,
    ) -> FleetPending {
        let registered = self.shared.models.lock().contains_key(&key);
        self.submit_inner(key, values, dims, registered.then_some(deadline))
    }

    fn submit_inner(
        &self,
        key: ModelKey,
        values: Vec<f32>,
        dims: Vec<usize>,
        budget: Option<Duration>,
    ) -> FleetPending {
        let shared = &self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let budget_or_zero = budget.unwrap_or(Duration::ZERO);
        let ctx = RequestCtx::mint();
        let mut tl = RequestTimeline::new(ctx.trace_id, ctx.parent_span, key);
        tl.submitted_ns = telemetry::now_ns();
        let req = FleetRequest {
            key,
            values,
            dims,
            reply: tx,
            enqueued: now,
            deadline: now + budget_or_zero,
            budget: budget_or_zero,
            reroutes: 0,
            tl,
        };
        let expected: usize = req.dims.iter().product();
        if budget.is_none() {
            reply_err(shared, req, ServeError::Rejected(format!("unknown model key {key:#x}")));
            return FleetPending { rx };
        }
        if req.dims.is_empty() || expected != req.values.len() {
            let msg = format!("example of {} values does not match dims {:?}", req.values.len(), req.dims);
            reply_err(shared, req, ServeError::Rejected(msg));
            return FleetPending { rx };
        }
        // Capture one sample per model for canary probes.
        {
            let mut samples = shared.samples.lock();
            samples
                .entry(key)
                .or_insert_with(|| (req.values.clone(), req.dims.clone()));
        }
        route_request(shared, req, None, false);
        FleetPending { rx }
    }

    /// Blocking inference: [`FleetServer::submit`] + wait.
    ///
    /// # Errors
    /// Propagates the typed [`ServeError`].
    pub fn infer(&self, key: ModelKey, values: Vec<f32>, dims: Vec<usize>) -> FleetResult<InferResponse> {
        self.submit(key, values, dims).wait()
    }

    /// Warm-up hook: build and execute `key` once on every engine (through
    /// each worker's [`ModelCache`]), so first real traffic skips model
    /// build and weight upload. Returns how many engines warmed
    /// successfully. Also records the example as the model's canary sample.
    pub fn warm(&self, key: ModelKey, values: Vec<f32>, dims: Vec<usize>) -> usize {
        let shared = &self.shared;
        if !shared.models.lock().contains_key(&key) {
            return 0;
        }
        shared
            .samples
            .lock()
            .entry(key)
            .or_insert_with(|| (values.clone(), dims.clone()));
        let mut receivers = Vec::new();
        for state in &shared.engines {
            let (tx, rx) = mpsc::channel();
            let mut q = state.queue.lock();
            if q.shutdown {
                continue;
            }
            q.items.push_back(WorkItem::Probe {
                key,
                values: values.clone(),
                dims: dims.clone(),
                reply: tx,
            });
            drop(q);
            state.available.notify_all();
            receivers.push(rx);
        }
        let mut ok = 0;
        for rx in receivers {
            if rx.recv_timeout(Duration::from_secs(5)).unwrap_or(false) {
                ok += 1;
                shared.stats.warmups.fetch_add(1, Ordering::Relaxed);
            }
        }
        ok
    }

    /// Drain hook: take the named engine out of rotation (admission stops
    /// immediately) and wait up to `timeout` for its queued and in-flight
    /// work to finish. Returns whether the engine fully drained (`false`
    /// also for an unknown name). Warm caches stay resident, so
    /// [`FleetServer::undrain_engine`] restores service without a rebuild.
    pub fn drain_engine(&self, name: &str, timeout: Duration) -> bool {
        let Some(state) = self.shared.engines.iter().find(|s| s.name == name) else {
            return false;
        };
        state.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        while state.health.queue_depth() + state.health.inflight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Return a drained engine to rotation. Returns `false` for an unknown
    /// name.
    pub fn undrain_engine(&self, name: &str) -> bool {
        match self.shared.engines.iter().find(|s| s.name == name) {
            Some(state) => {
                state.draining.store(false, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Snapshot of the lifetime fleet counters.
    pub fn stats(&self) -> FleetStats {
        let s = &self.shared.stats;
        let engines: Vec<EngineStatus> = self
            .shared
            .engines
            .iter()
            .map(|e| EngineStatus {
                name: e.name.clone(),
                parallelism: e.parallelism,
                queue_depth: e.health.queue_depth(),
                completed: e.health.completed(),
                ewma_ms: e.health.ewma_ms(),
                degradations: e.degradations.load(Ordering::Relaxed),
                draining: e.draining.load(Ordering::Relaxed),
                breaker: e.breaker.snapshot(),
            })
            .collect();
        FleetStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            deadline_rejected: s.deadline_rejected.load(Ordering::Relaxed),
            shed_overloaded: s.shed_overloaded.load(Ordering::Relaxed),
            shed_queue_full: s.shed_queue_full.load(Ordering::Relaxed),
            shed_no_engine: s.shed_no_engine.load(Ordering::Relaxed),
            engine_errors: s.engine_errors.load(Ordering::Relaxed),
            shutdown_rejected: s.shutdown_rejected.load(Ordering::Relaxed),
            rerouted: s.rerouted.load(Ordering::Relaxed),
            probes: s.probes.load(Ordering::Relaxed),
            probe_failures: s.probe_failures.load(Ordering::Relaxed),
            warmups: s.warmups.load(Ordering::Relaxed),
            breaker_trips: engines.iter().map(|e| e.breaker.trips).sum(),
            breaker_recloses: engines.iter().map(|e| e.breaker.recloses).sum(),
            degradations: engines.iter().map(|e| e.degradations).sum(),
            latency_ms: self.shared.latency_ms.summary(),
            queue_wait_ms: self.shared.queue_wait_ms.summary(),
            engines,
        }
    }

    /// Stop accepting requests, finish every engine's queue, and join all
    /// threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Maintenance first: it may be waiting on a canary the workers must
        // still serve.
        if let Some(handle) = self.maintenance.take() {
            let _ = handle.join();
        }
        for state in &self.shared.engines {
            state.queue.lock().shutdown = true;
            state.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reply with an error, counting it in exactly one outcome bucket. Load
/// sheds also fire the flight recorder with a lazy fleet snapshot, so a
/// postmortem sees queue depths, breaker states, and the recent request
/// ring exactly as they were when the shed happened.
fn reply_err(shared: &FleetShared, mut req: FleetRequest, err: ServeError) {
    let s = &shared.stats;
    let outcome = match &err {
        ServeError::DeadlineExceeded { waited_ms, budget_ms } => {
            s.deadline_rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("fleet.deadline_exceeded").inc();
            telemetry::instant("fleet.deadline_exceeded", "serve");
            telemetry::flight::transition(
                "deadline_exceeded",
                format!("waited {waited_ms:.2} ms of {budget_ms:.2} ms budget"),
            );
            RequestOutcome::DeadlineExceeded
        }
        ServeError::Overloaded { predicted_wait_ms, budget_ms } => {
            s.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("fleet.shed").inc();
            telemetry::instant("fleet.shed", "serve");
            telemetry::flight::notify(
                "shed",
                format!(
                    "overloaded: predicted wait {predicted_wait_ms:.2} ms exceeds budget {budget_ms:.2} ms"
                ),
                || fleet_snapshot_context(shared),
            );
            RequestOutcome::Shed
        }
        ServeError::QueueFull { capacity } => {
            s.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("fleet.shed").inc();
            telemetry::instant("fleet.shed", "serve");
            telemetry::flight::notify(
                "shed",
                format!("queue full at capacity {capacity}"),
                || fleet_snapshot_context(shared),
            );
            RequestOutcome::Shed
        }
        ServeError::NoHealthyEngine => {
            s.shed_no_engine.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("fleet.shed").inc();
            telemetry::instant("fleet.shed", "serve");
            telemetry::flight::notify(
                "shed",
                "no healthy engine".to_owned(),
                || fleet_snapshot_context(shared),
            );
            RequestOutcome::Shed
        }
        ServeError::Rejected(_) => {
            s.rejected.fetch_add(1, Ordering::Relaxed);
            RequestOutcome::Rejected
        }
        ServeError::Engine(_) => {
            s.engine_errors.fetch_add(1, Ordering::Relaxed);
            RequestOutcome::Error
        }
        ServeError::Shutdown => {
            s.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
            RequestOutcome::Rejected
        }
    };
    obs::finish_request(&mut req.tl, outcome, 0, 0);
    let _ = req.reply.send(Err(err));
}

fn reply_ok(
    shared: &FleetShared,
    mut req: FleetRequest,
    resp: InferResponse,
    batch_size: u32,
    batch_trace: u64,
) {
    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
    shared.latency_ms.observe(req.enqueued.elapsed().as_secs_f64() * 1e3);
    obs::finish_request(&mut req.tl, RequestOutcome::Completed, batch_size, batch_trace);
    let _ = req.reply.send(Ok(resp));
    telemetry::instant("fleet.reply", "serve");
}

/// Fleet state at a moment of trouble, serialized for a flight-recorder
/// snapshot: per-engine queue depth, health EWMA, breaker state, and live
/// engine memory, plus the lifetime outcome counters.
fn fleet_snapshot_context(shared: &FleetShared) -> serde_json::Value {
    let engines: Vec<serde_json::Value> = shared
        .engines
        .iter()
        .map(|e| {
            let b = e.breaker.snapshot();
            let mem = e.engine.memory();
            json!({
                "name": e.name.clone(),
                "parallelism": e.parallelism,
                "queue_depth": e.health.queue_depth(),
                "completed": e.health.completed(),
                "ewma_ms": e.health.ewma_ms(),
                "degradations": e.degradations.load(Ordering::Relaxed),
                "draining": e.draining.load(Ordering::Relaxed),
                "breaker": {
                    "state": format!("{:?}", b.state),
                    "trips": b.trips,
                    "recloses": b.recloses,
                    "last_trip_reason": b.last_trip_reason.clone().unwrap_or_default(),
                },
                "memory": {
                    "num_tensors": mem.num_tensors,
                    "num_bytes": mem.num_bytes,
                    "current_backend": mem.current_backend.clone(),
                    "degradations": mem.degradations,
                },
            })
        })
        .collect();
    let s = &shared.stats;
    json!({
        "submitted": s.submitted.load(Ordering::Relaxed),
        "completed": s.completed.load(Ordering::Relaxed),
        "shed_overloaded": s.shed_overloaded.load(Ordering::Relaxed),
        "shed_queue_full": s.shed_queue_full.load(Ordering::Relaxed),
        "shed_no_engine": s.shed_no_engine.load(Ordering::Relaxed),
        "deadline_rejected": s.deadline_rejected.load(Ordering::Relaxed),
        "engine_errors": s.engine_errors.load(Ordering::Relaxed),
        "rerouted": s.rerouted.load(Ordering::Relaxed),
        "engines": serde_json::Value::Array(engines),
    })
}

/// Pick an engine for a request: healthy (breaker closed, not draining),
/// placement-aware (heavy models prefer the fast-parallelism class),
/// cheapest by predicted wait, with the hard queue cap and — for fresh
/// requests only — the overload check applied.
fn pick_engine(
    shared: &FleetShared,
    key: ModelKey,
    heavy: bool,
    budget: Duration,
    exclude: Option<usize>,
    rerouted: bool,
) -> Result<usize, ServeError> {
    let cfg = &shared.config;
    let healthy: Vec<usize> = shared
        .engines
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            Some(*i) != exclude
                && s.breaker.admits()
                && !s.draining.load(Ordering::Relaxed)
        })
        .map(|(i, _)| i)
        .collect();
    if healthy.is_empty() {
        return Err(ServeError::NoHealthyEngine);
    }
    // Device-aware placement: big models want big devices — but a slow
    // answer beats no answer, so fall back to any healthy engine when the
    // whole fast class is out.
    let mut candidates: Vec<usize> = if heavy {
        healthy
            .iter()
            .copied()
            .filter(|&i| shared.engines[i].parallelism >= cfg.fast_parallelism)
            .collect()
    } else {
        healthy.clone()
    };
    if candidates.is_empty() {
        candidates = healthy;
    }
    candidates.retain(|&i| shared.engines[i].health.queue_depth() < cfg.queue_capacity);
    if candidates.is_empty() {
        return Err(ServeError::QueueFull { capacity: cfg.queue_capacity });
    }
    let best = candidates
        .into_iter()
        .min_by_key(|&i| shared.engines[i].health.predicted_wait_ns(key))
        .expect("non-empty candidate set");
    let predicted_ns = shared.engines[best].health.predicted_wait_ns(key);
    // Re-routed requests were already admitted: their contract is "an
    // answer or an explicit deadline error", so they skip the overload
    // check and let deadline enforcement at dequeue settle it.
    if !rerouted && predicted_ns as f64 > budget.as_nanos() as f64 * cfg.admission_slack {
        return Err(ServeError::Overloaded {
            predicted_wait_ms: predicted_ns as f64 / 1e6,
            budget_ms: budget.as_secs_f64() * 1e3,
        });
    }
    Ok(best)
}

/// Admit (or shed) a request: pick an engine and enqueue, replying with the
/// typed refusal otherwise.
fn route_request(
    shared: &FleetShared,
    mut req: FleetRequest,
    exclude: Option<usize>,
    rerouted: bool,
) {
    if rerouted {
        req.reroutes += 1;
        shared.stats.rerouted.fetch_add(1, Ordering::Relaxed);
        telemetry::counter("fleet.rerouted").inc();
        // Backstop against breaker-flap ping-pong: a request can visit each
        // engine at most once beyond its error-reroute budget.
        if req.reroutes > shared.config.max_reroutes + shared.engines.len() as u32 {
            reply_err(shared, req, ServeError::NoHealthyEngine);
            return;
        }
    }
    let heavy = shared.models.lock().get(&req.key).map(|r| r.heavy).unwrap_or(false);
    match pick_engine(shared, req.key, heavy, req.budget, exclude, rerouted) {
        Ok(idx) => {
            let state = &shared.engines[idx];
            let mut q = state.queue.lock();
            if q.shutdown {
                drop(q);
                reply_err(shared, req, ServeError::Shutdown);
                return;
            }
            state.health.enqueued(1);
            // Admission is stamped once, on the first successful enqueue —
            // re-routes keep the original admission time so queue-phase
            // attribution includes time lost to breaker-trip ping-pong.
            if req.tl.admitted_ns == 0 {
                req.tl.admitted_ns = telemetry::now_ns();
            }
            {
                // Inside the lock, before the push: once the request is
                // visible the worker may drain and reply at any moment, and
                // this marker must fall inside the request envelope.
                let _scope = telemetry::trace_scope(req.tl.trace_id);
                telemetry::instant("serve.enqueue", "serve");
            }
            q.items.push_back(WorkItem::Request(req));
            drop(q);
            state.available.notify_all();
        }
        Err(e) => reply_err(shared, req, e),
    }
}

/// A breaker trip: drain the tripped engine's queued requests and re-route
/// them to the rest of the fleet. In-flight work finishes normally.
fn on_trip(shared: &FleetShared, idx: usize) {
    let state = &shared.engines[idx];
    telemetry::counter("fleet.breaker_trips").inc();
    telemetry::instant("fleet.breaker_trip", "serve");
    let reason = state
        .breaker
        .snapshot()
        .last_trip_reason
        .unwrap_or_else(|| "breaker tripped".to_owned());
    telemetry::flight::notify(
        "breaker_trip",
        format!("engine {} tripped: {reason}", state.name),
        || fleet_snapshot_context(shared),
    );
    let requests: Vec<FleetRequest> = {
        let mut q = state.queue.lock();
        let mut keep = VecDeque::new();
        let mut out = Vec::new();
        for item in q.items.drain(..) {
            match item {
                WorkItem::Request(r) => out.push(r),
                probe => keep.push_back(probe),
            }
        }
        q.items = keep;
        out
    };
    state.health.drained(requests.len(), 0);
    for req in requests {
        route_request(shared, req, Some(idx), true);
    }
}

/// Context for executing one (model, dims) group on one engine.
struct GroupCtx<'a> {
    key: ModelKey,
    dims: &'a [usize],
    target_ms: f64,
    source: &'a ModelSource,
}

fn worker_loop(shared: &Arc<FleetShared>, idx: usize) {
    let state = shared.engines[idx].clone();
    let mut cache =
        ModelCache::new(shared.config.cache_capacity, shared.config.max_batch, &state.engine);
    let mut window = WindowPolicy::new(shared.config.adaptive_window);
    loop {
        let drained: Vec<WorkItem> = {
            let mut q = state.queue.lock();
            while q.items.is_empty() && !q.shutdown {
                state.available.wait(&mut q);
            }
            if q.items.is_empty() && q.shutdown {
                break;
            }
            if window.should_wait(q.items.len()) {
                // As in the single-engine dispatcher: wait only for the
                // observed concurrency's worth of batch-mates.
                let target = window.target_batch(shared.config.max_batch);
                let deadline = Instant::now() + shared.config.max_wait;
                while q.items.len() < target && !q.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if state.available.wait_for(&mut q, deadline - now).timed_out() {
                        break;
                    }
                }
            }
            q.items.drain(..).collect()
        };
        window.observe_drain(drained.len());

        // Degradation watch: the engine fell off its preferred backend
        // since the last drain (e.g. context loss absorbed by the PR-1
        // ladder). Cached models rebuild on the fallback; the breaker
        // decides whether the engine leaves rotation.
        let generation = state.engine.degradation_generation();
        if state.health.generation_changed(generation) {
            state.degradations.fetch_add(1, Ordering::Relaxed);
            cache.check_degradation(&state.engine);
            telemetry::counter("fleet.degradations").inc();
            telemetry::flight::notify(
                "degradation",
                format!("engine {} fell to generation {generation}", state.name),
                || fleet_snapshot_context(shared),
            );
            if state
                .breaker
                .record_degradation(&format!("backend degradation (generation {generation})"))
            {
                on_trip(shared, idx);
            }
        }

        let mut requests: Vec<FleetRequest> = Vec::new();
        let mut probes = Vec::new();
        for item in drained {
            match item {
                WorkItem::Request(r) => requests.push(r),
                WorkItem::Probe { key, values, dims, reply } => {
                    probes.push((key, values, dims, reply));
                }
            }
        }

        // Canaries and warm-ups run even when the breaker is open — that's
        // how a tripped engine proves it recovered.
        for (key, values, dims, reply) in probes {
            // Probes are requests too: a minted scope keeps any spans they
            // emit (e.g. `serve.model_build`) attributable in a trace.
            let _scope = telemetry::trace_scope(telemetry::next_trace_id());
            let source = shared.models.lock().get(&key).map(|r| r.source.clone());
            let ok = match source {
                Some(src) => exec_single(
                    &state.engine,
                    &mut cache,
                    key,
                    &src,
                    &values,
                    &dims,
                    &mut PhaseStamps::default(),
                )
                .is_ok(),
                None => false,
            };
            let _ = reply.send(ok);
        }

        // Deadline enforcement at dequeue: expired requests never occupy a
        // batch slot. A breaker that tripped while they queued re-routes
        // them instead of executing on a degraded engine.
        let admitting = state.breaker.admits();
        let now = Instant::now();
        let mut survivors: Vec<FleetRequest> = Vec::new();
        for mut req in requests {
            if now >= req.deadline {
                let err = ServeError::DeadlineExceeded {
                    waited_ms: req.enqueued.elapsed().as_secs_f64() * 1e3,
                    budget_ms: req.budget.as_secs_f64() * 1e3,
                };
                state.health.drained(1, 0);
                reply_err(shared, req, err);
            } else if !admitting {
                state.health.drained(1, 0);
                route_request(shared, req, Some(idx), true);
            } else {
                req.tl.drained_ns = telemetry::now_ns();
                survivors.push(req);
            }
        }
        state.health.drained(survivors.len(), survivors.len());
        for req in &survivors {
            shared.queue_wait_ms.observe(req.enqueued.elapsed().as_secs_f64() * 1e3);
        }

        // Group by (model, example dims) and micro-batch, exactly like the
        // single-engine server.
        type GroupKey = (ModelKey, Vec<usize>);
        let mut groups: Vec<(GroupKey, Vec<FleetRequest>)> = Vec::new();
        for req in survivors {
            let group_key = (req.key, req.dims.clone());
            match groups.iter_mut().find(|(k, _)| *k == group_key) {
                Some((_, members)) => members.push(req),
                None => groups.push((group_key, vec![req])),
            }
        }
        for ((key, dims), members) in groups {
            let registration = shared.models.lock().get(&key).cloned();
            let Some(reg) = registration else {
                state.health.aborted(members.len());
                for req in members {
                    let msg = format!("unknown model key {key:#x}");
                    reply_err(shared, req, ServeError::Rejected(msg));
                }
                continue;
            };
            let ctx = GroupCtx { key, dims: &dims, target_ms: reg.slo.target_ms, source: &reg.source };
            for chunk in chunked(members, shared.config.max_batch) {
                run_chunk(shared, idx, &mut cache, &ctx, chunk);
            }
        }
    }
    cache.invalidate_all();
}

/// Classify an execution outcome for the breaker: success resets the
/// failure streak; an SLO-blowing straggler counts as a timeout. Trips
/// drain-and-reroute the engine's queue.
fn note_execution(shared: &FleetShared, idx: usize, ctx: &GroupCtx, per_request_ns: u64) {
    let state = &shared.engines[idx];
    let per_ms = per_request_ns as f64 / 1e6;
    let limit = ctx.target_ms * state.breaker.config().timeout_slo_multiple;
    if per_ms > limit {
        let reason = format!("slow execution: {per_ms:.2} ms/request exceeds {limit:.2} ms");
        telemetry::counter("fleet.slo_timeouts").inc();
        if state.breaker.record_failure(&reason) {
            on_trip(shared, idx);
        }
    } else {
        state.breaker.record_success();
    }
}

fn run_chunk(
    shared: &FleetShared,
    idx: usize,
    cache: &mut ModelCache,
    ctx: &GroupCtx,
    chunk: Vec<FleetRequest>,
) {
    let state = &shared.engines[idx];
    let n = chunk.len();
    if n >= 2 {
        // Batch execution runs under its own trace context (a child of
        // whatever scope the worker holds); members keep their own ids and
        // link to the batch via `finish_request`'s envelope arg.
        let batch_ctx = obs::batch_ctx();
        let batch_scope = telemetry::trace_scope(batch_ctx.trace_id);
        let mut stamps = PhaseStamps { exec_start_ns: telemetry::now_ns(), ..Default::default() };
        let started = Instant::now();
        let batched = {
            let _span = telemetry::span("fleet.batch", "serve").with_arg("batch_size", n as f64);
            exec_batched(&state.engine, cache, ctx, &chunk, &mut stamps)
        };
        match batched {
            Ok(responses) => {
                let per_ns = (started.elapsed().as_nanos() as u64 / n as u64).max(1);
                state.health.observed(ctx.key, per_ns, n);
                note_execution(shared, idx, ctx, per_ns);
                for (mut req, resp) in chunk.into_iter().zip(responses) {
                    req.tl.apply_stamps(&stamps);
                    reply_ok(shared, req, resp, n as u32, batch_ctx.trace_id);
                }
                // Batch envelope: recorded after the replies so every
                // batch-scoped event nests inside it.
                telemetry::record_span_arg(
                    "serve.batch",
                    "serve",
                    stamps.exec_start_ns,
                    telemetry::now_ns(),
                    "batch_size",
                    n as f64,
                );
                drop(batch_scope);
                return;
            }
            Err(_) => {
                // Degrade to per-request execution; a stale model (e.g.
                // built on a now-dead backend) rebuilds on the retry.
                cache.invalidate(ctx.key);
                telemetry::instant("fleet.batch_fallback", "serve");
                telemetry::record_span(
                    "serve.batch",
                    "serve",
                    stamps.exec_start_ns,
                    telemetry::now_ns(),
                );
                drop(batch_scope);
            }
        }
    }
    for mut req in chunk {
        let _req_scope = telemetry::trace_scope(req.tl.trace_id);
        let mut stamps = PhaseStamps { exec_start_ns: telemetry::now_ns(), ..Default::default() };
        let started = Instant::now();
        let result = {
            let _span = telemetry::span("fleet.single", "serve");
            exec_single(
                &state.engine,
                cache,
                ctx.key,
                ctx.source,
                &req.values,
                &req.dims,
                &mut stamps,
            )
        };
        let ns = (started.elapsed().as_nanos() as u64).max(1);
        state.health.observed(ctx.key, ns, 1);
        match result {
            Ok(resp) => {
                note_execution(shared, idx, ctx, ns);
                req.tl.apply_stamps(&stamps);
                reply_ok(shared, req, resp, 1, 0);
            }
            Err(e) => {
                // Device-flavored failures count toward the breaker and get
                // re-routed; deterministic request problems (bad shape) are
                // the caller's — no breaker, no reroute, or one poison
                // request could trip the whole fleet.
                let device_fault = e.is_transient() || e.is_degradable();
                if device_fault {
                    let reason = format!("execution error: {e}");
                    if state.breaker.record_failure(&reason) {
                        on_trip(shared, idx);
                    }
                }
                if device_fault && req.reroutes < shared.config.max_reroutes {
                    route_request(shared, req, Some(idx), true);
                } else {
                    reply_err(shared, req, ServeError::Engine(e));
                }
            }
        }
    }
}

/// One coalesced forward pass on one engine (mirrors the single-engine
/// server's batching: concat host-side, run `[n, dims..]`, split rows).
fn exec_batched(
    engine: &Engine,
    cache: &mut ModelCache,
    ctx: &GroupCtx,
    chunk: &[FleetRequest],
    stamps: &mut PhaseStamps,
) -> webml_core::Result<Vec<InferResponse>> {
    let n = chunk.len();
    let per_len: usize = ctx.dims.iter().product();
    let mut data = Vec::with_capacity(n * per_len);
    for req in chunk {
        data.extend_from_slice(&req.values);
    }
    let mut batch_dims = vec![n];
    batch_dims.extend_from_slice(ctx.dims);
    let model = cache.get_or_load(engine, ctx.key, ctx.source)?;
    let x = engine.tensor(data, Shape::new(batch_dims))?;
    stamps.upload_end_ns = telemetry::now_ns();
    let y = match model.forward(engine, &x) {
        Ok(y) => y,
        Err(e) => {
            x.dispose();
            return Err(e);
        }
    };
    // Synchronous executor: compute and readback drain together inside
    // read_rows, so the compute boundary is the forward submission.
    stamps.compute_end_ns = telemetry::now_ns();
    let out = read_rows(&y, n);
    stamps.readback_end_ns = telemetry::now_ns();
    x.dispose();
    y.dispose();
    out
}

fn exec_single(
    engine: &Engine,
    cache: &mut ModelCache,
    key: ModelKey,
    source: &ModelSource,
    values: &[f32],
    dims: &[usize],
    stamps: &mut PhaseStamps,
) -> webml_core::Result<InferResponse> {
    let mut batch_dims = vec![1];
    batch_dims.extend_from_slice(dims);
    let model = cache.get_or_load(engine, key, source)?;
    let x = engine.tensor(values.to_vec(), Shape::new(batch_dims))?;
    stamps.upload_end_ns = telemetry::now_ns();
    let y = match model.forward(engine, &x) {
        Ok(y) => y,
        Err(e) => {
            x.dispose();
            return Err(e);
        }
    };
    stamps.compute_end_ns = telemetry::now_ns();
    let rows = read_rows(&y, 1);
    stamps.readback_end_ns = telemetry::now_ns();
    x.dispose();
    y.dispose();
    Ok(rows?.remove(0))
}

/// The maintenance loop: schedules recovery for tripped engines — recovery
/// hook, backend promotion, then a canary probe through the engine's own
/// worker. Enough consecutive canary passes re-close the breaker and
/// re-admit the engine.
fn maintenance_loop(shared: &Arc<FleetShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.maintenance_interval);
        for state in shared.engines.iter() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if state.breaker.admits() {
                continue;
            }
            // A canary needs an input: use the sample captured from this
            // model's first submission.
            let sample = {
                let samples = shared.samples.lock();
                samples.iter().next().map(|(k, (v, d))| (*k, v.clone(), d.clone()))
            };
            let Some((key, values, dims)) = sample else { continue };
            if !state.breaker.try_begin_probe() {
                continue;
            }
            shared.stats.probes.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("fleet.probes").inc();
            // Recovery first: restore the device (hook), then promote the
            // engine back to its preferred backend. `promote_backend` is
            // safe to call optimistically — a still-broken backend just
            // degrades again, which the canary check below catches.
            let recovered = match &state.recover {
                Some(hook) => hook(),
                None => true,
            };
            if !recovered {
                shared.stats.probe_failures.fetch_add(1, Ordering::Relaxed);
                state.breaker.probe_result(false);
                continue;
            }
            let _ = state.engine.promote_backend();
            let generation_before = state.engine.degradation_generation();
            let (tx, rx) = mpsc::channel();
            {
                let mut q = state.queue.lock();
                if q.shutdown {
                    state.breaker.probe_result(false);
                    return;
                }
                q.items.push_back(WorkItem::Probe { key, values, dims, reply: tx });
            }
            state.available.notify_all();
            let ran_ok = rx.recv_timeout(Duration::from_millis(500)).unwrap_or(false);
            // The PR-1 ladder makes almost any forward "succeed" by
            // degrading — a real recovery must succeed while *staying* on
            // the preferred backend.
            let ok = ran_ok
                && state.engine.degradation_generation() == generation_before
                && state.engine.backend_health().at_preferred;
            if !ok {
                shared.stats.probe_failures.fetch_add(1, Ordering::Relaxed);
            }
            if state.breaker.probe_result(ok) {
                // Re-admitted: the generation watch must not re-trip on the
                // degradations the probe cycle already acknowledged.
                state.health.generation_changed(state.engine.degradation_generation());
                telemetry::counter("fleet.breaker_recloses").inc();
                telemetry::instant("fleet.breaker_reclose", "serve");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webml_core::cpu::CpuBackend;
    use webml_layers::{Activation, Dense, Sequential};

    fn cpu_engine() -> Engine {
        let e = Engine::new();
        e.register_backend("cpu", Arc::new(CpuBackend::new()), 1);
        e
    }

    fn mlp_source(e: &Engine, seed: u64) -> ModelSource {
        let mut model = Sequential::new(e).with_seed(seed);
        model.add(Dense::new(8).with_input_dim(4).with_activation(Activation::Relu));
        model.add(Dense::new(3).with_activation(Activation::Softmax));
        model.build([4]).unwrap();
        let artifacts = webml_converter::to_artifacts(&model, None).unwrap();
        for (_, v) in model.named_weights() {
            v.dispose();
        }
        ModelSource::Artifacts(artifacts)
    }

    fn two_engine_fleet(config: FleetConfig) -> FleetServer {
        let specs = vec![
            EngineSpec::new("a", &cpu_engine(), 8),
            EngineSpec::new("b", &cpu_engine(), 8),
        ];
        FleetServer::new(specs, config)
    }

    #[test]
    fn fleet_routes_and_accounts() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        let pending: Vec<FleetPending> = (0..24)
            .map(|i| fleet.submit(key, vec![i as f32 * 0.1, 0.2, -0.3, 0.4], vec![4]))
            .collect();
        for p in pending {
            let resp = p.wait().unwrap();
            assert_eq!(resp.dims, vec![3]);
            assert!((resp.values.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
        let stats = fleet.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.accounted(), stats.submitted, "every request has one outcome: {stats:?}");
        assert_eq!(stats.engines.len(), 2);
        assert_eq!(stats.engines.iter().map(|e| e.completed).sum::<u64>(), 24);
    }

    #[test]
    fn unknown_model_and_bad_shapes_are_rejected() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        let err = fleet.infer(0xdead, vec![0.0; 4], vec![4]).unwrap_err();
        assert!(matches!(err, ServeError::Rejected(_)), "{err}");
        let err = fleet.infer(key, vec![0.0; 3], vec![4]).unwrap_err();
        assert!(matches!(err, ServeError::Rejected(_)), "{err}");
        assert!(fleet.infer(key, vec![0.0; 4], vec![4]).is_ok(), "fleet still serves");
        let stats = fleet.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn expired_deadline_is_an_explicit_error() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        let err = fleet
            .submit_with_deadline(key, vec![0.0; 4], vec![4], Duration::ZERO)
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
        let stats = fleet.stats();
        assert_eq!(stats.deadline_rejected, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn overload_sheds_explicitly_instead_of_queueing() {
        // A tiny queue cap plus a generous deadline: the burst overflows
        // the cap (explicit sheds) while every admitted request completes.
        let fleet = FleetServer::new(
            vec![EngineSpec::new("only", &cpu_engine(), 8)],
            FleetConfig { queue_capacity: 4, ..Default::default() },
        );
        let key = fleet
            .register(mlp_source(&cpu_engine(), 7), ModelSlo::new(1.0, Duration::from_secs(5)));
        // Warm first so the burst measures queueing, not cold model build.
        assert_eq!(fleet.warm(key, vec![0.1, 0.2, 0.3, 0.4], vec![4]), 1);
        let pending: Vec<FleetPending> =
            (0..256).map(|_| fleet.submit(key, vec![0.1, 0.2, 0.3, 0.4], vec![4])).collect();
        let mut ok = 0;
        let mut shed = 0;
        for p in pending {
            match p.wait() {
                Ok(_) => ok += 1,
                Err(e) if e.is_shed() => shed += 1,
                Err(e) => panic!("unexpected error under overload: {e}"),
            }
        }
        assert!(ok >= 1, "admitted requests are served");
        assert!(shed >= 1, "overload sheds explicitly");
        let stats = fleet.stats();
        assert_eq!(stats.total_shed(), shed);
        assert_eq!(stats.accounted(), stats.submitted, "{stats:?}");
    }

    #[test]
    fn admission_control_sheds_on_predicted_wait() {
        // A deep queue cap but a deadline budget far below what the cost
        // model predicts once a few requests stack up: admission control
        // must shed with `Overloaded` instead of queueing guaranteed
        // deadline misses.
        let fleet = FleetServer::new(
            vec![EngineSpec::new("only", &cpu_engine(), 8)],
            FleetConfig::default(),
        );
        let key = fleet
            .register(mlp_source(&cpu_engine(), 7), ModelSlo::new(1.0, Duration::from_micros(50)));
        assert_eq!(fleet.warm(key, vec![0.1, 0.2, 0.3, 0.4], vec![4]), 1);
        // Seed the latency EWMA with real observations (generous deadline).
        for _ in 0..3 {
            fleet
                .submit_with_deadline(key, vec![0.1; 4], vec![4], Duration::from_secs(5))
                .wait()
                .unwrap();
        }
        let pending: Vec<FleetPending> =
            (0..512).map(|_| fleet.submit(key, vec![0.1, 0.2, 0.3, 0.4], vec![4])).collect();
        for p in pending {
            match p.wait() {
                Ok(_) | Err(ServeError::Overloaded { .. })
                | Err(ServeError::QueueFull { .. })
                | Err(ServeError::DeadlineExceeded { .. }) => {}
                Err(e) => panic!("unexpected error under overload: {e}"),
            }
        }
        let stats = fleet.stats();
        assert!(
            stats.shed_overloaded >= 1,
            "the cost model sheds predicted deadline misses: {stats:?}"
        );
        assert_eq!(stats.accounted(), stats.submitted, "{stats:?}");
    }

    #[test]
    fn heavy_models_prefer_fast_engines() {
        let fleet = FleetServer::new(
            vec![
                EngineSpec::new("slow", &cpu_engine(), 2),
                EngineSpec::new("fast", &cpu_engine(), 64),
            ],
            // Tiny threshold: our test MLP counts as heavy.
            FleetConfig { heavy_model_bytes: 16, ..Default::default() },
        );
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        for _ in 0..8 {
            fleet.infer(key, vec![0.1, 0.2, 0.3, 0.4], vec![4]).unwrap();
        }
        let stats = fleet.stats();
        let fast = stats.engines.iter().find(|e| e.name == "fast").unwrap();
        let slow = stats.engines.iter().find(|e| e.name == "slow").unwrap();
        assert_eq!(fast.completed, 8, "heavy traffic lands on the fast class: {stats:?}");
        assert_eq!(slow.completed, 0);
    }

    #[test]
    fn drain_hook_takes_engine_out_of_rotation() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        fleet.infer(key, vec![0.0; 4], vec![4]).unwrap();
        assert!(fleet.drain_engine("a", Duration::from_secs(2)));
        for _ in 0..6 {
            fleet.infer(key, vec![0.5; 4], vec![4]).unwrap();
        }
        let before = fleet.stats();
        let a = before.engines.iter().find(|e| e.name == "a").unwrap();
        let b = before.engines.iter().find(|e| e.name == "b").unwrap();
        assert!(a.draining);
        assert!(b.completed >= 6, "drained engine takes no new work: {before:?}");
        assert!(fleet.undrain_engine("a"));
        assert!(!fleet.drain_engine("nope", Duration::from_millis(1)), "unknown engine");
        assert!(fleet.infer(key, vec![0.0; 4], vec![4]).is_ok());
    }

    #[test]
    fn draining_every_engine_sheds_with_no_healthy_engine() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        fleet.drain_engine("a", Duration::from_secs(1));
        fleet.drain_engine("b", Duration::from_secs(1));
        let err = fleet.infer(key, vec![0.0; 4], vec![4]).unwrap_err();
        assert_eq!(err, ServeError::NoHealthyEngine);
        let stats = fleet.stats();
        assert_eq!(stats.shed_no_engine, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn warm_builds_every_engine_cache() {
        let fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        assert_eq!(fleet.warm(key, vec![0.1, 0.2, 0.3, 0.4], vec![4]), 2);
        assert_eq!(fleet.warm(0xdead, vec![0.0], vec![1]), 0, "unknown model warms nothing");
        assert!(fleet.infer(key, vec![0.0; 4], vec![4]).is_ok());
        assert_eq!(fleet.stats().warmups, 2);
    }

    #[test]
    fn shutdown_refuses_new_requests_explicitly() {
        let mut fleet = two_engine_fleet(FleetConfig::default());
        let key = fleet.register(mlp_source(&cpu_engine(), 7), ModelSlo::default());
        fleet.infer(key, vec![0.0; 4], vec![4]).unwrap();
        fleet.shutdown();
        let err = fleet.infer(key, vec![0.0; 4], vec![4]).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
        let stats = fleet.stats();
        assert_eq!(stats.shutdown_rejected, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }
}
