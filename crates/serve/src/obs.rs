//! Shared observability plumbing for the serving layers: finalizing
//! per-request phase timelines and emitting request-scoped envelope spans.
//!
//! Both front doors ([`crate::ModelServer`] and [`crate::FleetServer`])
//! stamp a [`RequestTimeline`] as a request moves through queueing,
//! batching, and the two-phase executor, then call [`finish_request`] at
//! reply time. That single call:
//!
//! - feeds the timeline to the attribution aggregates
//!   ([`webml_telemetry::attribution`]) and the flight recorder ring
//!   ([`webml_telemetry::flight`]) — always on, a few hundred ns;
//! - when tracing is enabled, emits the request's **envelope span**
//!   (`serve.request`, submit → reply) plus one span per reconstructed
//!   phase, all carrying the request's trace id — so a Chrome trace shows
//!   one causal lane per request even though its fragments executed on
//!   four different threads.

use webml_telemetry as telemetry;
use webml_telemetry::{RequestOutcome, RequestTimeline};

/// Span names for the six attributed phases, timeline order (matching
/// [`webml_telemetry::PHASE_NAMES`]).
const PHASE_SPANS: [&str; 6] = [
    "serve.admission",
    "serve.queue",
    "serve.batch_form",
    "serve.upload",
    "serve.compute",
    "serve.readback",
];

/// Finalize a request's timeline (stamp `done`, outcome, batch size),
/// record it for attribution and the flight recorder, and emit its
/// envelope + phase spans. `batch_trace` is the trace id of the batch
/// context it executed under (0 when it never joined a batch).
pub(crate) fn finish_request(
    tl: &mut RequestTimeline,
    outcome: RequestOutcome,
    batch_size: u32,
    batch_trace: u64,
) {
    tl.done_ns = telemetry::now_ns();
    tl.outcome = outcome;
    tl.batch_size = batch_size;
    telemetry::record_request(tl);
    telemetry::flight::record_timeline(tl);
    if !telemetry::enabled() {
        return;
    }
    let _scope = telemetry::trace_scope(tl.trace_id);
    telemetry::record_span_arg(
        "serve.request",
        "serve",
        tl.submitted_ns,
        tl.done_ns,
        "batch",
        batch_trace as f64,
    );
    if tl.is_complete() {
        let t = [
            tl.submitted_ns,
            tl.admitted_ns,
            tl.drained_ns,
            tl.exec_start_ns,
            tl.upload_end_ns,
            tl.compute_end_ns,
            tl.done_ns,
        ];
        for (i, &name) in PHASE_SPANS.iter().enumerate() {
            telemetry::record_span(name, "serve", t[i], t[i + 1]);
        }
    }
    if batch_size >= 2 {
        telemetry::instant_arg("serve.batch_member", "serve", "batch", batch_trace as f64);
    }
}

/// Mint a batch-scoped trace context under the currently active scope
/// (the dispatcher's context), so batch spans link parent → batch →
/// members.
pub(crate) fn batch_ctx() -> telemetry::RequestCtx {
    telemetry::RequestCtx {
        trace_id: telemetry::next_trace_id(),
        parent_span: telemetry::current_trace_id(),
    }
}
