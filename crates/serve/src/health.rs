//! Engine health tracking for the fleet router: the per-engine cost model
//! that drives admission control, and the circuit breaker that takes a
//! misbehaving engine out of rotation.
//!
//! Health is judged from the outside, by observation — the router never
//! asks an engine "are you ok?", it watches what the engine *does*: how
//! long requests take (an EWMA of per-request service latency, the cheap
//! online companion to the PR-4 latency histograms), how deep its queue is,
//! whether its degradation generation moved (the engine fell off its
//! preferred backend), and whether executions fail or blow their timeout.
//! This is the same stance the paper takes toward devices: assume nothing,
//! measure everything, and keep serving.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cache::ModelKey;

/// EWMA smoothing factor for observed per-request latency (weight of the
/// newest sample). High enough to react to a straggler within a few
/// requests, low enough not to chase single-batch noise.
const EWMA_ALPHA: f64 = 0.25;

/// Prior service-time estimate (nanoseconds) used before an engine has
/// observed any request for a model — deliberately modest so cold engines
/// are neither shunned nor flooded.
const PRIOR_SERVICE_NS: u64 = 300_000;

/// Cost-model state for one engine: queue pressure and observed latency.
///
/// All fields are atomics — submitters on any thread read the cost model
/// while the engine's worker updates it.
#[derive(Default)]
pub struct EngineHealth {
    /// Requests currently queued (not yet drained by the worker).
    queue_depth: AtomicUsize,
    /// Requests drained and executing right now.
    inflight: AtomicUsize,
    /// Engine-wide EWMA of per-request service latency, nanoseconds.
    ewma_ns: AtomicU64,
    /// Per-model EWMA of per-request service latency, nanoseconds.
    per_model_ns: Mutex<HashMap<ModelKey, u64>>,
    /// Requests completed by this engine over its lifetime.
    completed: AtomicU64,
    /// Last engine degradation generation the breaker acknowledged.
    seen_generation: AtomicU64,
}

impl EngineHealth {
    /// Fresh health state, seeding the generation watch from the engine's
    /// current degradation generation so pre-existing degradations don't
    /// count against it.
    pub fn new(current_generation: u64) -> EngineHealth {
        EngineHealth {
            seen_generation: AtomicU64::new(current_generation),
            ..EngineHealth::default()
        }
    }

    /// Record that `n` requests entered the queue.
    pub fn enqueued(&self, n: usize) {
        self.queue_depth.fetch_add(n, Ordering::Relaxed);
    }

    /// Record that `n` requests left the queue (drained, shed, or expired)
    /// and `executing` of them are now in flight.
    pub fn drained(&self, n: usize, executing: usize) {
        // Saturating: a re-routed request was never in *this* queue.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(n)));
        self.inflight.fetch_add(executing, Ordering::Relaxed);
    }

    /// Record `per_request_ns` observed service latency for `executed`
    /// requests of `model`, and drop them from the in-flight gauge.
    pub fn observed(&self, model: ModelKey, per_request_ns: u64, executed: usize) {
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(executed))
            });
        self.completed.fetch_add(executed as u64, Ordering::Relaxed);
        let fold = |old: u64| -> u64 {
            if old == 0 {
                per_request_ns
            } else {
                (old as f64 * (1.0 - EWMA_ALPHA) + per_request_ns as f64 * EWMA_ALPHA) as u64
            }
        };
        let engine_wide = fold(self.ewma_ns.load(Ordering::Relaxed));
        self.ewma_ns.store(engine_wide.max(1), Ordering::Relaxed);
        let mut per_model = self.per_model_ns.lock();
        let cell = per_model.entry(model).or_insert(0);
        *cell = fold(*cell).max(1);
    }

    /// Observed per-request service latency for `model`, falling back to
    /// the engine-wide EWMA and then to a fixed prior for cold engines.
    pub fn service_ns(&self, model: ModelKey) -> u64 {
        if let Some(&ns) = self.per_model_ns.lock().get(&model) {
            if ns > 0 {
                return ns;
            }
        }
        match self.ewma_ns.load(Ordering::Relaxed) {
            0 => PRIOR_SERVICE_NS,
            ns => ns,
        }
    }

    /// The admission cost model: predicted wait for a *new* request of
    /// `model` = (queued + in-flight) × observed per-request latency. This
    /// is computed at enqueue, so shed decisions happen before a request
    /// ever occupies a queue slot.
    pub fn predicted_wait_ns(&self, model: ModelKey) -> u64 {
        let pending =
            self.queue_depth.load(Ordering::Relaxed) + self.inflight.load(Ordering::Relaxed);
        (pending as u64).saturating_mul(self.service_ns(model))
    }

    /// Drop `n` requests from the in-flight gauge without recording a
    /// latency observation (the requests were never executed).
    pub fn aborted(&self, n: usize) {
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(n)));
    }

    /// Current queue depth (queued, not yet drained).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Requests drained and executing right now.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests completed over this engine's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Engine-wide observed per-request latency, milliseconds (0 until the
    /// first observation).
    pub fn ewma_ms(&self) -> f64 {
        self.ewma_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Whether the engine's degradation generation moved since the last
    /// check (the engine fell back to a slower backend mid-traffic).
    /// Returns `true` at most once per generation change.
    pub fn generation_changed(&self, current: u64) -> bool {
        self.seen_generation.swap(current, Ordering::Relaxed) != current
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive hard failures (execution errors / timeouts) that trip
    /// the breaker.
    pub trip_failures: u32,
    /// Whether an engine degradation (backend fallback, e.g. context loss)
    /// trips the breaker immediately. The engine still *answers* on its
    /// fallback backend — tripping takes it out of rotation so the fleet
    /// stops routing latency-sensitive traffic at a slowed engine while
    /// recovery (context restore + promotion) is attempted.
    pub trip_on_degradation: bool,
    /// Request latency above this multiple of the model's SLO target counts
    /// as a timeout toward `trip_failures`.
    pub timeout_slo_multiple: f64,
    /// Minimum time an open breaker waits before admitting a canary probe.
    pub probe_interval: Duration,
    /// Consecutive successful canaries required to re-close the breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_failures: 3,
            trip_on_degradation: true,
            timeout_slo_multiple: 4.0,
            probe_interval: Duration::from_millis(10),
            probe_successes: 2,
        }
    }
}

/// Externally visible breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the engine admits normal traffic.
    Closed,
    /// Tripped: out of rotation; only canary probes may run.
    Open,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    probe_inflight: bool,
    probe_successes: u32,
    /// Why the breaker last tripped (for stats/debugging).
    last_trip_reason: Option<String>,
}

/// The per-engine circuit breaker: `Closed → Open` on repeated failures,
/// timeouts, or a degradation; canary probes while `Open`; `Open → Closed`
/// after enough consecutive probe successes.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
    recloses: AtomicU64,
}

/// Snapshot of one breaker for stats.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Lifetime trips.
    pub trips: u64,
    /// Lifetime re-closes (recoveries).
    pub recloses: u64,
    /// Reason for the most recent trip, if any.
    pub last_trip_reason: Option<String>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
                probe_inflight: false,
                probe_successes: 0,
                last_trip_reason: None,
            }),
            trips: AtomicU64::new(0),
            recloses: AtomicU64::new(0),
        }
    }

    /// Whether the engine admits normal (non-probe) traffic.
    pub fn admits(&self) -> bool {
        self.inner.lock().state == BreakerState::Closed
    }

    /// Record a successful normal-traffic execution: resets the consecutive
    /// failure count.
    pub fn record_success(&self) {
        self.inner.lock().consecutive_failures = 0;
    }

    /// Record a hard failure or timeout; returns `true` when this one trips
    /// the breaker.
    pub fn record_failure(&self, reason: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open {
            return false;
        }
        inner.consecutive_failures += 1;
        if inner.consecutive_failures >= self.config.trip_failures {
            self.trip_locked(&mut inner, reason);
            return true;
        }
        false
    }

    /// Record an engine degradation (backend fallback); returns `true`
    /// when it trips the breaker.
    pub fn record_degradation(&self, reason: &str) -> bool {
        if !self.config.trip_on_degradation {
            return false;
        }
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open {
            return false;
        }
        self.trip_locked(&mut inner, reason);
        true
    }

    fn trip_locked(&self, inner: &mut BreakerInner, reason: &str) {
        inner.state = BreakerState::Open;
        inner.opened_at = Instant::now();
        inner.probe_inflight = false;
        inner.probe_successes = 0;
        inner.last_trip_reason = Some(reason.to_string());
        self.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether an open breaker is due for a canary probe. Claims the probe
    /// slot (at most one canary in flight per engine); the caller must
    /// report back via [`CircuitBreaker::probe_result`].
    pub fn try_begin_probe(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.state != BreakerState::Open
            || inner.probe_inflight
            || inner.opened_at.elapsed() < self.config.probe_interval
        {
            return false;
        }
        inner.probe_inflight = true;
        true
    }

    /// Report a canary result; returns `true` when the breaker re-closed
    /// (the engine is re-admitted to rotation).
    pub fn probe_result(&self, ok: bool) -> bool {
        let mut inner = self.inner.lock();
        inner.probe_inflight = false;
        if inner.state != BreakerState::Open {
            return false;
        }
        if !ok {
            inner.probe_successes = 0;
            // Back off: restart the probe interval from the failed probe.
            inner.opened_at = Instant::now();
            return false;
        }
        inner.probe_successes += 1;
        if inner.probe_successes >= self.config.probe_successes {
            inner.state = BreakerState::Closed;
            inner.consecutive_failures = 0;
            inner.probe_successes = 0;
            self.recloses.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // More successes needed; allow the next probe immediately.
        inner.opened_at = Instant::now() - self.config.probe_interval;
        false
    }

    /// The breaker's tuning.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Stats snapshot.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock();
        BreakerSnapshot {
            state: inner.state,
            trips: self.trips.load(Ordering::Relaxed),
            recloses: self.recloses.load(Ordering::Relaxed),
            last_trip_reason: inner.last_trip_reason.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_tracks_queue_and_latency() {
        let h = EngineHealth::new(0);
        assert_eq!(h.predicted_wait_ns(1), 0, "empty engine predicts no wait");
        h.enqueued(4);
        // Cold engine: prior latency × 4 pending.
        assert_eq!(h.predicted_wait_ns(1), 4 * PRIOR_SERVICE_NS);
        h.drained(4, 4);
        // Pending includes in-flight work, not just the queue.
        assert_eq!(h.predicted_wait_ns(1), 4 * PRIOR_SERVICE_NS);
        h.observed(1, 1_000_000, 4);
        assert_eq!(h.queue_depth(), 0);
        assert_eq!(h.completed(), 4);
        // First observation seeds the EWMA outright.
        assert_eq!(h.service_ns(1), 1_000_000);
        // Unknown models fall back to the engine-wide EWMA.
        assert_eq!(h.service_ns(99), 1_000_000);
        h.enqueued(3);
        assert_eq!(h.predicted_wait_ns(1), 3_000_000);
        // EWMA converges toward a straggler's latency.
        for _ in 0..30 {
            h.observed(1, 10_000_000, 1);
        }
        assert!(h.service_ns(1) > 8_000_000, "EWMA chased the spike: {}", h.service_ns(1));
    }

    #[test]
    fn generation_watch_fires_once_per_change() {
        let h = EngineHealth::new(5);
        assert!(!h.generation_changed(5));
        assert!(h.generation_changed(6));
        assert!(!h.generation_changed(6));
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_only() {
        let b = CircuitBreaker::new(BreakerConfig { trip_failures: 3, ..Default::default() });
        assert!(b.admits());
        assert!(!b.record_failure("boom"));
        assert!(!b.record_failure("boom"));
        b.record_success(); // resets the streak
        assert!(!b.record_failure("boom"));
        assert!(!b.record_failure("boom"));
        assert!(b.record_failure("boom"));
        assert!(!b.admits());
        assert_eq!(b.snapshot().trips, 1);
        assert_eq!(b.snapshot().last_trip_reason.as_deref(), Some("boom"));
    }

    #[test]
    fn breaker_trips_on_degradation_and_recovers_via_probes() {
        let config = BreakerConfig {
            probe_interval: Duration::from_millis(0),
            probe_successes: 2,
            ..Default::default()
        };
        let b = CircuitBreaker::new(config);
        assert!(b.record_degradation("context loss"));
        assert!(!b.admits());
        // Only one probe slot at a time.
        assert!(b.try_begin_probe());
        assert!(!b.try_begin_probe());
        // A failed probe resets the success streak.
        assert!(!b.probe_result(false));
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.try_begin_probe());
        assert!(!b.probe_result(true), "one success is not enough");
        assert!(b.try_begin_probe());
        assert!(b.probe_result(true), "second consecutive success re-closes");
        assert!(b.admits());
        let snap = b.snapshot();
        assert_eq!((snap.trips, snap.recloses), (1, 1));
    }

    #[test]
    fn open_breaker_ignores_further_failures() {
        let b = CircuitBreaker::new(BreakerConfig { trip_failures: 1, ..Default::default() });
        assert!(b.record_failure("first"));
        assert!(!b.record_failure("second"), "already open");
        assert!(!b.record_degradation("third"));
        assert_eq!(b.snapshot().trips, 1);
    }

    #[test]
    fn degradation_trip_respects_config() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_on_degradation: false,
            ..Default::default()
        });
        assert!(!b.record_degradation("context loss"));
        assert!(b.admits());
    }
}
