//! The fleet-serving error contract.
//!
//! The single-engine `ModelServer` reuses the engine's [`Error`] type, but
//! fleet serving has failure modes the engine doesn't: a request can be
//! *refused* before it ever touches an engine. Those refusals are explicit
//! and typed — the SLO contract is "answers within the deadline, or an
//! error that says why not", never silent queue growth.

use std::fmt;
use webml_core::Error;

/// Why a fleet request did not produce an inference result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request's deadline expired before it reached a batch slot.
    /// Deadline enforcement happens at dequeue: an expired request is
    /// rejected instead of occupying capacity other requests could use.
    DeadlineExceeded {
        /// How long the request waited before being rejected, milliseconds.
        waited_ms: f64,
        /// The deadline budget it carried, milliseconds.
        budget_ms: f64,
    },
    /// Admission control refused the request at enqueue: every healthy
    /// engine's predicted wait (queue depth × observed per-request latency)
    /// already exceeds the request's deadline budget, so queueing it would
    /// only manufacture a guaranteed deadline miss.
    Overloaded {
        /// Predicted wait on the least-loaded candidate engine, ms.
        predicted_wait_ms: f64,
        /// The deadline budget the request carried, ms.
        budget_ms: f64,
    },
    /// The per-engine queue cap was hit — backpressure instead of unbounded
    /// memory growth.
    QueueFull {
        /// The configured per-engine queue capacity.
        capacity: usize,
    },
    /// No engine is currently admitting work for this request (all circuit
    /// breakers open, or the fleet is draining).
    NoHealthyEngine,
    /// The request itself was malformed (unknown model, shape mismatch).
    Rejected(String),
    /// Every re-route attempt exhausted: the underlying engine error, after
    /// the fleet already tried other engines. With the PR-1 ladder intact
    /// this is reserved for logic errors, not device faults.
    Engine(Error),
    /// The fleet shut down before replying.
    Shutdown,
}

impl ServeError {
    /// Whether this is an explicit load-shed (admission refusal or queue
    /// cap) — the overload contract, as opposed to a per-request problem.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. } | ServeError::QueueFull { .. } | ServeError::NoHealthyEngine
        )
    }

    /// Whether the fleet refused the request without executing it (sheds,
    /// deadline rejections, malformed requests, shutdown) — everything
    /// except an engine execution failure.
    pub fn is_refusal(&self) -> bool {
        !matches!(self, ServeError::Engine(_))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded { waited_ms, budget_ms } => write!(
                f,
                "deadline exceeded: waited {waited_ms:.2} ms of a {budget_ms:.2} ms budget"
            ),
            ServeError::Overloaded { predicted_wait_ms, budget_ms } => write!(
                f,
                "overloaded: predicted wait {predicted_wait_ms:.2} ms exceeds the \
                 {budget_ms:.2} ms deadline budget"
            ),
            ServeError::QueueFull { capacity } => {
                write!(f, "engine queue full ({capacity} requests)")
            }
            ServeError::NoHealthyEngine => write!(f, "no healthy engine is admitting work"),
            ServeError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            ServeError::Engine(e) => write!(f, "engine error after re-route attempts: {e}"),
            ServeError::Shutdown => write!(f, "fleet shut down before replying"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<Error> for ServeError {
    fn from(e: Error) -> ServeError {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_classification() {
        assert!(ServeError::Overloaded { predicted_wait_ms: 9.0, budget_ms: 5.0 }.is_shed());
        assert!(ServeError::QueueFull { capacity: 64 }.is_shed());
        assert!(ServeError::NoHealthyEngine.is_shed());
        assert!(!ServeError::DeadlineExceeded { waited_ms: 6.0, budget_ms: 5.0 }.is_shed());
        assert!(!ServeError::Engine(Error::invalid("serve", "x")).is_shed());
        assert!(!ServeError::Engine(Error::invalid("serve", "x")).is_refusal());
        assert!(ServeError::DeadlineExceeded { waited_ms: 6.0, budget_ms: 5.0 }.is_refusal());
    }

    #[test]
    fn displays_are_informative() {
        let e = ServeError::DeadlineExceeded { waited_ms: 12.5, budget_ms: 10.0 };
        assert!(e.to_string().contains("12.50"));
        let e = ServeError::Overloaded { predicted_wait_ms: 80.0, budget_ms: 20.0 };
        assert!(e.to_string().contains("overloaded"));
        let _: &dyn std::error::Error = &e;
    }
}
