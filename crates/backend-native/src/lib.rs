//! # webml-backend-native
//!
//! The optimized native backend — the analogue of TensorFlow.js's Node.js
//! backend, which binds to the TensorFlow C library and gets AVX-class CPU
//! performance plus automatic memory finalization (paper Sec 4.2).
//!
//! Hot kernels (matmul, conv2d, depthwise conv, element-wise maps) are
//! multi-threaded, cache-blocked and written for autovectorization in
//! [`compute`]; geometry-heavy cold ops reuse the shared reference
//! implementations. Register it together with
//! [`MemoryPolicy::Finalized`](webml_core::MemoryPolicy) to reproduce the
//! Node.js property that dropping the last handle frees the tensor (no
//! manual `dispose`/`tidy` needed).

#![warn(missing_docs)]

pub mod compute;
pub mod parallel;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use webml_core::backend::{
    ArgReduceOp, Backend, BackendMemory, BinaryOp, DataFuture, DataId, FusedStep, KTensor,
    KernelTiming, PoolOp, ReduceOp, UnaryOp,
};
use webml_core::conv_util::Conv2dInfo;
use webml_core::dtype::{DType, TensorData};
use webml_core::error::{Error, Result};
use webml_core::kernels as reference;
use webml_core::shape::Shape;

struct Entry {
    data: Arc<TensorData>,
    dtype: DType,
}

/// Multi-threaded optimized CPU backend (the "Node.js" rows of Table 1).
pub struct NativeBackend {
    name: String,
    threads: usize,
    store: Mutex<HashMap<DataId, Entry>>,
    next_id: AtomicU64,
    kernel_nanos: AtomicU64,
    timing_mark: AtomicU64,
}

impl Default for NativeBackend {
    fn default() -> Self {
        NativeBackend::new()
    }
}

impl NativeBackend {
    /// Create a backend named `"native"` using all available cores — the
    /// "Node.js CUDA-class" configuration.
    pub fn new() -> NativeBackend {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        NativeBackend::with_threads("native", threads)
    }

    /// Create a backend with an explicit thread count. `1` models the
    /// single-core "Node.js CPU w/ AVX2" row of Table 1.
    pub fn with_threads(name: impl Into<String>, threads: usize) -> NativeBackend {
        NativeBackend {
            name: name.into(),
            threads: threads.max(1),
            store: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            kernel_nanos: AtomicU64::new(0),
            timing_mark: AtomicU64::new(0),
        }
    }

    /// Worker threads used by kernels.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn fetch(&self, id: DataId) -> Result<Arc<TensorData>> {
        self.store
            .lock()
            .get(&id)
            .map(|e| e.data.clone())
            .ok_or_else(|| Error::backend(&self.name, format!("unknown data id {id:?}")))
    }

    fn fetch_f32(&self, id: DataId) -> Result<FloatView> {
        let data = self.fetch(id)?;
        Ok(FloatView::new(data))
    }

    fn fetch_u8(&self, id: DataId) -> Result<Vec<u8>> {
        let data = self.fetch(id)?;
        Ok(match &*data {
            TensorData::U8(v) => v.clone(),
            other => {
                other.to_f32_vec().iter().map(|&x| x.round().clamp(0.0, 255.0) as u8).collect()
            }
        })
    }

    fn put(&self, data: TensorData, dtype: DType) -> DataId {
        let id = DataId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.store.lock().insert(id, Entry { data: Arc::new(data.cast(dtype)), dtype });
        id
    }

    fn put_f32(&self, vals: Vec<f32>, dtype: DType) -> DataId {
        self.put(TensorData::F32(vals), dtype)
    }

    fn timer(&self) -> Timer<'_> {
        Timer { backend: self, start: Instant::now() }
    }
}

/// A zero-copy f32 view when possible, converting otherwise.
struct FloatView {
    data: Arc<TensorData>,
    converted: Option<Vec<f32>>,
}

impl FloatView {
    fn new(data: Arc<TensorData>) -> FloatView {
        let converted = match &*data {
            TensorData::F32(_) => None,
            other => Some(other.to_f32_vec()),
        };
        FloatView { data, converted }
    }

    fn as_slice(&self) -> &[f32] {
        match &self.converted {
            Some(v) => v,
            None => self.data.as_f32().expect("checked F32"),
        }
    }
}

struct Timer<'a> {
    backend: &'a NativeBackend,
    start: Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.backend
            .kernel_nanos
            .fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Whether `b_dims` is a suffix of `a_dims` (the bias-add broadcast).
fn is_suffix(a: &Shape, b: &Shape) -> bool {
    let (ad, bd) = (a.dims(), b.dims());
    bd.len() <= ad.len() && ad[ad.len() - bd.len()..] == *bd
}

impl Backend for NativeBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, data: TensorData, dtype: DType) -> DataId {
        self.put(data, dtype)
    }

    fn read_sync(&self, id: DataId) -> Result<TensorData> {
        Ok((*self.fetch(id)?).clone())
    }

    fn read(&self, id: DataId) -> DataFuture {
        DataFuture::ready(self.read_sync(id))
    }

    fn dispose_data(&self, id: DataId) {
        self.store.lock().remove(&id);
    }

    fn memory(&self) -> BackendMemory {
        let store = self.store.lock();
        BackendMemory {
            num_buffers: store.len(),
            num_bytes: store.values().map(|e| e.data.byte_len(e.dtype)).sum(),
            details: vec![("threads".to_string(), self.threads as f64)],
        }
    }

    fn begin_timing(&self) {
        self.timing_mark.store(self.kernel_nanos.load(Ordering::Relaxed), Ordering::SeqCst);
    }

    fn end_timing(&self) -> KernelTiming {
        let now = self.kernel_nanos.load(Ordering::Relaxed);
        KernelTiming {
            kernel_ms: (now - self.timing_mark.load(Ordering::SeqCst)) as f64 / 1e6,
        }
    }

    fn device_timer_ns(&self) -> Option<u64> {
        Some(self.kernel_nanos.load(Ordering::Relaxed))
    }

    fn unary(&self, op: UnaryOp, a: &KTensor<'_>) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        let out = compute::unary_map(x.as_slice(), self.threads, |v| op.apply(v));
        Ok(self.put_f32(out, op.out_dtype(a.dtype)))
    }

    fn binary(
        &self,
        op: BinaryOp,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
        out_dtype: DType,
    ) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        let y = self.fetch_f32(b.data)?;
        let out = if a.shape == b.shape {
            compute::binary_map(x.as_slice(), y.as_slice(), self.threads, |u, v| op.apply(u, v))
        } else if is_suffix(a.shape, b.shape) {
            compute::binary_map_suffix(x.as_slice(), y.as_slice(), self.threads, |u, v| {
                op.apply(u, v)
            })
        } else if is_suffix(b.shape, a.shape) {
            compute::binary_map_suffix(y.as_slice(), x.as_slice(), self.threads, |v, u| {
                op.apply(u, v)
            })
        } else {
            reference::binary(op, x.as_slice(), a.shape, y.as_slice(), b.shape, out_shape)
        };
        Ok(self.put_f32(out, out_dtype))
    }

    fn cast(&self, a: &KTensor<'_>, dtype: DType) -> Result<DataId> {
        let _t = self.timer();
        let data = self.fetch(a.data)?;
        Ok(self.put(data.cast(dtype), dtype))
    }

    fn reduce(&self, op: ReduceOp, a: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        // Fast path: sum/mean over a contiguous tail of axes.
        let rank = a.shape.rank();
        let tail: Vec<usize> = (rank - axes.len()..rank).collect();
        let out = if (op == ReduceOp::Sum || op == ReduceOp::Mean) && axes == tail.as_slice() && rank > 0
        {
            let inner: usize = axes.iter().map(|&i| a.shape.dim(i)).product();
            let outer = a.shape.size() / inner.max(1);
            compute::reduce_last(x.as_slice(), outer, inner.max(1), self.threads, op == ReduceOp::Mean)
        } else {
            reference::reduce(op, x.as_slice(), a.shape, axes)
        };
        Ok(self.put_f32(out, op.out_dtype(a.dtype)))
    }

    fn arg_reduce(&self, op: ArgReduceOp, a: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        Ok(self.put(
            TensorData::I32(reference::arg_reduce(op, x.as_slice(), a.shape, axis)),
            DType::I32,
        ))
    }

    fn matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        let y = self.fetch_f32(b.data)?;
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let out = compute::matmul(
            x.as_slice(),
            y.as_slice(),
            batch,
            m,
            k,
            n,
            transpose_a,
            transpose_b,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn conv2d(&self, x: &KTensor<'_>, filter: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let wv = self.fetch_f32(filter.data)?;
        Ok(self.put_f32(compute::conv2d(xv.as_slice(), wv.as_slice(), info, self.threads), DType::F32))
    }

    fn conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.fetch_f32(dy.data)?;
        let wv = self.fetch_f32(filter.data)?;
        Ok(self.put_f32(
            compute::conv2d_backprop_input(dyv.as_slice(), wv.as_slice(), info, self.threads),
            DType::F32,
        ))
    }

    fn conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let dyv = self.fetch_f32(dy.data)?;
        Ok(self.put_f32(
            compute::conv2d_backprop_filter(xv.as_slice(), dyv.as_slice(), info, self.threads),
            DType::F32,
        ))
    }

    fn depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let wv = self.fetch_f32(filter.data)?;
        Ok(self.put_f32(
            compute::depthwise_conv2d(xv.as_slice(), wv.as_slice(), info, self.threads),
            DType::F32,
        ))
    }

    fn depthwise_conv2d_backprop_input(
        &self,
        dy: &KTensor<'_>,
        filter: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.fetch_f32(dy.data)?;
        let wv = self.fetch_f32(filter.data)?;
        Ok(self.put_f32(
            reference::depthwise_conv2d_backprop_input(dyv.as_slice(), wv.as_slice(), info),
            DType::F32,
        ))
    }

    fn depthwise_conv2d_backprop_filter(
        &self,
        x: &KTensor<'_>,
        dy: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let dyv = self.fetch_f32(dy.data)?;
        Ok(self.put_f32(
            reference::depthwise_conv2d_backprop_filter(xv.as_slice(), dyv.as_slice(), info),
            DType::F32,
        ))
    }

    fn pool2d(&self, op: PoolOp, x: &KTensor<'_>, info: &Conv2dInfo) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::pool2d(op, xv.as_slice(), info), x.dtype))
    }

    fn pool2d_backprop(
        &self,
        op: PoolOp,
        dy: &KTensor<'_>,
        x: &KTensor<'_>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let dyv = self.fetch_f32(dy.data)?;
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::pool2d_backprop(op, dyv.as_slice(), xv.as_slice(), info), DType::F32))
    }

    fn slice(&self, x: &KTensor<'_>, begin: &[usize], size: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::slice(xv.as_slice(), x.shape, begin, size), x.dtype))
    }

    fn concat(&self, xs: &[KTensor<'_>], axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let views: Vec<FloatView> = xs.iter().map(|t| self.fetch_f32(t.data)).collect::<Result<_>>()?;
        let pairs: Vec<(&[f32], &Shape)> =
            views.iter().zip(xs).map(|(v, t)| (v.as_slice(), t.shape)).collect();
        Ok(self.put_f32(reference::concat(&pairs, axis), xs[0].dtype))
    }

    fn transpose(&self, x: &KTensor<'_>, perm: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::transpose(xv.as_slice(), x.shape, perm), x.dtype))
    }

    fn pad(&self, x: &KTensor<'_>, paddings: &[(usize, usize)], value: f32) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::pad(xv.as_slice(), x.shape, paddings, value), x.dtype))
    }

    fn gather(&self, x: &KTensor<'_>, indices: &KTensor<'_>, axis: usize) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let ix = self.fetch(indices.data)?.to_i32_vec();
        Ok(self.put_f32(reference::gather(xv.as_slice(), x.shape, &ix, axis), x.dtype))
    }

    fn tile(&self, x: &KTensor<'_>, reps: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::tile(xv.as_slice(), x.shape, reps), x.dtype))
    }

    fn reverse(&self, x: &KTensor<'_>, axes: &[usize]) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(reference::reverse(xv.as_slice(), x.shape, axes), x.dtype))
    }

    fn select(
        &self,
        cond: &KTensor<'_>,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        out_shape: &Shape,
    ) -> Result<DataId> {
        let _t = self.timer();
        let cv = self.fetch_f32(cond.data)?;
        let av = self.fetch_f32(a.data)?;
        let bv = self.fetch_f32(b.data)?;
        Ok(self.put_f32(
            reference::select(
                cv.as_slice(),
                cond.shape,
                av.as_slice(),
                a.shape,
                bv.as_slice(),
                b.shape,
                out_shape,
            ),
            a.dtype,
        ))
    }

    fn one_hot(&self, indices: &KTensor<'_>, depth: usize, on: f32, off: f32) -> Result<DataId> {
        let _t = self.timer();
        let ix = self.fetch(indices.data)?.to_i32_vec();
        Ok(self.put_f32(reference::one_hot(&ix, depth, on, off), DType::F32))
    }

    fn resize_bilinear(
        &self,
        x: &KTensor<'_>,
        new_h: usize,
        new_w: usize,
        align_corners: bool,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        Ok(self.put_f32(
            reference::resize_bilinear(xv.as_slice(), x.shape, new_h, new_w, align_corners),
            DType::F32,
        ))
    }

    fn fused_matmul(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        let y = self.fetch_f32(b.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let out = compute::fused_matmul(
            x.as_slice(),
            y.as_slice(),
            batch,
            m,
            k,
            n,
            transpose_a,
            transpose_b,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let wv = self.fetch_f32(filter.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let out = compute::fused_conv2d(
            xv.as_slice(),
            wv.as_slice(),
            info,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_depthwise_conv2d(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let wv = self.fetch_f32(filter.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let out = compute::fused_depthwise_conv2d(
            xv.as_slice(),
            wv.as_slice(),
            info,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_matmul_quant(
        &self,
        a: &KTensor<'_>,
        b: &KTensor<'_>,
        b_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<DataId> {
        let n = if transpose_b { b.shape.dim(1) } else { b.shape.dim(2) };
        let col_axis = if transpose_b { 1 } else { 2 };
        if !reference::quant_axis_ok(b_params, col_axis, n) {
            return webml_core::backend::fused_matmul_quant_fallback(
                self, a, b, b_params, bias, activation, transpose_a, transpose_b,
            );
        }
        let _t = self.timer();
        let x = self.fetch_f32(a.data)?;
        let codes = self.fetch_u8(b.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let batch = a.shape.dim(0);
        let (m, k) = if transpose_a {
            (a.shape.dim(2), a.shape.dim(1))
        } else {
            (a.shape.dim(1), a.shape.dim(2))
        };
        let out = compute::fused_matmul_quant(
            x.as_slice(),
            &codes,
            b_params,
            batch,
            m,
            k,
            n,
            transpose_a,
            transpose_b,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        if !reference::quant_axis_ok(filter_params, 3, info.out_channels) {
            return webml_core::backend::fused_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let codes = self.fetch_u8(filter.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let out = compute::fused_conv2d_quant(
            xv.as_slice(),
            &codes,
            filter_params,
            info,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_depthwise_conv2d_quant(
        &self,
        x: &KTensor<'_>,
        filter: &KTensor<'_>,
        filter_params: &webml_core::quant::QuantParams,
        bias: Option<&KTensor<'_>>,
        activation: Option<UnaryOp>,
        info: &Conv2dInfo,
    ) -> Result<DataId> {
        let axis_ok = reference::quant_axis_ok(filter_params, 2, info.in_channels)
            || reference::quant_axis_ok(filter_params, 3, info.channel_mul);
        if !axis_ok {
            return webml_core::backend::fused_depthwise_conv2d_quant_fallback(
                self, x, filter, filter_params, bias, activation, info,
            );
        }
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let codes = self.fetch_u8(filter.data)?;
        let bv = match bias {
            Some(bt) => Some(self.fetch_f32(bt.data)?),
            None => None,
        };
        let out = compute::fused_depthwise_conv2d_quant(
            xv.as_slice(),
            &codes,
            filter_params,
            info,
            bv.as_ref().map(|v| v.as_slice()),
            activation,
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }

    fn fused_elementwise(
        &self,
        x: &KTensor<'_>,
        extras: &[KTensor<'_>],
        steps: &[FusedStep],
        out_shape: &Shape,
    ) -> Result<DataId> {
        let _t = self.timer();
        let xv = self.fetch_f32(x.data)?;
        let views: Vec<FloatView> =
            extras.iter().map(|t| self.fetch_f32(t.data)).collect::<Result<_>>()?;
        let pairs: Vec<(&[f32], &[usize])> =
            views.iter().zip(extras).map(|(v, t)| (v.as_slice(), t.shape.dims())).collect();
        let out = compute::fused_elementwise(
            xv.as_slice(),
            x.shape.dims(),
            &pairs,
            steps,
            out_shape.dims(),
            self.threads,
        );
        Ok(self.put_f32(out, DType::F32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use webml_core::ops;
    use webml_core::{Engine, MemoryPolicy};

    fn engine() -> Engine {
        let e = Engine::new();
        e.register_backend("native", StdArc::new(NativeBackend::new()), 3);
        e
    }

    #[test]
    fn end_to_end_matmul() {
        let e = engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = e.tensor_2d(&[5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = ops::matmul(&a, &b, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn fused_matmul_quant_override_matches_dequantize_fallback() {
        use webml_core::backend::fused_matmul_quant_fallback;
        use webml_core::quant::QuantParams;
        let b = NativeBackend::with_threads("t", 3);
        let a_shape = Shape::new(vec![1, 2, 3]);
        let w_shape = Shape::new(vec![1, 3, 2]);
        let a_id = b.register(TensorData::F32(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]), DType::F32);
        let w_id = b.register(TensorData::U8(vec![0, 255, 100, 17, 200, 64]), DType::U8);
        let a = KTensor { data: a_id, shape: &a_shape, dtype: DType::F32 };
        let w = KTensor { data: w_id, shape: &w_shape, dtype: DType::U8 };
        let params = QuantParams::per_tensor(0.03, -3.0);
        let fast = Backend::fused_matmul_quant(
            &b, &a, &w, &params, None, Some(UnaryOp::Relu), false, false,
        )
        .unwrap();
        let slow = fused_matmul_quant_fallback(
            &b, &a, &w, &params, None, Some(UnaryOp::Relu), false, false,
        )
        .unwrap();
        let fv = b.read_sync(fast).unwrap().to_f32_vec();
        let sv = b.read_sync(slow).unwrap().to_f32_vec();
        for (f, s) in fv.iter().zip(&sv) {
            assert!((f - s).abs() < 1e-4, "factored {f} vs dequantized {s}");
        }
    }

    #[test]
    fn quantized_fused_matmul_end_to_end() {
        // Identity-ish quantization (scale 1, min 0): codes are the weights.
        let e = engine();
        let a = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let w = e
            .quantized_tensor(vec![5, 6, 7, 8], vec![2, 2], webml_core::QuantParams::per_tensor(1.0, 0.0))
            .unwrap();
        let c = ops::fused_matmul_quant(&a, &w, None, None, false, false).unwrap();
        assert_eq!(c.to_f32_vec().unwrap(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn bias_add_suffix_fast_path() {
        let e = engine();
        let x = e.tensor_4d(&[0.0; 2 * 2 * 2 * 3], 2, 2, 2, 3).unwrap();
        let bias = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
        let y = ops::add(&x, &bias).unwrap().to_f32_vec().unwrap();
        assert_eq!(&y[..6], &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reduce_tail_fast_path_matches_general() {
        let e = engine();
        let x = e.rand_uniform([4, 8, 16], -1.0, 1.0, 5).unwrap();
        let fast = ops::sum(&x, Some(&[1, 2]), false).unwrap().to_f32_vec().unwrap();
        // General path via non-tail axes on a transposed tensor.
        let xt = ops::transpose(&x, Some(&[1, 2, 0])).unwrap();
        let gen = ops::sum(&xt, Some(&[0, 1]), false).unwrap().to_f32_vec().unwrap();
        for (a, b) in fast.iter().zip(&gen) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn finalized_policy_frees_on_drop() {
        let e = engine();
        e.set_memory_policy(MemoryPolicy::Finalized);
        {
            let t = e.tensor_1d(&[1.0, 2.0, 3.0]).unwrap();
            let _y = ops::relu(&t).unwrap();
        }
        // Handles dropped: garbage collected at next engine touch.
        assert_eq!(e.num_tensors(), 0);
        assert_eq!(e.memory().backend.num_buffers, 0);
    }

    #[test]
    fn training_a_small_network_converges() {
        // Linear regression with gradient descent on the native backend.
        let e = engine();
        let xs = e.tensor_2d(&[1.0, 2.0, 3.0, 4.0], 4, 1).unwrap();
        let ys = e.tensor_2d(&[3.0, 5.0, 7.0, 9.0], 4, 1).unwrap();
        let mut w = e.tensor_2d(&[0.0], 1, 1).unwrap();
        let mut b = e.scalar(0.0).unwrap();
        for _ in 0..200 {
            let (_, grads) = e
                .value_and_grads(&[&w, &b], || {
                    let pred = ops::add(&ops::matmul(&xs, &w, false, false)?, &b)?;
                    let err = ops::sub(&pred, &ys)?;
                    ops::mean(&ops::mul(&err, &err)?, None, false)
                })
                .unwrap();
            let lr = e.scalar(0.05).unwrap();
            let w_new = ops::sub(&w, &ops::mul(&grads[0], &lr).unwrap()).unwrap();
            let b_new = ops::sub(&b, &ops::mul(&grads[1], &lr).unwrap()).unwrap();
            w.dispose();
            b.dispose();
            for g in grads {
                g.dispose();
            }
            w = w_new;
            b = b_new;
        }
        // y = 2x + 1.
        assert!((w.to_f32_vec().unwrap()[0] - 2.0).abs() < 0.05);
        assert!((b.to_scalar().unwrap() - 1.0).abs() < 0.15);
    }
}
