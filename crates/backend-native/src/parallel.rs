//! A tiny scoped-thread work splitter (the backend's "thread pool").

use std::ops::Range;

/// Run `f` over `0..n` split into up to `threads` contiguous ranges, on
/// scoped threads. Falls back to inline execution for a single thread or
/// small `n`.
pub fn parallel_for(n: usize, threads: usize, f: impl Fn(Range<usize>) + Sync) {
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        f(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            scope.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Like [`parallel_for`] but hands each worker a disjoint `&mut` slice of
/// `out` aligned with its range (`out.len()` must be `n * stride`).
pub fn parallel_for_slices<T: Send>(
    out: &mut [T],
    n: usize,
    stride: usize,
    threads: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n * stride < 1024 {
        f(0..n, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut start = 0;
        let mut rest = out;
        while start < n {
            let end = (start + chunk).min(n);
            let take = (end - start) * stride;
            let (head, tail) = rest.split_at_mut(take);
            scope.spawn(move || f(start..end, head));
            rest = tail;
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_whole_range_once() {
        let count = AtomicUsize::new(0);
        parallel_for(10_000, 4, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn slices_align_with_ranges() {
        let n = 2048;
        let stride = 3;
        let mut out = vec![0usize; n * stride];
        parallel_for_slices(&mut out, n, stride, 4, |range, chunk| {
            for (k, i) in range.enumerate() {
                for s in 0..stride {
                    chunk[k * stride + s] = i;
                }
            }
        });
        for (i, v) in out.chunks(stride).enumerate() {
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn single_thread_inline() {
        let mut out = vec![0; 8];
        parallel_for_slices(&mut out, 8, 1, 1, |range, chunk| {
            for (k, i) in range.enumerate() {
                chunk[k] = i * 2;
            }
        });
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
