//! Optimized kernels: blocked parallel matmul, im2col convolution, and
//! vector-friendly element-wise loops — the AVX/TF-C class of performance
//! the Node.js backend gets by binding to the TensorFlow C library
//! (paper Sec 4.2).

use crate::parallel::parallel_for_slices;
use webml_core::backend::{BinaryOp, FusedStep, UnaryOp};
use webml_core::conv_util::Conv2dInfo;
use webml_core::quant::QuantParams;

/// The fused epilogue: optional per-channel bias add, then optional
/// activation. Uses the same `BinaryOp::apply`/`UnaryOp::apply` scalar math
/// as the unfused kernels so fused output is bit-identical to the
/// matmul→add→activation composition.
#[inline]
fn apply_epilogue(v: f32, channel: usize, bias: Option<&[f32]>, act: Option<UnaryOp>) -> f32 {
    let v = match bias {
        Some(b) => BinaryOp::Add.apply(v, b[channel]),
        None => v,
    };
    match act {
        Some(a) => a.apply(v),
        None => v,
    }
}

/// Batched matmul `[b, m, k] x [b, k, n]` with transposes, parallel over
/// output rows, ikj loop order for contiguous vectorizable inner loops.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    threads: usize,
) -> Vec<f32> {
    matmul_impl(a, b, batch, m, k, n, transpose_a, transpose_b, None, None, threads)
}

/// Matmul with a fused epilogue: the bias add and activation run on each
/// output row while it is still hot in cache, in the same parallel pass as
/// the accumulation (no extra buffer, no second sweep over memory).
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    matmul_impl(a, b, batch, m, k, n, transpose_a, transpose_b, bias, activation, threads)
}

#[allow(clippy::too_many_arguments)]
fn matmul_impl(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    let fused = bias.is_some() || activation.is_some();
    for bi in 0..batch {
        // Materialize row-major A [m,k] and B [k,n] so the inner loops are
        // contiguous (the copies are O(mk + kn), negligible vs O(mkn)).
        let a_mat = gather_matrix(&a[bi * m * k..(bi + 1) * m * k], m, k, transpose_a);
        let b_mat = gather_matrix(&b[bi * k * n..(bi + 1) * k * n], k, n, transpose_b);
        let out_b = &mut out[bi * m * n..(bi + 1) * m * n];
        parallel_for_slices(out_b, m, n, threads, |rows, chunk| {
            for (local_i, i) in rows.enumerate() {
                let out_row = &mut chunk[local_i * n..(local_i + 1) * n];
                let a_row = &a_mat[i * k..(i + 1) * k];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b_mat[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
                if fused {
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = apply_epilogue(*o, j, bias, activation);
                    }
                }
            }
        });
    }
    out
}

fn gather_matrix(src: &[f32], rows: usize, cols: usize, transposed: bool) -> Vec<f32> {
    if !transposed {
        return src.to_vec();
    }
    // src is [cols, rows] and we want row-major [rows, cols].
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[r * cols + c] = src[c * rows + r];
        }
    }
    out
}

/// conv2d via im2col + blocked matmul.
pub fn conv2d(x: &[f32], w: &[f32], info: &Conv2dInfo, threads: usize) -> Vec<f32> {
    conv2d_impl(x, w, info, None, None, threads)
}

/// conv2d with the bias/activation epilogue fused into the im2col matmul.
pub fn fused_conv2d(
    x: &[f32],
    w: &[f32],
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    conv2d_impl(x, w, info, bias, activation, threads)
}

fn conv2d_impl(
    x: &[f32],
    w: &[f32],
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let c = info;
    let patch = c.filter_height * c.filter_width * c.in_channels;
    let rows = c.batch * c.out_height * c.out_width;
    let cols = im2col(x, c, threads);
    // [rows, patch] x [patch, out_c]; the epilogue channel is the output
    // column, i.e. the conv output channel.
    matmul_impl(&cols, w, 1, rows, patch, c.out_channels, false, false, bias, activation, threads)
}

/// Build the im2col patch matrix `[batch*oh*ow, fh*fw*ic]` in parallel over
/// output rows; out-of-bounds taps are zero-filled.
fn im2col(x: &[f32], c: &Conv2dInfo, threads: usize) -> Vec<f32> {
    let patch = c.filter_height * c.filter_width * c.in_channels;
    let rows = c.batch * c.out_height * c.out_width;
    let mut cols = vec![0.0f32; rows * patch];
    parallel_for_slices(&mut cols, rows, patch, threads, |range, chunk| {
        for (local, row) in range.enumerate() {
            let oc_spatial = c.out_height * c.out_width;
            let b = row / oc_spatial;
            let rem = row % oc_spatial;
            let oh = rem / c.out_width;
            let ow = rem % c.out_width;
            let dst = &mut chunk[local * patch..(local + 1) * patch];
            let mut di = 0;
            for fh in 0..c.filter_height {
                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                for fw in 0..c.filter_width {
                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                    if ih < 0 || ih >= c.in_height as isize || iw < 0 || iw >= c.in_width as isize {
                        dst[di..di + c.in_channels].fill(0.0);
                    } else {
                        let base = ((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                            * c.in_channels;
                        dst[di..di + c.in_channels].copy_from_slice(&x[base..base + c.in_channels]);
                    }
                    di += c.in_channels;
                }
            }
        }
    });
    cols
}

/// Depthwise conv2d, parallel over output pixels.
pub fn depthwise_conv2d(x: &[f32], w: &[f32], info: &Conv2dInfo, threads: usize) -> Vec<f32> {
    depthwise_conv2d_impl(x, w, info, None, None, threads)
}

/// Depthwise conv2d with the bias/activation epilogue applied to each output
/// pixel's channel slice right after its accumulation completes.
pub fn fused_depthwise_conv2d(
    x: &[f32],
    w: &[f32],
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    depthwise_conv2d_impl(x, w, info, bias, activation, threads)
}

fn depthwise_conv2d_impl(
    x: &[f32],
    w: &[f32],
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let c = info.clone();
    let fused = bias.is_some() || activation.is_some();
    let mul = c.channel_mul;
    let pixels = c.batch * c.out_height * c.out_width;
    let stride = c.out_channels;
    let mut out = vec![0.0f32; pixels * stride];
    parallel_for_slices(&mut out, pixels, stride, threads, |range, chunk| {
        for (local, pix) in range.enumerate() {
            let spatial = c.out_height * c.out_width;
            let b = pix / spatial;
            let rem = pix % spatial;
            let oh = rem / c.out_width;
            let ow = rem % c.out_width;
            let dst = &mut chunk[local * stride..(local + 1) * stride];
            for fh in 0..c.filter_height {
                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                if ih < 0 || ih >= c.in_height as isize {
                    continue;
                }
                for fw in 0..c.filter_width {
                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                    if iw < 0 || iw >= c.in_width as isize {
                        continue;
                    }
                    let x_base =
                        ((b * c.in_height + ih as usize) * c.in_width + iw as usize) * c.in_channels;
                    let w_base = (fh * c.filter_width + fw) * c.in_channels * mul;
                    if mul == 1 {
                        // The common MobileNet case: contiguous multiply-add.
                        let xs = &x[x_base..x_base + c.in_channels];
                        let ws = &w[w_base..w_base + c.in_channels];
                        for ((d, &xv), &wv) in dst.iter_mut().zip(xs).zip(ws) {
                            *d += xv * wv;
                        }
                    } else {
                        for ic in 0..c.in_channels {
                            let xv = x[x_base + ic];
                            for m in 0..mul {
                                dst[ic * mul + m] += xv * w[w_base + ic * mul + m];
                            }
                        }
                    }
                }
            }
            if fused {
                for (och, d) in dst.iter_mut().enumerate() {
                    *d = apply_epilogue(*d, och, bias, activation);
                }
            }
        }
    });
    out
}

/// Quantized-weight fused matmul: f32 `a` against raw u8 codes `b_q`
/// (`value = code*scale + min`), parallel over output rows. The codes are
/// never expanded into an f32 weight buffer — the gathered code matrix stays
/// one byte per element and the affine factoring
/// `Σ a·(q·s + m) = s·Σ a·q + m·Σ a` moves scale/min into the per-output
/// epilogue, before bias and activation. A rank-2 `b_q` of `k*n` codes is
/// broadcast across the batch.
#[allow(clippy::too_many_arguments)]
pub fn fused_matmul_quant(
    a: &[f32],
    b_q: &[u8],
    params: &QuantParams,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    transpose_a: bool,
    transpose_b: bool,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    let shared_b = if b_q.len() == k * n {
        Some(gather_codes(b_q, k, n, transpose_b))
    } else {
        None
    };
    for bi in 0..batch {
        let a_mat = gather_matrix(&a[bi * m * k..(bi + 1) * m * k], m, k, transpose_a);
        let batch_b;
        let b_mat: &[u8] = match &shared_b {
            Some(sb) => sb,
            None => {
                batch_b = gather_codes(&b_q[bi * k * n..(bi + 1) * k * n], k, n, transpose_b);
                &batch_b
            }
        };
        let out_b = &mut out[bi * m * n..(bi + 1) * m * n];
        parallel_for_slices(out_b, m, n, threads, |rows, chunk| {
            for (local_i, i) in rows.enumerate() {
                let out_row = &mut chunk[local_i * n..(local_i + 1) * n];
                let a_row = &a_mat[i * k..(i + 1) * k];
                let mut acc_a = 0.0f32;
                for (p, &av) in a_row.iter().enumerate() {
                    acc_a += av;
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b_mat[p * n..(p + 1) * n];
                    for (o, &qv) in out_row.iter_mut().zip(b_row) {
                        *o += av * qv as f32;
                    }
                }
                for (j, o) in out_row.iter_mut().enumerate() {
                    let (s, mn) = params.scale_min(j);
                    *o = apply_epilogue(s * *o + mn * acc_a, j, bias, activation);
                }
            }
        });
    }
    out
}

fn gather_codes(src: &[u8], rows: usize, cols: usize, transposed: bool) -> Vec<u8> {
    if !transposed {
        return src.to_vec();
    }
    // src is [cols, rows] and we want row-major [rows, cols].
    let mut out = vec![0u8; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[r * cols + c] = src[c * rows + r];
        }
    }
    out
}

/// Quantized-filter fused conv2d: im2col on the f32 input only, then the
/// dequant-free quant matmul against the HWIO codes `[patch, out_c]`.
/// Per-channel `params` index the output-channel axis (matmul column).
pub fn fused_conv2d_quant(
    x: &[f32],
    w_q: &[u8],
    params: &QuantParams,
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let patch = info.filter_height * info.filter_width * info.in_channels;
    let rows = info.batch * info.out_height * info.out_width;
    let cols = im2col(x, info, threads);
    fused_matmul_quant(
        &cols,
        w_q,
        params,
        1,
        rows,
        patch,
        info.out_channels,
        false,
        false,
        bias,
        activation,
        threads,
    )
}

/// Quantized-filter fused depthwise conv2d, parallel over output pixels.
/// Output channel `oc = ic*mul + m` reads one input channel, so the factored
/// form needs the valid-tap input sum per `ic`; per-channel scales index
/// filter axis 2 (`ic`) or axis 3 (`m`).
pub fn fused_depthwise_conv2d_quant(
    x: &[f32],
    w_q: &[u8],
    params: &QuantParams,
    info: &Conv2dInfo,
    bias: Option<&[f32]>,
    activation: Option<UnaryOp>,
    threads: usize,
) -> Vec<f32> {
    let c = info.clone();
    let mul = c.channel_mul;
    let pixels = c.batch * c.out_height * c.out_width;
    let stride = c.out_channels;
    let mut out = vec![0.0f32; pixels * stride];
    parallel_for_slices(&mut out, pixels, stride, threads, |range, chunk| {
        let mut acc_x = vec![0.0f32; c.in_channels];
        for (local, pix) in range.enumerate() {
            let spatial = c.out_height * c.out_width;
            let b = pix / spatial;
            let rem = pix % spatial;
            let oh = rem / c.out_width;
            let ow = rem % c.out_width;
            let dst = &mut chunk[local * stride..(local + 1) * stride];
            acc_x.fill(0.0);
            for fh in 0..c.filter_height {
                let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                if ih < 0 || ih >= c.in_height as isize {
                    continue;
                }
                for fw in 0..c.filter_width {
                    let iw = (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                    if iw < 0 || iw >= c.in_width as isize {
                        continue;
                    }
                    let x_base =
                        ((b * c.in_height + ih as usize) * c.in_width + iw as usize) * c.in_channels;
                    let w_base = (fh * c.filter_width + fw) * c.in_channels * mul;
                    for ic in 0..c.in_channels {
                        let xv = x[x_base + ic];
                        acc_x[ic] += xv;
                        if xv == 0.0 {
                            continue;
                        }
                        for m in 0..mul {
                            dst[ic * mul + m] += xv * w_q[w_base + ic * mul + m] as f32;
                        }
                    }
                }
            }
            for (och, d) in dst.iter_mut().enumerate() {
                let ic = och / mul;
                let ch = match params {
                    QuantParams::PerTensor { .. } => 0,
                    QuantParams::PerChannel { axis, .. } => {
                        if *axis == 2 {
                            ic
                        } else {
                            och % mul
                        }
                    }
                };
                let (s, mn) = params.scale_min(ch);
                *d = apply_epilogue(s * *d + mn * acc_x[ic], och, bias, activation);
            }
        }
    });
    out
}

/// Gradient of conv2d w.r.t. input, gather form, parallel over input pixels.
pub fn conv2d_backprop_input(dy: &[f32], w: &[f32], info: &Conv2dInfo, threads: usize) -> Vec<f32> {
    let c = info.clone();
    let pixels = c.batch * c.in_height * c.in_width;
    let stride = c.in_channels;
    let mut dx = vec![0.0f32; pixels * stride];
    parallel_for_slices(&mut dx, pixels, stride, threads, |range, chunk| {
        for (local, pix) in range.enumerate() {
            let spatial = c.in_height * c.in_width;
            let b = pix / spatial;
            let rem = pix % spatial;
            let ih = rem / c.in_width;
            let iw = rem % c.in_width;
            let dst = &mut chunk[local * stride..(local + 1) * stride];
            for fh in 0..c.filter_height {
                // oh * stride_h = ih + pad_top - fh * dil_h, must divide.
                let num_h = ih as isize + c.pad_top as isize - (fh * c.dilation_h) as isize;
                if num_h < 0 || num_h % c.stride_h as isize != 0 {
                    continue;
                }
                let oh = (num_h / c.stride_h as isize) as usize;
                if oh >= c.out_height {
                    continue;
                }
                for fw in 0..c.filter_width {
                    let num_w = iw as isize + c.pad_left as isize - (fw * c.dilation_w) as isize;
                    if num_w < 0 || num_w % c.stride_w as isize != 0 {
                        continue;
                    }
                    let ow = (num_w / c.stride_w as isize) as usize;
                    if ow >= c.out_width {
                        continue;
                    }
                    let dy_base =
                        ((b * c.out_height + oh) * c.out_width + ow) * c.out_channels;
                    let w_base = (fh * c.filter_width + fw) * c.in_channels * c.out_channels;
                    for (ic, d) in dst.iter_mut().enumerate() {
                        let w_row = &w[w_base + ic * c.out_channels..w_base + (ic + 1) * c.out_channels];
                        let dy_row = &dy[dy_base..dy_base + c.out_channels];
                        let mut acc = 0.0f32;
                        for (&g, &wv) in dy_row.iter().zip(w_row) {
                            acc += g * wv;
                        }
                        *d += acc;
                    }
                }
            }
        }
    });
    dx
}

/// Gradient of conv2d w.r.t. filter, gather form, parallel over filter rows.
pub fn conv2d_backprop_filter(x: &[f32], dy: &[f32], info: &Conv2dInfo, threads: usize) -> Vec<f32> {
    let c = info.clone();
    let positions = c.filter_height * c.filter_width * c.in_channels;
    let stride = c.out_channels;
    let mut dw = vec![0.0f32; positions * stride];
    parallel_for_slices(&mut dw, positions, stride, threads, |range, chunk| {
        for (local, pos) in range.enumerate() {
            let fh = pos / (c.filter_width * c.in_channels);
            let rem = pos % (c.filter_width * c.in_channels);
            let fw = rem / c.in_channels;
            let ic = rem % c.in_channels;
            let dst = &mut chunk[local * stride..(local + 1) * stride];
            for b in 0..c.batch {
                for oh in 0..c.out_height {
                    let ih = (oh * c.stride_h + fh * c.dilation_h) as isize - c.pad_top as isize;
                    if ih < 0 || ih >= c.in_height as isize {
                        continue;
                    }
                    for ow in 0..c.out_width {
                        let iw =
                            (ow * c.stride_w + fw * c.dilation_w) as isize - c.pad_left as isize;
                        if iw < 0 || iw >= c.in_width as isize {
                            continue;
                        }
                        let xv = x[((b * c.in_height + ih as usize) * c.in_width + iw as usize)
                            * c.in_channels
                            + ic];
                        if xv == 0.0 {
                            continue;
                        }
                        let dy_base =
                            ((b * c.out_height + oh) * c.out_width + ow) * c.out_channels;
                        let dy_row = &dy[dy_base..dy_base + c.out_channels];
                        for (d, &g) in dst.iter_mut().zip(dy_row) {
                            *d += xv * g;
                        }
                    }
                }
            }
        }
    });
    dw
}

/// Parallel element-wise unary map.
pub fn unary_map(x: &[f32], threads: usize, f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    parallel_for_slices(&mut out, x.len(), 1, threads, |range, chunk| {
        for (o, &v) in chunk.iter_mut().zip(&x[range]) {
            *o = f(v);
        }
    });
    out
}

/// Parallel element-wise binary map for equal shapes.
pub fn binary_map(a: &[f32], b: &[f32], threads: usize, f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    parallel_for_slices(&mut out, a.len(), 1, threads, |range, chunk| {
        for ((o, &u), &v) in chunk.iter_mut().zip(&a[range.clone()]) .zip(&b[range]) {
            *o = f(u, v);
        }
    });
    out
}

/// Suffix-broadcast binary map: `b` repeats every `b.len()` elements (the
/// bias-add pattern `[n, h, w, c] + [c]`).
pub fn binary_map_suffix(
    a: &[f32],
    b: &[f32],
    threads: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Vec<f32> {
    let bl = b.len();
    let mut out = vec![0.0f32; a.len()];
    parallel_for_slices(&mut out, a.len(), 1, threads, |range, chunk| {
        for (k, (o, &u)) in chunk.iter_mut().zip(&a[range.clone()]).enumerate() {
            let i = range.start + k;
            *o = f(u, b[i % bl]);
        }
    });
    out
}

/// Per-output-dimension element strides for sampling an input of shape
/// `in_dims` at coordinates of the (right-aligned broadcast) output shape
/// `out_dims`; broadcast dimensions get stride 0.
fn broadcast_strides(in_dims: &[usize], out_dims: &[usize]) -> Vec<usize> {
    let offset = out_dims.len() - in_dims.len();
    let mut in_strides = vec![0usize; in_dims.len()];
    let mut s = 1usize;
    for d in (0..in_dims.len()).rev() {
        in_strides[d] = s;
        s *= in_dims[d];
    }
    let mut out = vec![0usize; out_dims.len()];
    for (d, o) in out.iter_mut().enumerate() {
        if d >= offset && in_dims[d - offset] != 1 {
            *o = in_strides[d - offset];
        }
    }
    out
}

/// A whole elementwise chain — `x` followed by `steps`, where binary steps
/// pull their right-hand side from `extras` — evaluated in a single parallel
/// pass with no intermediate buffers. Sampling every operand right-aligned
/// against the *final* output coordinates is equivalent to the progressive
/// per-step broadcast of the unfused chain because elementwise ops are
/// pointwise, so fused output is bit-identical.
pub fn fused_elementwise(
    x: &[f32],
    x_dims: &[usize],
    extras: &[(&[f32], &[usize])],
    steps: &[FusedStep],
    out_dims: &[usize],
    threads: usize,
) -> Vec<f32> {
    let size: usize = out_dims.iter().product::<usize>().max(1);
    let rank = out_dims.len();
    let mut out_strides = vec![1usize; rank];
    for d in (0..rank.saturating_sub(1)).rev() {
        out_strides[d] = out_strides[d + 1] * out_dims[d + 1];
    }
    let x_strides = broadcast_strides(x_dims, out_dims);
    let extra_strides: Vec<Vec<usize>> =
        extras.iter().map(|(_, dims)| broadcast_strides(dims, out_dims)).collect();
    let sample = |strides: &[usize], flat: usize| -> usize {
        let mut rem = flat;
        let mut idx = 0usize;
        for d in 0..rank {
            idx += (rem / out_strides[d]) * strides[d];
            rem %= out_strides[d];
        }
        idx
    };
    let mut out = vec![0.0f32; size];
    parallel_for_slices(&mut out, size, 1, threads, |range, chunk| {
        for (local, o) in chunk.iter_mut().enumerate() {
            let flat = range.start + local;
            let mut v = x[sample(&x_strides, flat)];
            for step in steps {
                v = match *step {
                    FusedStep::Unary(op) => op.apply(v),
                    FusedStep::Binary(op, i) => {
                        op.apply(v, extras[i].0[sample(&extra_strides[i], flat)])
                    }
                };
            }
            *o = v;
        }
    });
    out
}

/// Parallel sum over the trailing `inner` elements of each of `outer` rows.
pub fn reduce_last(x: &[f32], outer: usize, inner: usize, threads: usize, mean: bool) -> Vec<f32> {
    let mut out = vec![0.0f32; outer];
    parallel_for_slices(&mut out, outer, 1, threads, |range, chunk| {
        for (o, row) in chunk.iter_mut().zip(x[range.start * inner..range.end * inner].chunks(inner)) {
            let mut acc = 0.0f32;
            for &v in row {
                acc += v;
            }
            *o = if mean { acc / inner as f32 } else { acc };
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webml_core::conv_util::{conv2d_info, Padding};
    use webml_core::kernels as reference;
    use webml_core::shape::Shape;

    fn close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "i={i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference_all_flags() {
        let a: Vec<f32> = (0..2 * 5 * 7).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..2 * 7 * 3).map(|i| (i as f32 * 0.29).cos()).collect();
        for ta in [false, true] {
            for tb in [false, true] {
                // Shapes adjusted so logical m=5, k=7, n=3 regardless of flags.
                let got = matmul(&a, &b, 2, 5, 7, 3, ta, tb, 4);
                let want = reference::matmul(&a, &b, 2, 5, 7, 3, ta, tb);
                close(&got, &want, 1e-4);
            }
        }
    }

    #[test]
    fn conv2d_matches_reference() {
        let xs = Shape::new(vec![2, 9, 9, 4]);
        let ws = Shape::new(vec![3, 3, 4, 8]);
        let info = conv2d_info("t", &xs, &ws, (2, 2), Padding::Same, (1, 1)).unwrap();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.17).sin()).collect();
        let w: Vec<f32> = (0..ws.size()).map(|i| (i as f32 * 0.37).cos()).collect();
        close(&conv2d(&x, &w, &info, 4), &reference::conv2d(&x, &w, &info), 1e-3);
    }

    #[test]
    fn conv2d_dilated_matches_reference() {
        let xs = Shape::new(vec![1, 10, 10, 3]);
        let ws = Shape::new(vec![3, 3, 3, 5]);
        let info = conv2d_info("t", &xs, &ws, (1, 1), Padding::Valid, (2, 2)).unwrap();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.11).sin()).collect();
        let w: Vec<f32> = (0..ws.size()).map(|i| (i as f32 * 0.23).cos()).collect();
        close(&conv2d(&x, &w, &info, 2), &reference::conv2d(&x, &w, &info), 1e-3);
    }

    #[test]
    fn depthwise_matches_reference() {
        use webml_core::conv_util::depthwise_conv2d_info;
        let xs = Shape::new(vec![2, 8, 8, 6]);
        let ws = Shape::new(vec![3, 3, 6, 2]);
        let info = depthwise_conv2d_info("t", &xs, &ws, (1, 1), Padding::Same, (1, 1)).unwrap();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.19).sin()).collect();
        let w: Vec<f32> = (0..ws.size()).map(|i| (i as f32 * 0.41).cos()).collect();
        close(&depthwise_conv2d(&x, &w, &info, 4), &reference::depthwise_conv2d(&x, &w, &info), 1e-4);
    }

    #[test]
    fn conv_backprops_match_reference() {
        let xs = Shape::new(vec![1, 6, 6, 3]);
        let ws = Shape::new(vec![3, 3, 3, 4]);
        let info = conv2d_info("t", &xs, &ws, (2, 2), Padding::Same, (1, 1)).unwrap();
        let dy_len = info.out_shape().size();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.21).sin()).collect();
        let w: Vec<f32> = (0..ws.size()).map(|i| (i as f32 * 0.33).cos()).collect();
        let dy: Vec<f32> = (0..dy_len).map(|i| (i as f32 * 0.47).sin()).collect();
        close(
            &conv2d_backprop_input(&dy, &w, &info, 3),
            &reference::conv2d_backprop_input(&dy, &w, &info),
            1e-4,
        );
        close(
            &conv2d_backprop_filter(&x, &dy, &info, 3),
            &reference::conv2d_backprop_filter(&x, &dy, &info),
            1e-4,
        );
    }

    #[test]
    fn fused_matmul_quant_matches_reference_all_flags() {
        let a: Vec<f32> = (0..2 * 5 * 7).map(|i| (i as f32 * 0.13).sin()).collect();
        let b_q: Vec<u8> = (0..2 * 7 * 3).map(|i| (i * 37 % 251) as u8).collect();
        let params = QuantParams::per_tensor(0.05, -3.1);
        let bias = vec![0.25f32, -0.5, 1.0];
        for ta in [false, true] {
            for tb in [false, true] {
                let got = fused_matmul_quant(
                    &a, &b_q, &params, 2, 5, 7, 3, ta, tb,
                    Some(&bias), Some(UnaryOp::Relu), 4,
                );
                let want = reference::fused_matmul_quant(
                    &a, &b_q, &params, Some(&bias), Some(UnaryOp::Relu), 2, 5, 7, 3, ta, tb,
                );
                close(&got, &want, 1e-3);
            }
        }
    }

    #[test]
    fn fused_matmul_quant_broadcasts_rank2_codes() {
        // One shared [k,n] code matrix across batch=3, per-channel columns.
        let a: Vec<f32> = (0..3 * 4 * 6).map(|i| (i as f32 * 0.21).cos()).collect();
        let b_q: Vec<u8> = (0..6 * 2).map(|i| (i * 19 % 256) as u8).collect();
        let params = QuantParams::per_channel(2, vec![0.1, 0.02], vec![-1.0, 2.0]);
        let got = fused_matmul_quant(&a, &b_q, &params, 3, 4, 6, 2, false, false, None, None, 2);
        let want = reference::fused_matmul_quant(
            &a, &b_q, &params, None, None, 3, 4, 6, 2, false, false,
        );
        close(&got, &want, 1e-4);
    }

    #[test]
    fn fused_conv2d_quant_matches_reference() {
        let xs = Shape::new(vec![2, 9, 9, 4]);
        let ws = Shape::new(vec![3, 3, 4, 8]);
        let info = conv2d_info("t", &xs, &ws, (2, 2), Padding::Same, (1, 1)).unwrap();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.17).sin()).collect();
        let w_q: Vec<u8> = (0..ws.size()).map(|i| (i * 53 % 256) as u8).collect();
        let params = QuantParams::per_channel(
            3,
            (0..8).map(|i| 0.01 + i as f32 * 0.005).collect(),
            (0..8).map(|i| -1.0 + i as f32 * 0.1).collect(),
        );
        let bias: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let got = fused_conv2d_quant(&x, &w_q, &params, &info, Some(&bias), Some(UnaryOp::Relu), 4);
        let want = reference::fused_conv2d_quant(
            &x, &w_q, &params, Some(&bias), Some(UnaryOp::Relu), &info,
        );
        close(&got, &want, 1e-3);
    }

    #[test]
    fn fused_depthwise_conv2d_quant_matches_reference() {
        use webml_core::conv_util::depthwise_conv2d_info;
        let xs = Shape::new(vec![2, 8, 8, 6]);
        let ws = Shape::new(vec![3, 3, 6, 2]);
        let info = depthwise_conv2d_info("t", &xs, &ws, (1, 1), Padding::Same, (1, 1)).unwrap();
        let x: Vec<f32> = (0..xs.size()).map(|i| (i as f32 * 0.19).sin()).collect();
        let w_q: Vec<u8> = (0..ws.size()).map(|i| (i * 71 % 256) as u8).collect();
        for params in [
            QuantParams::per_tensor(0.04, -5.0),
            QuantParams::per_channel(2, (0..6).map(|i| 0.01 * (i + 1) as f32).collect(), vec![-0.5; 6]),
            QuantParams::per_channel(3, vec![0.03, 0.07], vec![-2.0, 1.0]),
        ] {
            let got = fused_depthwise_conv2d_quant(&x, &w_q, &params, &info, None, None, 4);
            let want =
                reference::fused_depthwise_conv2d_quant(&x, &w_q, &params, None, None, &info);
            close(&got, &want, 1e-3);
        }
    }

    #[test]
    fn elementwise_helpers() {
        let a: Vec<f32> = (0..5000).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..5000).map(|i| 1.0 + i as f32 * 0.02).collect();
        let got = binary_map(&a, &b, 4, |x, y| x + y);
        for i in 0..5000 {
            assert_eq!(got[i], a[i] + b[i]);
        }
        let bias = vec![1.0f32, 2.0];
        let got = binary_map_suffix(&a, &bias, 4, |x, y| x + y);
        assert_eq!(got[0], a[0] + 1.0);
        assert_eq!(got[1], a[1] + 2.0);
        assert_eq!(got[4999], a[4999] + 2.0);
        let got = unary_map(&a, 4, |x| x * 2.0);
        assert_eq!(got[4321], a[4321] * 2.0);
    }

    #[test]
    fn reduce_last_sums_rows() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(reduce_last(&x, 2, 3, 2, false), vec![6.0, 15.0]);
        assert_eq!(reduce_last(&x, 2, 3, 2, true), vec![2.0, 5.0]);
    }
}
